//! Cross-crate property: the whole simulated testbed is deterministic —
//! identical configuration and seed produce bit-identical metrics, and
//! different seeds produce plausibly different (but close) trajectories.
//! Determinism is what makes the figure regeneration reviewable.

use smr::sim_jpaxos::{run_experiment, ExperimentConfig};
use smr::sim_zab::{run_zab_experiment, ZabConfig};

fn quick_jp(seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::parapluie(3, 4);
    cfg.clients = 150;
    cfg.warmup_ns = 100_000_000;
    cfg.duration_ns = 400_000_000;
    cfg.seed = seed;
    cfg
}

#[test]
fn jpaxos_sim_is_bit_deterministic() {
    let a = run_experiment(&quick_jp(1));
    let b = run_experiment(&quick_jp(1));
    assert_eq!(a.throughput_rps, b.throughput_rps);
    assert_eq!(a.instance_latency_ms, b.instance_latency_ms);
    assert_eq!(a.leader_tx_pps, b.leader_tx_pps);
    for (ra, rb) in a.replicas.iter().zip(&b.replicas) {
        assert_eq!(ra.cpu_util_pct, rb.cpu_util_pct);
        assert_eq!(ra.blocked_pct, rb.blocked_pct);
    }
}

#[test]
fn different_seeds_are_close_but_not_identical_runs() {
    let a = run_experiment(&quick_jp(1));
    let b = run_experiment(&quick_jp(2));
    // The seed only drives client start staggering; steady-state
    // throughput must be stable across seeds (within a few percent).
    let ratio = a.throughput_rps / b.throughput_rps;
    assert!(
        (0.9..1.1).contains(&ratio),
        "seed-robust steady state: {ratio}"
    );
}

#[test]
fn zab_sim_is_bit_deterministic() {
    let mut cfg = ZabConfig::new(3, 8);
    cfg.clients = 200;
    cfg.warmup_ns = 100_000_000;
    cfg.duration_ns = 400_000_000;
    let a = run_zab_experiment(&cfg);
    let b = run_zab_experiment(&cfg);
    assert_eq!(a.throughput_rps, b.throughput_rps);
}

#[test]
fn jpaxos_beats_zab_at_high_core_counts() {
    // The paper's headline comparison, at test scale: with many cores,
    // the pipelined no-lock architecture outperforms the coarse-locked
    // baseline.
    let jp = run_experiment(&quick_jp(1)); // 4 cores
    let mut zk = ZabConfig::new(3, 16);
    zk.clients = 150;
    zk.warmup_ns = 100_000_000;
    zk.duration_ns = 400_000_000;
    let zab = run_zab_experiment(&zk);
    assert!(
        jp.throughput_rps > zab.throughput_rps,
        "JPaxos on 4 cores ({}) should beat coarse-locked Zab even on 16 ({})",
        jp.throughput_rps,
        zab.throughput_rps
    );
}
