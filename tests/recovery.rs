//! Crash recovery and snapshot-transfer integration tests: replicas are
//! killed outright (threads stopped, in-memory state discarded) and
//! brought back from their durable directories, or isolated long enough
//! for the rest of the cluster to compact the slots they missed.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use smr::core::{ConcurrentKvService, InProcessCluster, KvService, ServiceState};
use smr::prelude::{ClusterConfig, ReplicaId};
use smr::types::Slot;

fn config(n: usize) -> ClusterConfig {
    ClusterConfig::builder(n)
        .heartbeat_interval(Duration::from_millis(40))
        .suspect_timeout(Duration::from_millis(200))
        .build()
        .unwrap()
}

/// A unique, disposable directory under the system temp dir.
fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("smr-recovery-{tag}-{}-{n}", std::process::id()))
}

/// Looks a key up in a service's state via its entries dump.
fn lookup(svc: &ConcurrentKvService, key: &[u8]) -> Option<Vec<u8>> {
    svc.entries()
        .into_iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
}

/// Polls `cond` until it holds or `deadline` elapses.
fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    cond()
}

/// The headline acceptance test: a replica killed mid-workload comes
/// back from its durable directory and converges to a `state_hash`
/// identical to a peer that never crashed.
#[test]
fn killed_replica_recovers_from_disk() {
    let dirs: Vec<PathBuf> = (0..3).map(|i| temp_dir(&format!("kill-{i}"))).collect();
    // Shared handles so the test can read each replica's state digest;
    // execution is sequential (Arc<ConcurrentKvService> adapts to a
    // sequential RecoverableService via the blanket impls).
    let services: Vec<Arc<ConcurrentKvService>> = (0..3)
        .map(|_| Arc::new(ConcurrentKvService::default()))
        .collect();
    let mut cluster = {
        let services = services.clone();
        let dirs = dirs.clone();
        InProcessCluster::start_with(config(3), move |id, b| {
            b.with_snapshot_service(Box::new(Arc::clone(&services[id.index()])))
                .with_durability(dirs[id.index()].clone())
                .with_snapshot_every(8)
        })
    };

    let mut client = cluster.client();
    for i in 0..30u32 {
        client
            .execute(&KvService::put(format!("k{i}").as_bytes(), b"before"))
            .unwrap();
    }

    // Kill follower 2: threads stop, its in-memory state is gone.
    cluster.stop_replica(ReplicaId(2));
    for i in 30..60u32 {
        client
            .execute(&KvService::put(format!("k{i}").as_bytes(), b"after"))
            .unwrap();
    }

    // Restart from the same durable directory with a *fresh* (empty)
    // service instance: everything it ends up holding came from disk
    // and catch-up, not from surviving memory.
    let fresh = Arc::new(ConcurrentKvService::default());
    {
        let fresh = Arc::clone(&fresh);
        let dir = dirs[2].clone();
        cluster.restart_replica(ReplicaId(2), move |_, b| {
            b.with_snapshot_service(Box::new(fresh))
                .with_durability(dir)
                .with_snapshot_every(8)
        });
    }

    assert!(
        wait_until(Duration::from_secs(20), || {
            fresh.state_hash() == services[0].state_hash()
        }),
        "recovered replica converged to the never-crashed peer's state \
         (recovered {:#x}, peer {:#x})",
        fresh.state_hash(),
        services[0].state_hash()
    );
    // Spot-check contents, not just the digest.
    assert_eq!(lookup(&fresh, b"k5"), Some(b"before".to_vec()));
    assert_eq!(lookup(&fresh, b"k45"), Some(b"after".to_vec()));
    cluster.shutdown();
    for d in dirs {
        let _ = std::fs::remove_dir_all(d);
    }
}

/// A replica isolated long enough for its peers to compact the slots it
/// missed catches up by snapshot transfer: the leader's snapshot
/// watermark passes the laggard's position, the compacted range cannot
/// be replayed, and the cluster still converges.
#[test]
fn lagging_replica_catches_up_via_snapshot_transfer() {
    // Snapshot-capable but NOT durable: snapshots live in memory only,
    // serving compaction and peer transfer.
    let services: Vec<Arc<ConcurrentKvService>> = (0..3)
        .map(|_| Arc::new(ConcurrentKvService::default()))
        .collect();
    let cluster = {
        let services = services.clone();
        InProcessCluster::start_with(config(3), move |id, b| {
            b.with_snapshot_service(Box::new(Arc::clone(&services[id.index()])))
                .with_snapshot_every(8)
        })
    };

    let mut client = cluster.client();
    for i in 0..10u32 {
        client
            .execute(&KvService::put(format!("warm{i}").as_bytes(), b"w"))
            .unwrap();
    }
    let lag_point = cluster.replica(ReplicaId(2)).shared().decided_upto();

    cluster.crash(ReplicaId(2)); // isolate, threads keep running
    for i in 0..200u32 {
        client
            .execute(&KvService::put(format!("k{i}").as_bytes(), b"x"))
            .unwrap();
    }
    // The live replicas snapshotted well past the laggard's position —
    // under SnapshotDriven compaction (the default for snapshot-capable
    // services) the slots it missed are gone from their logs.
    assert!(
        wait_until(Duration::from_secs(10), || {
            cluster.replica(ReplicaId(0)).snapshot_watermark() > Slot(lag_point.0 + 50)
        }),
        "leader watermark {} never passed lag point {lag_point}",
        cluster.replica(ReplicaId(0)).snapshot_watermark()
    );

    cluster.heal(ReplicaId(2));
    assert!(
        wait_until(Duration::from_secs(20), || {
            services[2].state_hash() == services[0].state_hash()
        }),
        "lagging replica converged after snapshot transfer"
    );
    // It really did install a snapshot: its own watermark jumped past
    // everything that was compacted away.
    assert!(
        cluster.replica(ReplicaId(2)).snapshot_watermark() > lag_point,
        "laggard's watermark advanced by installing the transferred snapshot"
    );
    assert_eq!(lookup(&services[2], b"k150"), Some(b"x".to_vec()));
    cluster.shutdown();
}

/// A crash that tears the last WAL record (partial write) must not keep
/// the replica down: the torn tail is truncated on open, the intact
/// prefix is replayed, and the missing suffix comes back from the
/// cluster. Runs in parallel execution mode to cover the durable
/// parallel ServiceManager.
#[test]
fn torn_wal_tail_recovers_and_rejoins() {
    let dirs: Vec<PathBuf> = (0..3).map(|i| temp_dir(&format!("torn-{i}"))).collect();
    let services: Vec<Arc<ConcurrentKvService>> = (0..3)
        .map(|_| Arc::new(ConcurrentKvService::default()))
        .collect();
    let mut cluster = {
        let services = services.clone();
        let dirs = dirs.clone();
        InProcessCluster::start_with(config(3), move |id, b| {
            b.with_parallel_snapshot_service(Arc::clone(&services[id.index()]), 2)
                .with_durability(dirs[id.index()].clone())
                .with_snapshot_every(16)
        })
    };

    let mut client = cluster.client();
    for i in 0..40u32 {
        client
            .execute(&KvService::put(format!("k{i}").as_bytes(), b"v"))
            .unwrap();
    }
    cluster.stop_replica(ReplicaId(2));

    // Tear the newest WAL segment: append garbage, simulating a record
    // that was mid-write when the power went out.
    let mut segments: Vec<PathBuf> = std::fs::read_dir(&dirs[2])
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().is_some_and(|x| x == "log")).then_some(p)
        })
        .collect();
    segments.sort();
    let newest = segments
        .last()
        .expect("replica wrote at least one WAL segment");
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(newest)
        .unwrap();
    f.write_all(&[0xDE, 0xAD, 0xBE, 0xEF, 0x01]).unwrap();
    drop(f);

    let fresh = Arc::new(ConcurrentKvService::default());
    {
        let fresh = Arc::clone(&fresh);
        let dir = dirs[2].clone();
        cluster.restart_replica(ReplicaId(2), move |_, b| {
            b.with_parallel_snapshot_service(fresh, 2)
                .with_durability(dir)
                .with_snapshot_every(16)
        });
    }
    assert!(
        wait_until(Duration::from_secs(20), || {
            fresh.state_hash() == services[0].state_hash()
        }),
        "replica with a torn WAL tail rejoined and converged"
    );
    cluster.shutdown();
    for d in dirs {
        let _ = std::fs::remove_dir_all(d);
    }
}

/// Durability without a snapshot-capable service is a configuration
/// error, reported at `start()`.
#[test]
fn durability_requires_snapshot_capable_service() {
    use smr::core::ReplicaBuilder;
    use smr::net::memory::MemoryHub;

    let cfg = config(3);
    let hub = MemoryHub::new(3, 1);
    let err = ReplicaBuilder::new(ReplicaId(0), cfg)
        .with_service(Box::new(KvService::new()))
        .with_durability(temp_dir("invalid"))
        .with_network(Arc::new(hub.replica_network(ReplicaId(0))))
        .with_client_listener(Box::new(hub.client_listener(ReplicaId(0))))
        .start()
        .expect_err("plain with_service cannot be durable");
    assert!(err.to_string().contains("snapshot-capable"));
}
