//! Cross-crate integration tests exercised through the facade: the full
//! stack (codec → transports → threaded runtime → services) plus the
//! simulation testbed, in one place.

use std::time::Duration;

use smr::core::KvService;
use smr::prelude::*;

fn config(n: usize) -> ClusterConfig {
    ClusterConfig::builder(n)
        .heartbeat_interval(Duration::from_millis(40))
        .suspect_timeout(Duration::from_millis(200))
        .build()
        .unwrap()
}

#[test]
fn facade_quickstart_works() {
    let cluster = InProcessCluster::start(config(3), |_| Box::new(KvService::new()));
    let mut client = cluster.client();
    client.execute(&KvService::put(b"k", b"v")).unwrap();
    let got = client.execute(&KvService::get(b"k")).unwrap();
    assert_eq!(KvService::decode_value(&got), Some(b"v".to_vec()));
    cluster.shutdown();
}

#[test]
fn five_replica_cluster_with_churn() {
    let cluster = InProcessCluster::start(config(5), |_| Box::new(KvService::new()));
    let mut client = cluster.client();
    for i in 0..20u32 {
        client
            .execute(&KvService::put(format!("k{i}").as_bytes(), b"x"))
            .unwrap();
    }
    cluster.crash(ReplicaId(0)); // leader
    for i in 20..30u32 {
        client
            .execute(&KvService::put(format!("k{i}").as_bytes(), b"y"))
            .unwrap();
    }
    // All pre- and post-crash writes visible.
    let a = client.execute(&KvService::get(b"k5")).unwrap();
    let b = client.execute(&KvService::get(b"k25")).unwrap();
    assert_eq!(KvService::decode_value(&a), Some(b"x".to_vec()));
    assert_eq!(KvService::decode_value(&b), Some(b"y".to_vec()));
    cluster.shutdown();
}

#[test]
fn tcp_stack_end_to_end() {
    use smr::core::{ReplicaBuilder, SmrClient};
    use smr::net::tcp::{TcpClientEndpoint, TcpClientListener, TcpReplicaNetwork};
    use std::net::TcpListener;
    use std::sync::Arc;

    let n = 3;
    let cfg = config(n);
    let peer_addrs: Vec<std::net::SocketAddr> = (0..n)
        .map(|_| {
            TcpListener::bind("127.0.0.1:0")
                .unwrap()
                .local_addr()
                .unwrap()
        })
        .collect();
    let mut client_addrs = Vec::new();
    let replicas: Vec<_> = (0..n as u16)
        .map(|i| {
            let id = ReplicaId(i);
            let network = TcpReplicaNetwork::bind(id, peer_addrs.clone()).unwrap();
            let listener = TcpClientListener::bind("127.0.0.1:0".parse().unwrap()).unwrap();
            client_addrs.push(listener.local_addr().unwrap());
            ReplicaBuilder::new(id, cfg.clone())
                .with_service(Box::new(KvService::new()))
                .with_network(Arc::new(network))
                .with_client_listener(Box::new(listener))
                .start()
                .unwrap()
        })
        .collect();
    std::thread::sleep(Duration::from_millis(150));
    let addrs = client_addrs.clone();
    let mut client = SmrClient::new(
        ClientId(7),
        n,
        Box::new(move |replica: ReplicaId| {
            TcpClientEndpoint::connect(addrs[replica.index()]).map(|ep| Box::new(ep) as _)
        }),
    )
    .with_timeouts(Duration::from_millis(500), Duration::from_secs(30));
    for i in 0..10 {
        client
            .execute(&KvService::put(format!("t{i}").as_bytes(), b"tcp"))
            .unwrap();
    }
    let got = client.execute(&KvService::get(b"t3")).unwrap();
    assert_eq!(KvService::decode_value(&got), Some(b"tcp".to_vec()));
    for r in replicas {
        r.shutdown();
    }
}

#[test]
fn sim_testbed_smoke() {
    use smr::sim_jpaxos::{run_experiment, ExperimentConfig};
    let mut cfg = ExperimentConfig::parapluie(3, 4);
    cfg.clients = 150;
    cfg.warmup_ns = 100_000_000;
    cfg.duration_ns = 400_000_000;
    let r = run_experiment(&cfg);
    assert!(r.throughput_rps > 5_000.0);
    // The architecture's signature: contention stays low.
    assert!(r.replicas.last().unwrap().blocked_pct < 40.0);
}

#[test]
fn zab_baseline_smoke() {
    use smr::sim_zab::{run_zab_experiment, ZabConfig};
    let mut cfg = ZabConfig::new(3, 8);
    cfg.clients = 200;
    cfg.warmup_ns = 100_000_000;
    cfg.duration_ns = 400_000_000;
    let r = run_zab_experiment(&cfg);
    assert!(r.throughput_rps > 1_000.0);
}
