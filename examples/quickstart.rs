//! Quickstart: a replicated key-value store in one process.
//!
//! Starts a 3-replica cluster over the in-memory fabric, writes and
//! reads a few keys, then crashes the leader and shows the cluster
//! electing a new one and carrying on.
//!
//! Run with: `cargo run --release --example quickstart`

use smr::core::KvService;
use smr::prelude::*;

fn main() -> Result<(), SmrError> {
    println!("starting a 3-replica cluster (in-memory fabric)...");
    let cluster = InProcessCluster::start(ClusterConfig::new(3), |id| {
        println!("  replica {id} up");
        Box::new(KvService::new())
    });

    let mut client = cluster.client();
    println!("writing 5 keys through the replicated log...");
    for i in 0..5 {
        let key = format!("key-{i}");
        let value = format!("value-{i}");
        client.execute(&KvService::put(key.as_bytes(), value.as_bytes()))?;
    }
    for i in 0..5 {
        let key = format!("key-{i}");
        let reply = client.execute(&KvService::get(key.as_bytes()))?;
        let value = KvService::decode_value(&reply).expect("key present");
        println!("  {key} = {}", String::from_utf8_lossy(&value));
    }

    println!("crashing the leader (replica 0)...");
    cluster.crash(ReplicaId(0));
    println!("cluster elects a new leader and keeps serving:");
    client.execute(&KvService::put(b"after-crash", b"still-works"))?;
    let reply = client.execute(&KvService::get(b"after-crash"))?;
    println!(
        "  after-crash = {}",
        String::from_utf8_lossy(&KvService::decode_value(&reply).expect("key present"))
    );
    let survivor = cluster.replica(ReplicaId(1));
    println!(
        "  replica 1 now in view {} (leader {})",
        survivor.shared().view(),
        survivor.shared().leader()
    );

    cluster.shutdown();
    println!("done.");
    Ok(())
}
