//! A Chubby-style replicated lock service (the paper's motivating
//! workload class: "lock servers [1], and coordination services [2]").
//!
//! Several worker threads race to acquire a replicated lock; exactly one
//! holds it at a time, and the holder's identity survives leader checks
//! because the lock table is replicated by consensus.
//!
//! Run with: `cargo run --release --example lock_service`

use std::sync::Arc;

use smr::core::{InProcessCluster, LockService};
use smr::prelude::*;

fn main() -> Result<(), SmrError> {
    let cluster = Arc::new(InProcessCluster::start(ClusterConfig::new(3), |_| {
        Box::new(LockService::new())
    }));

    println!("4 workers competing for replicated lock \"leader-election\"...");
    let workers: Vec<_> = (1..=4u64)
        .map(|worker| {
            let cluster = Arc::clone(&cluster);
            std::thread::spawn(move || -> Result<Vec<String>, SmrError> {
                let mut log = Vec::new();
                let mut client = cluster.client();
                for round in 0..3 {
                    let got = LockService::granted(
                        &client.execute(&LockService::acquire(b"leader-election", worker))?,
                    );
                    if got {
                        log.push(format!("worker {worker} acquired the lock (round {round})"));
                        // Hold it briefly, then release.
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        client.execute(&LockService::release(b"leader-election", worker))?;
                        log.push(format!("worker {worker} released the lock"));
                    } else {
                        log.push(format!(
                            "worker {worker} found the lock taken (round {round})"
                        ));
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                }
                Ok(log)
            })
        })
        .collect();

    for w in workers {
        for line in w.join().expect("worker thread")? {
            println!("  {line}");
        }
    }

    // The lock table is consistent: after all releases, it is free.
    let mut client = cluster.client();
    let held = LockService::granted(&client.execute(&LockService::query(b"leader-election"))?);
    println!("lock still held at the end? {held}");

    Arc::into_inner(cluster).expect("workers done").shutdown();
    Ok(())
}
