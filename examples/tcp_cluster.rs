//! A replicated cluster over real TCP sockets on localhost: three
//! replica processes' worth of threads, real framing, real reconnects —
//! the deployment shape of the paper, shrunk onto one machine.
//!
//! Run with: `cargo run --release --example tcp_cluster`

use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use smr::core::{KvService, ReplicaBuilder, SmrClient};
use smr::net::tcp::{TcpClientEndpoint, TcpClientListener, TcpReplicaNetwork};
use smr::prelude::*;

fn free_addrs(n: usize) -> Vec<std::net::SocketAddr> {
    (0..n)
        .map(|_| {
            TcpListener::bind("127.0.0.1:0")
                .expect("bind")
                .local_addr()
                .expect("addr")
        })
        .collect()
}

fn main() -> Result<(), SmrError> {
    let n = 3;
    let config = ClusterConfig::new(n);
    let peer_addrs = free_addrs(n);

    println!("starting {n} replicas over TCP on localhost...");
    let mut client_addrs = Vec::new();
    let replicas: Vec<_> = (0..n as u16)
        .map(|i| {
            let id = ReplicaId(i);
            let network =
                TcpReplicaNetwork::bind(id, peer_addrs.clone()).expect("bind replica port");
            let listener =
                TcpClientListener::bind("127.0.0.1:0".parse().expect("addr")).expect("bind");
            let addr = listener.local_addr().expect("addr");
            client_addrs.push(addr);
            println!(
                "  replica {id}: peers {}, clients {addr}",
                peer_addrs[i as usize]
            );
            ReplicaBuilder::new(id, config.clone())
                .with_service(Box::new(KvService::new()))
                .with_network(Arc::new(network))
                .with_client_listener(Box::new(listener))
                .start()
                .expect("replica starts")
        })
        .collect();

    // Give the acceptors a moment, then talk to the cluster over TCP.
    std::thread::sleep(Duration::from_millis(200));
    let addrs = client_addrs.clone();
    let mut client = SmrClient::new(
        ClientId(1),
        n,
        Box::new(move |replica: ReplicaId| {
            TcpClientEndpoint::connect(addrs[replica.index()]).map(|ep| Box::new(ep) as _)
        }),
    )
    .with_timeouts(Duration::from_millis(500), Duration::from_secs(20));

    println!("writing through TCP...");
    for i in 0..10 {
        let key = format!("tcp-key-{i}");
        client.execute(&KvService::put(key.as_bytes(), format!("v{i}").as_bytes()))?;
    }
    let reply = client.execute(&KvService::get(b"tcp-key-7"))?;
    println!(
        "  tcp-key-7 = {}",
        String::from_utf8_lossy(&KvService::decode_value(&reply).expect("present"))
    );

    println!("per-thread profile of replica 0 (paper-style):");
    print!("{}", replicas[0].metrics().snapshot().render_table());

    for r in replicas {
        r.shutdown();
    }
    println!("done.");
    Ok(())
}
