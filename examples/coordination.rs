//! A coordination-kernel workload: cluster-wide unique, gap-free ticket
//! numbers (ZooKeeper's sequential znodes in miniature), issued by many
//! concurrent clients.
//!
//! Demonstrates the property that makes state machine replication
//! valuable for coordination: every replica executes the same total
//! order exactly once, so the sequencer never skips or duplicates — even
//! with concurrent clients and client retries.
//!
//! Run with: `cargo run --release --example coordination`

use std::collections::HashSet;
use std::sync::{Arc, Mutex};

use smr::core::{InProcessCluster, SequencerService};
use smr::prelude::*;

fn main() -> Result<(), SmrError> {
    let cluster = Arc::new(InProcessCluster::start(ClusterConfig::new(3), |_| {
        Box::new(SequencerService::new())
    }));

    let clients = 8;
    let tickets_each = 20;
    println!("{clients} clients drawing {tickets_each} tickets each from sequencer \"jobs\"...");

    let issued: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let cluster = Arc::clone(&cluster);
            let issued = Arc::clone(&issued);
            std::thread::spawn(move || -> Result<(), SmrError> {
                let mut client = cluster.client();
                for _ in 0..tickets_each {
                    let reply = client.execute(b"jobs")?;
                    let ticket = SequencerService::decode(&reply).expect("8-byte ticket");
                    issued.lock().unwrap().push(ticket);
                }
                Ok(())
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread")?;
    }

    let mut tickets = issued.lock().unwrap().clone();
    tickets.sort_unstable();
    let unique: HashSet<u64> = tickets.iter().copied().collect();
    println!("issued {} tickets, {} unique", tickets.len(), unique.len());
    println!(
        "lowest {}, highest {}",
        tickets.first().unwrap(),
        tickets.last().unwrap()
    );
    assert_eq!(unique.len(), clients * tickets_each, "no duplicates");
    assert_eq!(
        *tickets.last().unwrap() as usize,
        clients * tickets_each - 1,
        "no gaps"
    );
    println!("unique and gap-free: replicated execution is exactly-once.");

    Arc::into_inner(cluster).expect("clients done").shutdown();
    Ok(())
}
