//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Benches written against this shim keep criterion 0.5's API
//! (`criterion_group!`/`criterion_main!`, benchmark groups, `iter` /
//! `iter_custom`, `Throughput`) and produce one summary line per
//! benchmark: median ns/iter over a fixed number of samples, plus a
//! derived rate when a throughput is set. There is no statistical
//! analysis, warm-up tuning, or HTML report.

use std::time::{Duration, Instant};

/// Returns its argument, preventing the optimizer from deleting the
/// computation that produced it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work performed per iteration, used to derive a rate from elapsed time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// The benchmark harness handle passed to each target function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies command-line configuration. The shim accepts and ignores
    /// the arguments cargo-bench passes (e.g. `--bench`).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Registers a standalone benchmark (group of one).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.benchmark_group(id.clone()).bench_function(id, f);
        self
    }

    /// Prints the final summary. The shim prints per-bench lines eagerly,
    /// so this is a no-op kept for API compatibility.
    pub fn final_summary(&mut self) {}
}

/// A named set of benchmarks sharing sample and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the per-iteration work used to derive rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark and prints its summary line.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                iters: 0,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            if bencher.iters > 0 {
                samples.push(bencher.elapsed.as_nanos() as f64 / bencher.iters as f64);
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = if samples.is_empty() {
            0.0
        } else {
            samples[samples.len() / 2]
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if median > 0.0 => {
                format!("  {:.2} Melem/s", n as f64 / median * 1e3)
            }
            Some(Throughput::Bytes(n)) if median > 0.0 => {
                format!("  {:.2} MiB/s", n as f64 / median * 1e9 / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!("{}/{}: median {:.1} ns/iter{}", self.name, id, median, rate);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times the closure under measurement.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Wall-clock budget one sample aims for. Like real criterion, the
    /// iteration count is calibrated from a measured probe so that a
    /// sample of a nanosecond-scale routine still accumulates measurable
    /// time while a millisecond-scale routine doesn't run for minutes.
    const SAMPLE_BUDGET: Duration = Duration::from_millis(10);

    /// Upper bound on iterations per sample, so free routines don't spin
    /// the full budget resolution-limited.
    const MAX_ITERS: u64 = 100_000;

    /// Picks an iteration count so `probe`-per-iteration work roughly
    /// fills [`Self::SAMPLE_BUDGET`].
    fn calibrate(probe: Duration) -> u64 {
        let per_iter = probe.as_nanos().max(1);
        let budget = Self::SAMPLE_BUDGET.as_nanos();
        ((budget / per_iter) as u64).clamp(1, Self::MAX_ITERS)
    }

    /// Times calibrated back-to-back calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let probe_start = Instant::now();
        std::hint::black_box(routine());
        self.iters = Self::calibrate(probe_start.elapsed());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Hands the iteration count to `routine`, which returns the elapsed
    /// time it measured itself (criterion's `iter_custom`).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut routine: F) {
        let probe = routine(1);
        self.iters = Self::calibrate(probe);
        self.elapsed = routine(self.iters);
    }
}

/// Bundles benchmark targets into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark target of this group.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_elapsed_time() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.throughput(Throughput::Elements(1));
        let mut runs = 0u64;
        group.bench_function("counts", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        group.finish();
        // Two samples, each a probe plus at least one timed iteration.
        assert!(runs >= 4);
    }

    #[test]
    fn iter_custom_uses_reported_duration() {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        b.iter_custom(Duration::from_nanos);
        assert_eq!(b.elapsed, Duration::from_nanos(b.iters));
    }
}
