//! Offline stand-in for the `crossbeam` crate (see `vendor/README.md`).
//!
//! Only `crossbeam::channel::bounded` is used (as a comparison baseline in
//! the queue microbench); it is backed by `std::sync::mpsc::sync_channel`,
//! which has the same blocking-bounded semantics if not the same
//! performance.

pub mod channel {
    //! Bounded MPSC channels.

    pub use std::sync::mpsc::{RecvError, SendError};

    /// Sending half of a bounded channel.
    #[derive(Debug, Clone)]
    pub struct Sender<T>(std::sync::mpsc::SyncSender<T>);

    /// Receiving half of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> Sender<T> {
        /// Blocks until there is capacity, then sends `value`.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value is available.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }
    }

    /// Creates a channel that holds at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn send_recv_in_order() {
            let (tx, rx) = super::bounded(4);
            for i in 0..4 {
                tx.send(i).unwrap();
            }
            for i in 0..4 {
                assert_eq!(rx.recv().unwrap(), i);
            }
        }
    }
}
