//! Offline stand-in for the `mio` crate: a minimal, edge-triggered
//! readiness API over raw `epoll_create1`/`epoll_ctl`/`epoll_wait`.
//!
//! Like the other shims under `vendor/` (see `vendor/README.md`), this
//! implements exactly the surface the workspace calls, keeping the real
//! crate's module paths and signatures so a registry version can be
//! swapped in without source changes:
//!
//! - [`Poll`] / [`Registry`] — one epoll instance per readiness loop
//! - [`unix::SourceFd`] — register any raw file descriptor
//! - [`Token`] / [`Interest`] / [`Events`] / [`event::Event`]
//! - [`Waker`] — cross-thread wakeup of a parked `poll` (eventfd-based)
//!
//! Registrations are **edge-triggered** (`EPOLLET`), exactly as in real
//! mio: after a readable event the caller must read until `WouldBlock`
//! before the next event can fire, and writable interest should only be
//! armed while there is unflushed output.
//!
//! The syscall layer binds directly against the C library `std` already
//! links (`extern "C"`), because this build environment has no `libc`
//! crate to vend. On non-Linux targets there is no epoll;
//! [`Poll::new`] then fails with [`std::io::ErrorKind::Unsupported`]
//! and callers fall back to their polling paths (the workspace's
//! evented ClientIO degrades to a short-tick scan loop).

/// Whether this target has a real epoll backend. When `false`,
/// [`Poll::new`] always fails with `Unsupported`.
pub const SUPPORTED: bool = cfg!(target_os = "linux");

use std::io;
use std::time::Duration;

/// Associates a registered event source with the readiness events it
/// produces. Chosen by the caller; typically a slab index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// The readiness classes a source can be registered for. Combine with
/// `|`: `Interest::READABLE | Interest::WRITABLE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Interest in readable events (incl. peer hang-up).
    pub const READABLE: Interest = Interest(0b01);
    /// Interest in writable events.
    pub const WRITABLE: Interest = Interest(0b10);

    /// Whether this interest includes readable.
    pub const fn is_readable(self) -> bool {
        self.0 & 0b01 != 0
    }

    /// Whether this interest includes writable.
    pub const fn is_writable(self) -> bool {
        self.0 & 0b10 != 0
    }

    /// Union of two interests (the real crate's `add`).
    #[must_use]
    pub const fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// Event sources that raw-fd backends can register. Mirrors
/// `mio::event::Source` closely enough for [`unix::SourceFd`].
pub mod event {
    use super::sys;
    use super::Token;

    /// One readiness event delivered by [`super::Poll::poll`].
    #[derive(Debug, Clone, Copy)]
    pub struct Event {
        pub(crate) token: usize,
        pub(crate) readiness: u32,
    }

    impl Event {
        /// The token the source was registered with.
        pub fn token(&self) -> Token {
            Token(self.token)
        }

        /// Readable data (or a hang-up/error that a read will surface).
        pub fn is_readable(&self) -> bool {
            self.readiness & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLERR | sys::EPOLLRDHUP) != 0
        }

        /// Room to write (or an error that a write will surface).
        pub fn is_writable(&self) -> bool {
            self.readiness & (sys::EPOLLOUT | sys::EPOLLHUP | sys::EPOLLERR) != 0
        }

        /// The peer closed its write half (or the connection errored).
        pub fn is_read_closed(&self) -> bool {
            self.readiness & (sys::EPOLLHUP | sys::EPOLLERR | sys::EPOLLRDHUP) != 0
        }

        /// The connection is in an error state.
        pub fn is_error(&self) -> bool {
            self.readiness & sys::EPOLLERR != 0
        }
    }
}

/// Unix-specific event sources.
pub mod unix {
    /// Adapter registering a borrowed raw file descriptor with a
    /// [`super::Registry`] — the shim's only event source, matching how
    /// the workspace uses the real crate.
    #[derive(Debug)]
    pub struct SourceFd<'a>(pub &'a i32);
}

/// A buffer of readiness events filled by [`Poll::poll`].
#[derive(Debug)]
pub struct Events {
    raw: Vec<sys::EpollEvent>,
    len: usize,
}

impl Events {
    /// A buffer that can carry up to `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            raw: vec![sys::EpollEvent { events: 0, data: 0 }; capacity.max(1)],
            len: 0,
        }
    }

    /// Iterates over the events of the last poll.
    pub fn iter(&self) -> impl Iterator<Item = event::Event> + '_ {
        self.raw[..self.len].iter().map(|e| event::Event {
            token: e.data as usize,
            readiness: e.events,
        })
    }

    /// Whether the last poll returned no events (i.e. it timed out).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Registration handle of a [`Poll`]: event sources are registered,
/// re-registered, and deregistered through it. [`Waker`] construction
/// borrows it too.
#[derive(Debug)]
pub struct Registry {
    epfd: i32,
}

impl Registry {
    fn ctl(&self, op: i32, fd: i32, token: Token, interests: Interest) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: sys::interest_bits(interests),
            data: token.0 as u64,
        };
        sys::epoll_ctl(self.epfd, op, fd, &mut ev)
    }

    /// Registers `source` for edge-triggered `interests` under `token`.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_ctl` error; `Unsupported` off Linux.
    pub fn register(
        &self,
        source: &mut unix::SourceFd<'_>,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, *source.0, token, interests)
    }

    /// Replaces the interests/token of an already registered source.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_ctl` error; `Unsupported` off Linux.
    pub fn reregister(
        &self,
        source: &mut unix::SourceFd<'_>,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, *source.0, token, interests)
    }

    /// Removes a source from the poller. (Closing the fd does this
    /// implicitly; deregistering first is still good hygiene for fds
    /// that outlive their registration.)
    ///
    /// # Errors
    ///
    /// The underlying `epoll_ctl` error; `Unsupported` off Linux.
    pub fn deregister(&self, source: &mut unix::SourceFd<'_>) -> io::Result<()> {
        let mut ev = sys::EpollEvent { events: 0, data: 0 };
        sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, *source.0, &mut ev)
    }
}

/// One epoll instance: the heart of a readiness loop.
#[derive(Debug)]
pub struct Poll {
    registry: Registry,
}

impl Poll {
    /// Creates a fresh epoll instance (`epoll_create1(EPOLL_CLOEXEC)`).
    ///
    /// # Errors
    ///
    /// The underlying syscall error; [`io::ErrorKind::Unsupported`] on
    /// targets without epoll (callers should fall back to polling).
    pub fn new() -> io::Result<Poll> {
        let epfd = sys::epoll_create1()?;
        Ok(Poll {
            registry: Registry { epfd },
        })
    }

    /// The registration handle.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Blocks until at least one registered source is ready, the timeout
    /// expires (`None` blocks indefinitely), or a [`Waker`] is woken.
    /// Ready events are written into `events`, replacing its previous
    /// contents.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_wait` error. Interrupted waits (`EINTR`)
    /// are surfaced as an empty event set, like the real crate's users
    /// expect to retry.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms = match timeout {
            // epoll_wait rounds a 0ms timeout down to "return
            // immediately"; round sub-millisecond timeouts up so short
            // ticks still sleep instead of spinning.
            Some(t) => i32::try_from(t.as_millis().max(u128::from(u32::from(!t.is_zero()))))
                .unwrap_or(i32::MAX),
            None => -1,
        };
        match sys::epoll_wait(self.registry.epfd, &mut events.raw, timeout_ms) {
            Ok(n) => {
                events.len = n;
                Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                events.len = 0;
                Ok(())
            }
            Err(e) => Err(e),
        }
    }
}

impl Drop for Poll {
    fn drop(&mut self) {
        sys::close(self.registry.epfd);
    }
}

/// Wakes a [`Poll`] parked in [`Poll::poll`] from another thread.
///
/// Backed by an `eventfd` registered on the poller: [`Waker::wake`] is a
/// single 8-byte write, safe to call from any thread, any number of
/// times (wakes coalesce until the poller drains the counter, which the
/// shim does internally when the waker's event fires — the caller only
/// sees the registered token).
#[derive(Debug)]
pub struct Waker {
    efd: i32,
}

impl Waker {
    /// Creates a waker registered on `registry` under `token`.
    ///
    /// # Errors
    ///
    /// The underlying `eventfd`/`epoll_ctl` error; `Unsupported` off
    /// Linux.
    pub fn new(registry: &Registry, token: Token) -> io::Result<Waker> {
        let efd = sys::eventfd()?;
        let mut ev = sys::EpollEvent {
            // Level-triggered on purpose: the eventfd counter stays
            // nonzero until drained, so a wake can never be lost between
            // two polls even if the loop skips a drain.
            events: sys::EPOLLIN,
            data: token.0 as u64,
        };
        if let Err(e) = sys::epoll_ctl(registry.epfd, sys::EPOLL_CTL_ADD, efd, &mut ev) {
            sys::close(efd);
            return Err(e);
        }
        Ok(Waker { efd })
    }

    /// Wakes the poller. Cheap and thread-safe.
    ///
    /// # Errors
    ///
    /// The underlying `write` error (never `WouldBlock`: a saturated
    /// eventfd counter still reads as ready).
    pub fn wake(&self) -> io::Result<()> {
        sys::eventfd_write(self.efd)
    }

    /// Drains the pending wake count so the (level-triggered) eventfd
    /// stops reporting ready. The readiness loop calls this when it sees
    /// the waker's token.
    pub fn clear(&self) {
        sys::eventfd_drain(self.efd);
    }
}

// Safety: the waker only carries an owned file descriptor; write(2) on
// an eventfd is thread-safe.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

impl Drop for Waker {
    fn drop(&mut self) {
        sys::close(self.efd);
    }
}

#[cfg(target_os = "linux")]
mod sys {
    //! Raw epoll/eventfd bindings against the C library `std` links.

    use std::io;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    const EPOLLET: u32 = 1 << 31;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;

    /// The kernel ABI struct. Packed on x86-64 (the one architecture
    /// where the kernel's layout differs from natural alignment).
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Debug, Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    /// The raw symbols, namespaced so the safe wrappers below can carry
    /// the canonical names.
    mod ffi {
        use super::EpollEvent;
        extern "C" {
            pub fn epoll_create1(flags: i32) -> i32;
            pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
            pub fn epoll_wait(
                epfd: i32,
                events: *mut EpollEvent,
                maxevents: i32,
                timeout: i32,
            ) -> i32;
            pub fn eventfd(initval: u32, flags: i32) -> i32;
            pub fn close(fd: i32) -> i32;
            pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
            pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        }
    }

    pub fn interest_bits(interests: super::Interest) -> u32 {
        let mut bits = EPOLLET | EPOLLRDHUP;
        if interests.is_readable() {
            bits |= EPOLLIN;
        }
        if interests.is_writable() {
            bits |= EPOLLOUT;
        }
        bits
    }

    pub fn epoll_create1() -> io::Result<i32> {
        let fd = unsafe { ffi::epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(fd)
        }
    }

    pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> io::Result<()> {
        if unsafe { ffi::epoll_ctl(epfd, op, fd, event) } < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    pub fn epoll_wait(epfd: i32, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let n = unsafe {
            ffi::epoll_wait(
                epfd,
                events.as_mut_ptr(),
                i32::try_from(events.len()).unwrap_or(i32::MAX),
                timeout_ms,
            )
        };
        if n < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(n as usize)
        }
    }

    pub fn eventfd() -> io::Result<i32> {
        let fd = unsafe { ffi::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(fd)
        }
    }

    pub fn eventfd_write(fd: i32) -> io::Result<()> {
        let one = 1u64.to_ne_bytes();
        loop {
            let n = unsafe { ffi::write(fd, one.as_ptr(), 8) };
            if n == 8 {
                return Ok(());
            }
            let e = io::Error::last_os_error();
            match e.kind() {
                // Counter saturated: the fd is already readable, which
                // is all a wake needs to guarantee.
                io::ErrorKind::WouldBlock => return Ok(()),
                io::ErrorKind::Interrupted => continue,
                _ => return Err(e),
            }
        }
    }

    pub fn eventfd_drain(fd: i32) {
        let mut buf = [0u8; 8];
        unsafe {
            let _ = ffi::read(fd, buf.as_mut_ptr(), 8);
        }
    }

    pub fn close(fd: i32) {
        unsafe {
            let _ = ffi::close(fd);
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    //! Stub backend: every entry point reports `Unsupported`, so callers
    //! take their documented polling fallbacks.

    use std::io;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    fn unsupported() -> io::Error {
        io::Error::new(io::ErrorKind::Unsupported, "epoll is Linux-only")
    }

    pub fn interest_bits(_interests: super::Interest) -> u32 {
        0
    }
    pub fn epoll_create1() -> io::Result<i32> {
        Err(unsupported())
    }
    pub fn epoll_ctl(_: i32, _: i32, _: i32, _: *mut EpollEvent) -> io::Result<()> {
        Err(unsupported())
    }
    pub fn epoll_wait(_: i32, _: &mut [EpollEvent], _: i32) -> io::Result<usize> {
        Err(unsupported())
    }
    pub fn eventfd() -> io::Result<i32> {
        Err(unsupported())
    }
    pub fn eventfd_write(_: i32) -> io::Result<()> {
        Ok(())
    }
    pub fn eventfd_drain(_: i32) {}
    pub fn close(_: i32) {}
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::unix::SourceFd;
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Instant;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn poll_times_out_when_idle() {
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(8);
        let start = Instant::now();
        poll.poll(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert!(events.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn readable_event_fires_once_per_edge() {
        let (mut a, b) = pair();
        let mut poll = Poll::new().unwrap();
        let fd = b.as_raw_fd();
        poll.registry()
            .register(&mut SourceFd(&fd), Token(7), Interest::READABLE)
            .unwrap();
        let mut events = Events::with_capacity(8);

        a.write_all(b"x").unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        let ev: Vec<_> = events.iter().collect();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].token(), Token(7));
        assert!(ev[0].is_readable());

        // Edge-triggered: without draining the socket, no new event.
        poll.poll(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert!(events.is_empty(), "ET must not re-report undrained data");

        // Drain, then a fresh byte fires a fresh edge.
        let mut buf = [0u8; 16];
        let mut b2 = &b;
        let _ = b2.read(&mut buf).unwrap();
        a.write_all(b"y").unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(!events.is_empty());
    }

    #[test]
    fn writable_interest_reregister() {
        let (_a, b) = pair();
        let mut poll = Poll::new().unwrap();
        let fd = b.as_raw_fd();
        poll.registry()
            .register(&mut SourceFd(&fd), Token(1), Interest::READABLE)
            .unwrap();
        poll.registry()
            .reregister(
                &mut SourceFd(&fd),
                Token(1),
                Interest::READABLE | Interest::WRITABLE,
            )
            .unwrap();
        let mut events = Events::with_capacity(8);
        // A fresh socket with an empty send buffer is immediately
        // writable: the MOD is a new edge.
        poll.poll(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events.iter().any(|e| e.is_writable()));
        poll.registry()
            .deregister(&mut SourceFd(&fd))
            .expect("deregister succeeds");
    }

    #[test]
    fn read_closed_is_reported() {
        let (a, b) = pair();
        let mut poll = Poll::new().unwrap();
        let fd = b.as_raw_fd();
        poll.registry()
            .register(&mut SourceFd(&fd), Token(3), Interest::READABLE)
            .unwrap();
        drop(a);
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        let ev: Vec<_> = events.iter().collect();
        assert!(!ev.is_empty());
        assert!(ev[0].is_readable(), "close must wake readers");
        assert!(ev[0].is_read_closed());
    }

    #[test]
    fn waker_wakes_across_threads_and_coalesces() {
        let mut poll = Poll::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new(poll.registry(), Token(99)).unwrap());
        let w2 = std::sync::Arc::clone(&waker);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            // Multiple wakes before the poller runs coalesce into one
            // readiness report.
            w2.wake().unwrap();
            w2.wake().unwrap();
        });
        let mut events = Events::with_capacity(8);
        let start = Instant::now();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(start.elapsed() < Duration::from_secs(2));
        let ev: Vec<_> = events.iter().collect();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].token(), Token(99));
        // Join before clearing: under load, poll can return between the
        // two wakes, and a wake landing after clear() would (correctly)
        // re-arm the eventfd and fail the quiet-again check below.
        h.join().unwrap();
        waker.clear();
        // Cleared: the level-triggered eventfd goes quiet again.
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn uncleared_wake_is_not_lost() {
        let mut poll = Poll::new().unwrap();
        let waker = Waker::new(poll.registry(), Token(5)).unwrap();
        waker.wake().unwrap();
        let mut events = Events::with_capacity(8);
        // Two polls without clear(): level-triggered, still reported.
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(!events.is_empty());
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(!events.is_empty());
    }

    #[test]
    fn zero_timeout_returns_immediately() {
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(8);
        let start = Instant::now();
        poll.poll(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(start.elapsed() < Duration::from_millis(50));
    }
}
