//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the subset of the proptest 1.x API this workspace's tests
//! use: the [`proptest!`] test macro with `#![proptest_config(..)]`,
//! [`strategy::Strategy`] with `prop_map`, [`arbitrary::any`],
//! integer-range strategies, tuple strategies, [`collection::vec`],
//! [`option::of`], [`prop_oneof!`] and the `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case reports the case number and message
//!   and panics; it is not minimized.
//! - **Deterministic seeding.** Each test function derives its RNG seed
//!   from its own name, so runs are reproducible without a persistence
//!   file.
//! - Integer `any` values are edge-biased (zero, one, MAX, small values)
//!   with a uniform tail, approximating proptest's bias toward boundary
//!   cases.

pub mod test_runner {
    //! Configuration and the per-test case driver.

    /// Subset of `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case failed.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property did not hold.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(msg) => write!(f, "{msg}"),
            }
        }
    }

    /// Deterministic generator state handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from an arbitrary byte string (we use the
        /// test function's name) so distinct tests explore distinct
        /// cases while every run of one test is identical.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a, then force non-zero.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h | 1 }
        }

        /// Next 64 random bits (xorshift64*).
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    ///
    /// Unlike real proptest there is no value tree: strategies produce
    /// final values directly and nothing shrinks.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields clones of one value (`proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `options` must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start + rng.below(span + 1) as $t
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait and [`any`].

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The strategy [`any`] returns for this type.
        type Strategy: Strategy<Value = Self>;

        /// The canonical strategy for this type.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T` (e.g. `any::<u8>()`).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Edge-biased full-range integer strategy backing `any` for ints.
    #[derive(Debug, Clone, Default)]
    pub struct AnyInt<T> {
        _marker: std::marker::PhantomData<T>,
    }

    macro_rules! arbitrary_int {
        ($($t:ty),+) => {$(
            impl Strategy for AnyInt<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    // 1-in-4 draws pick a boundary-ish value, the rest
                    // are uniform over the full domain.
                    match rng.below(8) {
                        0 => 0,
                        1 => match rng.below(3) {
                            0 => <$t>::MAX,
                            1 => 1,
                            _ => (rng.below(256)) as $t,
                        },
                        _ => rng.next_u64() as $t,
                    }
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyInt<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyInt::default()
                }
            }
        )+};
    }

    arbitrary_int!(u8, u16, u32, u64, usize);

    /// Strategy backing `any::<bool>()`.
    #[derive(Debug, Clone, Default)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> Self::Strategy {
            AnyBool
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<T>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `Vec` strategy with length in `len` (mirrors
    /// `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(
            len.start < len.end,
            "empty length range for collection::vec"
        );
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<T>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Yields `None` about a quarter of the time, `Some` otherwise
    /// (mirrors `proptest::option::of`).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. Each `#[test] fn name(arg in strategy, ..)`
/// item becomes a normal test that draws `cases` random inputs and runs
/// the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal recursion for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome = (move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n(vendored proptest shim: no shrinking)",
                        case + 1,
                        config.cases,
                        err
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Uniform random choice between strategies yielding one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?} == {:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?} == {:?}`: {}",
                    left,
                    right,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Asserts two values are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}`",
                left, right
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in any::<u8>()) {
            prop_assert!((3..10).contains(&x));
            let _ = y;
        }

        #[test]
        fn mapped_strategies_apply(v in crate::collection::vec(any::<u8>(), 0..5)) {
            prop_assert!(v.len() < 5);
        }

        #[test]
        fn oneof_picks_each_arm(v in prop_oneof![0u8..1, 10u8..11]) {
            prop_assert!(v == 0 || v == 10, "unexpected value {}", v);
        }
    }

    #[test]
    fn failing_property_panics_with_case_info() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(3))]
                #[allow(unused)]
                fn always_fails(x in 0u8..5) {
                    prop_assert!(false, "doomed: {}", x);
                }
            }
            always_fails();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("doomed"), "panic message was: {msg}");
    }

    #[test]
    fn option_of_yields_both_variants() {
        let strat = crate::option::of(0u8..200);
        let mut rng = crate::test_runner::TestRng::from_name("option_of");
        let draws: Vec<_> = (0..200)
            .map(|_| crate::strategy::Strategy::generate(&strat, &mut rng))
            .collect();
        assert!(draws.iter().any(Option::is_none));
        assert!(draws.iter().any(Option::is_some));
    }
}
