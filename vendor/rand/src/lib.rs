//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Provides [`rngs::SmallRng`] (an xorshift64\* generator), the
//! [`SeedableRng::seed_from_u64`] constructor, and the [`Rng`] extension
//! methods the workspace uses.

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Convenience methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0,1]"
        );
        // 53 high bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Returns a value uniform in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range called with empty range");
        let span = range.end - range.start;
        range.start + self.next_u64() % span
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Deterministic construction from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a function of `seed` alone.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xorshift64\*).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 step guarantees a non-zero xorshift state even
            // for seed == 0.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            SmallRng { state: z | 1 }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_roughly_calibrated() {
        let mut rng = SmallRng::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits} hits at p=0.3");
    }
}
