//! Offline stand-in for the `parking_lot` crate (see `vendor/README.md`).
//!
//! Implements the subset the workspace uses — [`Mutex`], [`Condvar`] with
//! deadline waits — over `std::sync` primitives. Like the real
//! `parking_lot`, locks do not poison: a panic while holding a guard
//! leaves the lock usable by other threads.

use std::sync::PoisonError;
use std::time::{Duration, Instant};

/// A mutual exclusion primitive with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`]; same type as std's guard.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Whether a timed wait returned because the timeout elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable with `parking_lot`'s in-place-guard API.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Wakes one thread blocked on this condvar.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all threads blocked on this condvar.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.replace_guard(guard, |g| {
            self.0.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        self.replace_guard(guard, |g| {
            let (g, result) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = result.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Blocks until notified or the `deadline` instant is reached.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if deadline <= now {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, deadline - now)
    }

    /// Runs `f` on the guard by value, writing the returned guard back.
    ///
    /// std's condvar consumes and returns the guard; parking_lot's mutates
    /// it in place. Between the `ptr::read` and `ptr::write` the guard is
    /// logically owned by `f`; if `f` unwound (std's condvar panics when
    /// one condvar is used with two mutexes), the caller's copy would be
    /// dropped a second time — so any panic is escalated to an abort
    /// before it can reach the caller.
    fn replace_guard<'a, T>(
        &self,
        guard: &mut MutexGuard<'a, T>,
        f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
    ) {
        struct AbortOnUnwind;
        impl Drop for AbortOnUnwind {
            fn drop(&mut self) {
                std::process::abort();
            }
        }
        unsafe {
            let owned = std::ptr::read(guard);
            let bomb = AbortOnUnwind;
            let replacement = f(owned);
            std::mem::forget(bomb);
            std::ptr::write(guard, replacement);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let waiter = thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        waiter.join().unwrap();
    }

    #[test]
    fn wait_until_past_deadline_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_until(&mut g, Instant::now()).timed_out());
    }
}
