//! Offline stand-in for the `bytes` crate (see `vendor/README.md`).
//!
//! [`BytesMut`] is a growable byte buffer backed by `Vec<u8>` plus a
//! consumed-prefix offset, exposing the subset of the real API the
//! workspace's codec and framing use. [`BytesMut::split_to`] copies the
//! head out (the real crate refcounts it) but advances the offset in
//! O(1), so repeatedly splitting small frames off a large receive buffer
//! — the `FrameDecoder` hot path — stays linear in total bytes, not
//! quadratic. The dead prefix is compacted once it exceeds both a fixed
//! floor and half the live length.

use std::ops::{Deref, DerefMut};

/// A mutable, growable byte buffer.
#[derive(Debug, Default, Clone)]
pub struct BytesMut {
    inner: Vec<u8>,
    /// Bytes of `inner` already consumed by `split_to`; everything before
    /// this index is dead. Invariant: `start <= inner.len()`.
    start: usize,
}

impl BytesMut {
    /// Dead-prefix size below which compaction is never triggered.
    const COMPACT_FLOOR: usize = 4096;

    /// Creates an empty buffer.
    pub const fn new() -> Self {
        BytesMut {
            inner: Vec::new(),
            start: 0,
        }
    }

    /// Creates an empty buffer that can hold `capacity` bytes without
    /// reallocating.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(capacity),
            start: 0,
        }
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    /// Appends `src` to the buffer.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Removes and returns the first `at` bytes of the buffer.
    ///
    /// The head is copied out (O(`at`)); the remainder is not moved.
    ///
    /// # Panics
    ///
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(
            at <= self.len(),
            "split_to({at}) out of bounds (len {})",
            self.len()
        );
        let head = self.inner[self.start..self.start + at].to_vec();
        self.start += at;
        self.maybe_compact();
        BytesMut {
            inner: head,
            start: 0,
        }
    }

    /// Removes all contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.inner.clear();
        self.start = 0;
    }

    /// Shortens the buffer to `len` bytes; no-op if already shorter.
    pub fn truncate(&mut self, len: usize) {
        if len < self.len() {
            self.inner.truncate(self.start + len);
        }
    }

    /// Consumes the buffer, returning the underlying bytes. The real
    /// crate returns a shared `Bytes`; a plain `Vec<u8>` covers every use
    /// in this workspace.
    pub fn freeze(mut self) -> Vec<u8> {
        self.compact();
        self.inner
    }

    /// Drops the dead prefix when it outweighs the live bytes, keeping
    /// `split_to` amortized O(bytes consumed).
    fn maybe_compact(&mut self) {
        if self.start > Self::COMPACT_FLOOR && self.start > self.inner.len() - self.start {
            self.compact();
        }
    }

    fn compact(&mut self) {
        if self.start > 0 {
            self.inner.drain(..self.start);
            self.start = 0;
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner[self.start..]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner[self.start..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for BytesMut {}

impl From<BytesMut> for Vec<u8> {
    fn from(buf: BytesMut) -> Vec<u8> {
        buf.freeze()
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(inner: Vec<u8>) -> BytesMut {
        BytesMut { inner, start: 0 }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> BytesMut {
        BytesMut {
            inner: src.to_vec(),
            start: 0,
        }
    }
}

impl Extend<u8> for BytesMut {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        self.inner.extend(iter);
    }
}

/// Write-side buffer trait, mirroring `bytes::BufMut` for the methods the
/// workspace uses.
pub trait BufMut {
    /// Appends a single byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian u16.
    fn put_u16_le(&mut self, v: u16);
    /// Appends a little-endian u32.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a little-endian u64.
    fn put_u64_le(&mut self, v: u64);
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.inner.push(v);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.inner.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.inner.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.inner.extend_from_slice(&v.to_le_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_split_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(0xAB);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_slice(b"xy");
        assert_eq!(buf.len(), 7);
        let head = buf.split_to(5);
        assert_eq!(&head[..], &[0xAB, 0xEF, 0xBE, 0xAD, 0xDE]);
        assert_eq!(&buf[..], b"xy");
    }

    #[test]
    fn little_endian_layout() {
        let mut buf = BytesMut::new();
        buf.put_u16_le(0x0102);
        buf.put_u64_le(1);
        assert_eq!(&buf[..], &[0x02, 0x01, 1, 0, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn split_interleaved_with_appends() {
        // Exercises the offset bookkeeping: append, split, append again,
        // truncate, and convert out — all on one buffer.
        let mut buf = BytesMut::new();
        buf.put_slice(b"hello world");
        assert_eq!(&buf.split_to(6)[..], b"hello ");
        buf.put_slice(b"!!");
        assert_eq!(&buf[..], b"world!!");
        buf.truncate(5);
        assert_eq!(&buf[..], b"world");
        assert_eq!(Vec::from(buf), b"world".to_vec());
    }

    #[test]
    fn many_small_splits_compact_the_dead_prefix() {
        let mut buf = BytesMut::new();
        let frame = [7u8; 64];
        for _ in 0..4096 {
            buf.put_slice(&frame);
        }
        for _ in 0..4095 {
            assert_eq!(buf.split_to(64).len(), 64);
        }
        assert_eq!(buf.len(), 64);
        // Compaction kept the backing allocation near the live size
        // rather than the total bytes ever buffered.
        assert!(buf.inner.len() < 2 * BytesMut::COMPACT_FLOOR + 128);
    }

    #[test]
    fn equality_ignores_consumed_prefix() {
        let mut a = BytesMut::from(b"xxabc".as_slice());
        a.split_to(2);
        let b = BytesMut::from(b"abc".as_slice());
        assert_eq!(a, b);
    }
}
