//! Property-based safety tests: under arbitrary message delivery order,
//! duplication, loss, and leader churn, Paxos must never let two replicas
//! deliver different values for the same slot, and delivered sequences
//! must be prefix-consistent.

use proptest::prelude::*;

use smr_paxos::{Action, Event, PaxosReplica, Target};
use smr_types::{ClientId, ClusterConfig, ReplicaId, RequestId, SeqNum, Slot};
use smr_wire::{Batch, ProtocolMsg, Request};

fn batch(tag: u64) -> Batch {
    Batch::new(vec![Request::new(
        RequestId::new(ClientId(tag), SeqNum(tag)),
        tag.to_le_bytes().to_vec(),
    )])
}

/// A chaotic scheduler: applies a script of operations to a cluster,
/// buffering messages in a pool delivered in arbitrary (script-chosen)
/// order, with duplication and loss.
struct Chaos {
    replicas: Vec<PaxosReplica>,
    /// (to, from, msg) triples awaiting delivery.
    pool: Vec<(ReplicaId, ReplicaId, ProtocolMsg)>,
    delivered: Vec<Vec<(Slot, Batch)>>,
    now: u64,
    next_tag: u64,
}

impl Chaos {
    fn new(n: usize) -> Self {
        let config = ClusterConfig::builder(n).window(4).build().unwrap();
        let mut chaos = Chaos {
            replicas: (0..n as u16)
                .map(|i| PaxosReplica::new(ReplicaId(i), config.clone()))
                .collect(),
            pool: Vec::new(),
            delivered: vec![Vec::new(); n],
            now: 0,
            next_tag: 0,
        };
        for i in 0..n {
            chaos.apply(ReplicaId(i as u16), Event::Init);
        }
        chaos
    }

    fn apply(&mut self, at: ReplicaId, event: Event) {
        self.now += 1;
        let mut actions = Vec::new();
        self.replicas[at.index()].handle(event, self.now, &mut actions);
        let n = self.replicas.len();
        for action in actions {
            match action {
                Action::Send { to, msg } => match to {
                    Target::All => {
                        for r in 0..n as u16 {
                            if ReplicaId(r) != at {
                                self.pool.push((ReplicaId(r), at, msg.clone()));
                            }
                        }
                    }
                    Target::One(r) => self.pool.push((r, at, msg)),
                },
                Action::Deliver { slot, batch } => {
                    self.delivered[at.index()].push((slot, batch));
                }
                _ => {}
            }
        }
    }

    fn step(&mut self, op: u8, pick: usize) {
        let n = self.replicas.len();
        match op % 10 {
            // Deliver a pooled message (and remove it).
            0..=4 => {
                if self.pool.is_empty() {
                    return;
                }
                let idx = pick % self.pool.len();
                let (to, from, msg) = self.pool.swap_remove(idx);
                self.apply(to, Event::Message { from, msg });
            }
            // Deliver a duplicate (keep the original in the pool).
            5 => {
                if self.pool.is_empty() {
                    return;
                }
                let idx = pick % self.pool.len();
                let (to, from, msg) = self.pool[idx].clone();
                self.apply(to, Event::Message { from, msg });
            }
            // Drop a message.
            6 => {
                if self.pool.is_empty() {
                    return;
                }
                let idx = pick % self.pool.len();
                self.pool.swap_remove(idx);
            }
            // Propose at whichever replica currently thinks it leads.
            7 | 8 => {
                let tag = self.next_tag;
                self.next_tag += 1;
                let at = ReplicaId((pick % n) as u16);
                self.apply(at, Event::Proposal(batch(tag)));
            }
            // Suspect the current leader at a random replica.
            9 => {
                let at = ReplicaId((pick % n) as u16);
                let view = self.replicas[at.index()].view();
                self.apply(at, Event::Suspect { view });
            }
            _ => unreachable!(),
        }
    }

    fn check_safety(&self) {
        // Pairwise prefix consistency of delivered sequences.
        for a in 0..self.delivered.len() {
            for b in (a + 1)..self.delivered.len() {
                let (da, db) = (&self.delivered[a], &self.delivered[b]);
                let common = da.len().min(db.len());
                assert_eq!(
                    &da[..common],
                    &db[..common],
                    "replicas {a} and {b} diverge within their common prefix"
                );
            }
        }
        // Delivered slots are consecutive from 0 at each replica.
        for (r, seq) in self.delivered.iter().enumerate() {
            for (i, (slot, _)) in seq.iter().enumerate() {
                assert_eq!(slot.0, i as u64, "replica {r} delivered slots out of order");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chaotic_schedules_preserve_agreement_n3(
        script in proptest::collection::vec((any::<u8>(), any::<usize>()), 0..400)
    ) {
        let mut chaos = Chaos::new(3);
        for (op, pick) in script {
            chaos.step(op, pick);
        }
        chaos.check_safety();
    }

    #[test]
    fn chaotic_schedules_preserve_agreement_n5(
        script in proptest::collection::vec((any::<u8>(), any::<usize>()), 0..400)
    ) {
        let mut chaos = Chaos::new(5);
        for (op, pick) in script {
            chaos.step(op, pick);
        }
        chaos.check_safety();
    }

    #[test]
    fn draining_the_pool_reaches_agreement(
        script in proptest::collection::vec((any::<u8>(), any::<usize>()), 0..200)
    ) {
        // After arbitrary chaos (without drops), drain every message:
        // replicas that share the highest view must converge on a common
        // delivered prefix; all must stay consistent.
        let mut chaos = Chaos::new(3);
        for (op, pick) in script {
            let op = if op % 10 == 6 { 0 } else { op }; // no drops
            chaos.step(op, pick);
        }
        let mut budget = 100_000;
        while !chaos.pool.is_empty() && budget > 0 {
            chaos.step(0, 0);
            budget -= 1;
        }
        prop_assert!(budget > 0, "message pool drained");
        chaos.check_safety();
    }
}

#[test]
fn long_seeded_chaos_run() {
    // A long deterministic pseudo-random run as a cheap regression net.
    let mut chaos = Chaos::new(3);
    let mut state = 0x9E3779B97F4A7C15u64;
    for _ in 0..20_000 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let op = (state >> 33) as u8;
        let pick = (state >> 17) as usize;
        chaos.step(op, pick);
    }
    chaos.check_safety();
    assert!(
        chaos.delivered.iter().any(|d| !d.is_empty()),
        "chaos run should still make progress"
    );
}
