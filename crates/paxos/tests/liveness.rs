//! Liveness-oriented scenario tests: the protocol keeps making progress
//! through cascaded view changes, log truncation, and long runs.

use smr_paxos::{Action, Event, PaxosReplica, ReplicaRole, Target};
use smr_types::{ClientId, ClusterConfig, ReplicaId, RequestId, SeqNum, Slot, View};
use smr_wire::{Batch, ProtocolMsg, Request};

fn batch(tag: u64) -> Batch {
    Batch::new(vec![Request::new(
        RequestId::new(ClientId(tag), SeqNum(0)),
        vec![0u8; 16],
    )])
}

/// Synchronous lossless cluster pump (like the unit-test harness, but
/// reusable across scenario tests).
struct Net {
    replicas: Vec<PaxosReplica>,
    delivered: Vec<Vec<(Slot, Batch)>>,
    now: u64,
}

impl Net {
    fn new(n: usize, window: usize) -> Self {
        let config = ClusterConfig::builder(n).window(window).build().unwrap();
        let mut net = Net {
            replicas: (0..n as u16)
                .map(|i| PaxosReplica::new(ReplicaId(i), config.clone()))
                .collect(),
            delivered: vec![Vec::new(); n],
            now: 0,
        };
        for i in 0..n {
            net.event(ReplicaId(i as u16), Event::Init);
        }
        net
    }

    fn event(&mut self, at: ReplicaId, event: Event) {
        self.now += 1;
        let mut actions = Vec::new();
        self.replicas[at.index()].handle(event, self.now, &mut actions);
        let n = self.replicas.len();
        for a in actions {
            match a {
                Action::Send { to, msg } => {
                    let targets: Vec<ReplicaId> = match to {
                        Target::All => (0..n as u16).map(ReplicaId).filter(|r| *r != at).collect(),
                        Target::One(r) => vec![r],
                    };
                    for t in targets {
                        self.event(
                            t,
                            Event::Message {
                                from: at,
                                msg: msg.clone(),
                            },
                        );
                    }
                }
                Action::Deliver { slot, batch } => self.delivered[at.index()].push((slot, batch)),
                _ => {}
            }
        }
    }
}

#[test]
fn cascaded_view_changes_converge() {
    let mut net = Net::new(5, 10);
    let mut tag = 0;
    // Rotate leadership through every replica, ordering work in between.
    for round in 0..5u64 {
        let leader = net.replicas[0].leader();
        for _ in 0..4 {
            net.event(leader, Event::Proposal(batch(tag)));
            tag += 1;
        }
        // Everyone suspects; the next leader takes over.
        let view = View(round);
        for r in 0..5u16 {
            net.event(ReplicaId(r), Event::Suspect { view });
        }
    }
    let leader = net.replicas[0].leader();
    for _ in 0..4 {
        net.event(leader, Event::Proposal(batch(tag)));
        tag += 1;
    }
    // All replicas agree on a common prefix and delivered everything
    // that any replica delivered.
    let longest = net.delivered.iter().map(|d| d.len()).max().unwrap();
    assert!(
        longest >= tag as usize - 4,
        "nearly all proposals survived the churn"
    );
    for r in 1..5 {
        let common = net.delivered[0].len().min(net.delivered[r].len());
        assert_eq!(&net.delivered[0][..common], &net.delivered[r][..common]);
    }
}

#[test]
fn long_run_truncates_log() {
    let mut net = Net::new(3, 10);
    let mut core_retention_check = 0u64;
    for tag in 0..6_000u64 {
        net.event(ReplicaId(0), Event::Proposal(batch(tag)));
        core_retention_check = tag;
    }
    let _ = core_retention_check;
    // Retention default is 4096 slots: the log must not grow unboundedly.
    for r in 0..3 {
        assert!(
            net.replicas[r].log().len() <= 4_200,
            "replica {r} log GC'd: {} entries",
            net.replicas[r].log().len()
        );
        assert_eq!(net.delivered[r].len(), 6_000);
    }
    assert!(net.replicas[0].log().truncated_below() > Slot(1_000));
}

#[test]
fn deposed_leader_rejoins_as_follower() {
    let mut net = Net::new(3, 10);
    for tag in 0..3 {
        net.event(ReplicaId(0), Event::Proposal(batch(tag)));
    }
    net.event(ReplicaId(1), Event::Suspect { view: View(0) });
    assert_eq!(
        net.replicas[0].role(),
        ReplicaRole::Follower,
        "old leader stepped down"
    );
    assert_eq!(net.replicas[0].leader(), ReplicaId(1));
    // The old leader's stale proposal is rejected by peers and dropped.
    net.event(ReplicaId(0), Event::Proposal(batch(99)));
    assert!(net.replicas[0].dropped_proposals() > 0);
    // New leader orders on.
    for tag in 3..6 {
        net.event(ReplicaId(1), Event::Proposal(batch(tag)));
    }
    assert_eq!(net.delivered[0].len(), 6);
}

#[test]
fn window_reopens_after_decides() {
    let config = ClusterConfig::builder(3).window(3).build().unwrap();
    let mut leader = PaxosReplica::new(ReplicaId(0), config);
    let mut out = Vec::new();
    leader.handle(Event::Init, 0, &mut out);
    out.clear();
    for tag in 0..3 {
        leader.handle(Event::Proposal(batch(tag)), 0, &mut out);
    }
    assert!(!leader.window_open());
    // One accept decides slot 0 (majority = leader + 1).
    leader.handle(
        Event::Message {
            from: ReplicaId(1),
            msg: ProtocolMsg::Accept {
                view: View(0),
                slot: Slot(0),
            },
        },
        1,
        &mut out,
    );
    assert_eq!(leader.in_flight(), 2);
    assert!(leader.window_open(), "window reopened after the decide");
}

#[test]
fn heartbeats_advance_follower_knowledge() {
    let config = ClusterConfig::new(3);
    let mut follower = PaxosReplica::new(ReplicaId(1), config);
    let mut out = Vec::new();
    follower.handle(Event::Init, 0, &mut out);
    out.clear();
    follower.handle(
        Event::Message {
            from: ReplicaId(0),
            msg: ProtocolMsg::Heartbeat {
                view: View(0),
                decided_upto: Slot(0),
            },
        },
        1,
        &mut out,
    );
    assert!(
        out.iter().all(|a| !matches!(a, Action::Send { .. })),
        "nothing to catch up"
    );
}
