//! Pure, deterministic MultiPaxos replication core.
//!
//! This crate implements the *logic* of the replication protocol the paper
//! builds on (§III-A: leader-based Paxos with the batching and pipelining
//! optimizations of ref. \[12\]) as a side-effect-free state machine:
//! events in ([`Event`]), actions out ([`Action`]). It performs no I/O,
//! spawns no threads, and reads no clocks — the caller supplies
//! timestamps. This is what makes the same protocol code usable by
//!
//! * the real threaded runtime (`smr-core`), where the Protocol thread
//!   feeds it events popped from the DispatcherQueue, and
//! * the discrete-event simulator (`smr-sim-jpaxos`), where virtual
//!   threads feed it events in virtual time,
//!
//! and what makes the safety property ("no two replicas decide
//! differently") directly checkable by property-based tests.
//!
//! # Protocol sketch
//!
//! Views rotate round-robin: the leader of view `v` is replica `v mod n`.
//! View 0 is prepared by convention (nothing can have been accepted
//! earlier), so a fresh cluster starts ordering immediately. A leader
//! assigns consecutive slots to batches and sends `Propose` (Phase 2a);
//! acceptors accept and broadcast `Accept` (Phase 2b) to *all* replicas, so
//! every replica learns decisions directly. A replica suspects the leader
//! (failure-detector event), advances to the next view, and the new
//! leader runs `Prepare`/`Promise` (Phase 1) over the unstable log suffix
//! before proposing again. Catch-up fills log gaps from peers.
//!
//! # Examples
//!
//! Single-replica cluster deciding a batch immediately:
//!
//! ```
//! use smr_paxos::{Action, Event, PaxosReplica};
//! use smr_types::{ClusterConfig, ReplicaId};
//! use smr_wire::Batch;
//!
//! let mut replica = PaxosReplica::new(ReplicaId(0), ClusterConfig::new(1));
//! let mut actions = Vec::new();
//! replica.handle(Event::Init, 0, &mut actions);
//! replica.handle(Event::Proposal(Batch::empty()), 0, &mut actions);
//! assert!(actions.iter().any(|a| matches!(a, Action::Deliver { .. })));
//! ```

mod batcher;
mod events;
mod log;
mod replica;

pub use batcher::BatchBuilder;
pub use events::{Action, Event, RetransmitKey, Target};
pub use log::{Instance, Log};
pub use replica::{PaxosReplica, ReplicaRole};
