//! Pure batch-formation policy (the logic run by the Batcher thread).
//!
//! §V-C1: the Batcher takes requests from the RequestQueue, forms batches
//! according to the batching policy (`BSZ` bytes or a timeout), and puts
//! them on the ProposalQueue. The *policy* is pure and lives here; the
//! thread around it lives in `smr-core` (and a simulated counterpart in
//! `smr-sim-jpaxos`).

use smr_types::BatchPolicy;
use smr_wire::{Batch, Request};

/// Incremental batch builder.
///
/// Timestamps are caller-supplied nanoseconds from an arbitrary epoch
/// (monotonic), keeping the policy usable under both real and virtual
/// time.
///
/// # Examples
///
/// ```
/// use smr_paxos::BatchBuilder;
/// use smr_types::{BatchPolicy, ClientId, RequestId, SeqNum};
/// use smr_wire::Request;
///
/// let mut builder = BatchBuilder::new(BatchPolicy {
///     max_bytes: 100,
///     ..BatchPolicy::default()
/// });
/// let req = Request::new(RequestId::new(ClientId(1), SeqNum(1)), vec![0u8; 40]);
/// assert!(builder.push(req.clone(), 0).is_none(), "first request fits");
/// let full = builder.push(req, 10).expect("second request overflows 100 bytes");
/// assert_eq!(full.len(), 1);
/// ```
#[derive(Debug)]
pub struct BatchBuilder {
    policy: BatchPolicy,
    pending: Vec<Request>,
    pending_bytes: usize,
    opened_at: Option<u64>,
}

/// Serialized overhead of a batch envelope (request count prefix).
const BATCH_OVERHEAD: usize = 4;

impl BatchBuilder {
    /// Creates a builder with the given policy.
    pub fn new(policy: BatchPolicy) -> Self {
        BatchBuilder {
            policy,
            pending: Vec::new(),
            pending_bytes: BATCH_OVERHEAD,
            opened_at: None,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Number of requests currently pending.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Serialized size the pending batch would have.
    pub fn pending_bytes(&self) -> usize {
        self.pending_bytes
    }

    /// Adds a request; returns a completed batch if the addition filled
    /// one (the completed batch never includes `req` unless `req` itself
    /// closed it by count).
    pub fn push(&mut self, req: Request, now_ns: u64) -> Option<Batch> {
        let size = req.wire_size();
        let mut completed = None;
        // Close the current batch first if this request would overflow it.
        if !self.pending.is_empty() && self.pending_bytes + size > self.policy.max_bytes {
            completed = self.flush();
        }
        if self.pending.is_empty() {
            self.opened_at = Some(now_ns);
        }
        self.pending_bytes += size;
        self.pending.push(req);
        if completed.is_none()
            && (self.pending.len() >= self.policy.max_requests
                || self.pending_bytes >= self.policy.max_bytes)
        {
            completed = self.flush();
        }
        completed
    }

    /// Adds a whole burst of requests, appending every batch the burst
    /// completes to `out` (the Batcher's reusable buffer — the bulk
    /// counterpart of [`BatchBuilder::push`] for drains of the
    /// RequestQueue).
    pub fn push_all<I>(&mut self, reqs: I, now_ns: u64, out: &mut Vec<Batch>)
    where
        I: IntoIterator<Item = Request>,
    {
        for req in reqs {
            if let Some(batch) = self.push(req, now_ns) {
                out.push(batch);
            }
        }
    }

    /// Closes and returns the pending batch if its timeout expired.
    pub fn poll_timeout(&mut self, now_ns: u64) -> Option<Batch> {
        match self.opened_at {
            Some(t) if now_ns.saturating_sub(t) >= self.policy.timeout.as_nanos() as u64 => {
                self.flush()
            }
            _ => None,
        }
    }

    /// Deadline (ns) at which the pending batch must be flushed, if one is
    /// open.
    pub fn next_deadline(&self) -> Option<u64> {
        self.opened_at
            .map(|t| t + self.policy.timeout.as_nanos() as u64)
    }

    /// Unconditionally closes the pending batch.
    pub fn flush(&mut self) -> Option<Batch> {
        if self.pending.is_empty() {
            return None;
        }
        self.pending_bytes = BATCH_OVERHEAD;
        self.opened_at = None;
        Some(Batch::new(std::mem::take(&mut self.pending)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr_types::{ClientId, RequestId, SeqNum};
    use std::time::Duration;

    fn req(seq: u64, payload: usize) -> Request {
        Request::new(RequestId::new(ClientId(1), SeqNum(seq)), vec![0u8; payload])
    }

    fn policy(max_bytes: usize) -> BatchPolicy {
        BatchPolicy {
            max_bytes,
            max_requests: 1000,
            timeout: Duration::from_millis(5),
        }
    }

    #[test]
    fn fills_by_bytes() {
        // 128-byte payloads serialize to 148 bytes; BSZ=1300 fits 8.
        let mut b = BatchBuilder::new(policy(1300));
        let mut batches = Vec::new();
        for i in 0..17 {
            if let Some(batch) = b.push(req(i, 128), 0) {
                batches.push(batch);
            }
        }
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].len(), 8, "BSZ=1300 holds 8 x 148-byte requests");
        assert_eq!(batches[1].len(), 8);
        assert_eq!(b.pending_len(), 1, "17th request opens the third batch");
    }

    #[test]
    fn closes_before_overflow() {
        let mut b = BatchBuilder::new(policy(100));
        assert!(b.push(req(0, 60), 0).is_none());
        // 60+20=80 pending (+4 overhead); adding another 80 would overflow
        // 100, so the current batch is closed *without* the new request.
        let closed = b.push(req(1, 60), 0).unwrap();
        assert_eq!(closed.len(), 1);
        assert_eq!(b.pending_len(), 1);
    }

    #[test]
    fn fills_by_count() {
        let p = BatchPolicy {
            max_requests: 3,
            ..policy(1_000_000)
        };
        let mut b = BatchBuilder::new(p);
        assert!(b.push(req(0, 1), 0).is_none());
        assert!(b.push(req(1, 1), 0).is_none());
        let batch = b.push(req(2, 1), 0).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(b.pending_len(), 0);
    }

    #[test]
    fn oversized_request_gets_own_batch() {
        let mut b = BatchBuilder::new(policy(50));
        let batch = b.push(req(0, 100), 0).unwrap();
        assert_eq!(batch.len(), 1, "request larger than BSZ still ships");
    }

    #[test]
    fn timeout_flushes_partial_batch() {
        let mut b = BatchBuilder::new(policy(10_000));
        b.push(req(0, 10), 1_000);
        assert!(b.poll_timeout(1_000).is_none());
        let batch = b.poll_timeout(1_000 + 5_000_000).unwrap();
        assert_eq!(batch.len(), 1);
        assert!(b.next_deadline().is_none());
    }

    #[test]
    fn deadline_tracks_first_request() {
        let mut b = BatchBuilder::new(policy(10_000));
        assert!(b.next_deadline().is_none());
        b.push(req(0, 10), 7);
        assert_eq!(b.next_deadline(), Some(7 + 5_000_000));
        b.push(req(1, 10), 1_000_000);
        assert_eq!(
            b.next_deadline(),
            Some(7 + 5_000_000),
            "deadline is from batch open"
        );
    }

    #[test]
    fn push_all_matches_scalar_pushes() {
        let mut scalar = BatchBuilder::new(policy(1300));
        let mut bulk = BatchBuilder::new(policy(1300));
        let reqs: Vec<Request> = (0..17).map(|i| req(i, 128)).collect();
        let mut scalar_out = Vec::new();
        for r in reqs.clone() {
            if let Some(b) = scalar.push(r, 42) {
                scalar_out.push(b);
            }
        }
        let mut bulk_out = Vec::new();
        bulk.push_all(reqs, 42, &mut bulk_out);
        assert_eq!(bulk_out.len(), scalar_out.len());
        for (b, s) in bulk_out.iter().zip(&scalar_out) {
            assert_eq!(b.len(), s.len());
        }
        assert_eq!(bulk.pending_len(), scalar.pending_len());
        assert_eq!(bulk.pending_bytes(), scalar.pending_bytes());
    }

    #[test]
    fn flush_empty_is_none() {
        let mut b = BatchBuilder::new(policy(100));
        assert!(b.flush().is_none());
    }

    #[test]
    fn requests_preserve_order() {
        let mut b = BatchBuilder::new(policy(1_000_000));
        for i in 0..5 {
            b.push(req(i, 4), 0);
        }
        let batch = b.flush().unwrap();
        let seqs: Vec<u64> = batch.requests.iter().map(|r| r.id.seq.0).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }
}
