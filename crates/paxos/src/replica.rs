//! The protocol state machine driven by the Protocol thread.

use std::collections::{BTreeSet, HashMap, VecDeque};

use smr_types::{ClusterConfig, CompactionPolicy, ReplicaId, Slot, SnapshotBlob, View};
use smr_wire::{AcceptedEntry, Batch, ProtocolMsg};

use crate::events::{Action, Event, RetransmitKey, Target};
use crate::log::Log;

/// Role of a replica with respect to the current view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaRole {
    /// Accepting proposals from the view's leader.
    Follower,
    /// This replica leads the view and is running Phase 1.
    Preparing,
    /// This replica leads the view and is in the Phase 2 steady state.
    Leading,
}

/// Maximum slots per catch-up query/reply, bounding message size.
const CATCHUP_CHUNK: u64 = 256;

/// How long (ns) to wait for a catch-up reply before re-issuing.
const CATCHUP_TIMEOUT_NS: u64 = 200_000_000;

/// The MultiPaxos state machine of one replica.
///
/// Feed it [`Event`]s via [`PaxosReplica::handle`]; it appends [`Action`]s
/// for the caller to carry out. See the crate docs for the protocol
/// sketch and the division of labour with the failure detector and the
/// retransmitter.
#[derive(Debug)]
pub struct PaxosReplica {
    me: ReplicaId,
    config: ClusterConfig,
    view: View,
    role: ReplicaRole,
    log: Log,
    /// Peers' Phase 1b responses while preparing.
    promises: HashMap<ReplicaId, Vec<AcceptedEntry>>,
    prepare_first_unstable: Slot,
    /// Next slot this leader will assign.
    next_slot: Slot,
    /// Slots proposed in the current view and not yet decided (the
    /// paper's "parallel ballots in execution", bounded by `WND`).
    my_inflight: BTreeSet<Slot>,
    /// Proposals buffered while preparing or while the window is full.
    pending_proposals: VecDeque<Batch>,
    dropped_proposals: u64,
    /// Outstanding catch-up query: (first slot asked, issue time ns).
    catchup_inflight: Option<(Slot, u64)>,
    /// Highest `decided_upto` heard from each replica.
    peer_decided_upto: Vec<Slot>,
    /// When delivered slots are garbage collected.
    policy: CompactionPolicy,
    /// First slot NOT covered by the newest service snapshot (exclusive).
    /// Under [`CompactionPolicy::SnapshotDriven`] nothing below this is
    /// ever compacted until a snapshot covers it.
    snapshot_watermark: Slot,
}

impl PaxosReplica {
    /// Creates the state machine for replica `me` of `config`.
    ///
    /// # Panics
    ///
    /// Panics if `me` is not a member of `config`.
    pub fn new(me: ReplicaId, config: ClusterConfig) -> Self {
        assert!(
            config.contains(me),
            "replica {me} not in cluster of {}",
            config.n()
        );
        let n = config.n();
        PaxosReplica {
            me,
            config,
            view: View::ZERO,
            role: ReplicaRole::Follower,
            log: Log::new(),
            promises: HashMap::new(),
            prepare_first_unstable: Slot::ZERO,
            next_slot: Slot::ZERO,
            my_inflight: BTreeSet::new(),
            pending_proposals: VecDeque::new(),
            dropped_proposals: 0,
            catchup_inflight: None,
            peer_decided_upto: vec![Slot::ZERO; n],
            // Historical default: bounded slot retention. Snapshot-capable
            // runtimes switch to `SnapshotDriven` via `set_compaction`.
            policy: CompactionPolicy::KeepSlots(4096),
            snapshot_watermark: Slot::ZERO,
        }
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.me
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Current view.
    pub fn view(&self) -> View {
        self.view
    }

    /// Current role.
    pub fn role(&self) -> ReplicaRole {
        self.role
    }

    /// Leader of the current view.
    pub fn leader(&self) -> ReplicaId {
        self.view.leader(self.config.n())
    }

    /// Whether this replica leads the current view (preparing or leading).
    pub fn is_leader(&self) -> bool {
        self.leader() == self.me
    }

    /// Number of parallel ballots currently executing (Table I's
    /// "avg parallel ballots" samples this).
    pub fn in_flight(&self) -> usize {
        self.my_inflight.len()
    }

    /// Whether a new proposal would be admitted immediately (pipelining
    /// window `WND` not exhausted).
    pub fn window_open(&self) -> bool {
        self.role == ReplicaRole::Leading && self.my_inflight.len() < self.config.window()
    }

    /// The slot this leader will assign to its next immediate proposal.
    /// Exact only while [`PaxosReplica::window_open`] holds (a proposal
    /// handled then is never buffered, so it takes exactly this slot);
    /// callers tracking per-proposal state key it by this value.
    pub fn next_slot(&self) -> Slot {
        self.next_slot
    }

    /// First slot not known decided.
    pub fn decided_upto(&self) -> Slot {
        self.log.first_gap()
    }

    /// Proposals buffered awaiting leadership/window.
    pub fn pending_proposals(&self) -> usize {
        self.pending_proposals.len()
    }

    /// Proposals dropped because this replica was not leading.
    pub fn dropped_proposals(&self) -> u64 {
        self.dropped_proposals
    }

    /// Read access to the log (tests, catch-up serving, snapshots).
    pub fn log(&self) -> &Log {
        &self.log
    }

    /// Sets how many delivered slots are retained for catch-up.
    #[deprecated(
        since = "0.7.0",
        note = "use `set_compaction(CompactionPolicy::KeepSlots(n))`"
    )]
    pub fn set_retention(&mut self, slots: u64) {
        self.policy = CompactionPolicy::KeepSlots(slots);
    }

    /// Sets the log-compaction policy.
    pub fn set_compaction(&mut self, policy: CompactionPolicy) {
        self.policy = policy;
    }

    /// The active log-compaction policy.
    pub fn compaction(&self) -> CompactionPolicy {
        self.policy
    }

    /// First slot not covered by the newest known service snapshot.
    pub fn snapshot_watermark(&self) -> Slot {
        self.snapshot_watermark
    }

    /// Records that a service snapshot now covers every slot below
    /// `applied_upto`.
    ///
    /// Two callers: the runtime after the ServiceManager persists a local
    /// snapshot (steady state — the log already delivered those slots, so
    /// this only licenses compaction), and recovery/snapshot-install paths
    /// where the service state is AHEAD of the log (the log fast-forwards
    /// so ordering resumes at the watermark instead of slot 0).
    pub fn note_snapshot(&mut self, applied_upto: Slot) {
        if applied_upto <= self.snapshot_watermark {
            return;
        }
        self.snapshot_watermark = applied_upto;
        if applied_upto > self.log.delivered_upto() {
            self.log.fast_forward(applied_upto);
            self.next_slot = self.next_slot.max(applied_upto);
        }
        self.compact();
    }

    /// Garbage-collects the log according to the active policy.
    fn compact(&mut self) {
        match self.policy {
            CompactionPolicy::KeepAll => {}
            CompactionPolicy::KeepSlots(n) => {
                let keep_from = Slot(self.log.first_gap().0.saturating_sub(n));
                self.log.truncate_below(keep_from);
            }
            CompactionPolicy::SnapshotDriven => {
                // Never drop history a snapshot does not cover: before the
                // first snapshot the log is kept whole.
                self.log.truncate_below(self.snapshot_watermark);
            }
        }
    }

    /// Processes one event, appending resulting actions to `out`.
    ///
    /// `now_ns` is a monotonic timestamp supplied by the caller (real or
    /// virtual time).
    pub fn handle(&mut self, event: Event, now_ns: u64, out: &mut Vec<Action>) {
        match event {
            Event::Init => self.on_init(out),
            Event::Proposal(batch) => self.on_proposal(batch, out),
            Event::Message { from, msg } => self.on_message(from, msg, now_ns, out),
            Event::Suspect { view } => self.on_suspect(view, out),
            Event::Tick => self.maybe_catchup(None, now_ns, out),
        }
    }

    fn on_init(&mut self, out: &mut Vec<Action>) {
        // View 0 is prepared by convention: nothing can have been accepted
        // in an earlier view, so Phase 1 is vacuous.
        if self.is_leader() {
            self.role = ReplicaRole::Leading;
        }
        out.push(Action::LeaderChanged {
            view: self.view,
            leader: self.leader(),
        });
    }

    fn on_proposal(&mut self, batch: Batch, out: &mut Vec<Action>) {
        match self.role {
            ReplicaRole::Leading if self.window_open() => self.propose(batch, out),
            ReplicaRole::Leading | ReplicaRole::Preparing => {
                if self.pending_proposals.len() < 2 * self.config.window() {
                    self.pending_proposals.push_back(batch);
                } else {
                    self.dropped_proposals += 1;
                }
            }
            ReplicaRole::Follower => {
                // Not our job to order this; the client will retransmit to
                // the real leader and the reply cache deduplicates.
                self.dropped_proposals += 1;
            }
        }
    }

    fn propose(&mut self, batch: Batch, out: &mut Vec<Action>) {
        let slot = self.next_slot;
        self.next_slot = slot.next();
        let view = self.view;
        let inst = self.log.entry(slot);
        debug_assert!(!inst.decided, "proposing into a decided slot");
        inst.value = Some(batch.clone());
        inst.accepted_view = Some(view);
        inst.record_vote(self.me, view);
        self.my_inflight.insert(slot);
        let msg = ProtocolMsg::Propose { view, slot, batch };
        out.push(Action::Send {
            to: Target::All,
            msg: msg.clone(),
        });
        out.push(Action::ScheduleRetransmit {
            key: RetransmitKey::Propose { view, slot },
            to: Target::All,
            msg,
        });
        self.try_decide(slot, out);
    }

    fn on_suspect(&mut self, suspected: View, out: &mut Vec<Action>) {
        if suspected != self.view {
            return; // stale suspicion
        }
        let next = self.view.next();
        self.advance_view(next, out);
        if self.is_leader() {
            self.start_prepare(out);
        } else {
            // Nudge the natural next leader in case its own detector is
            // slower than ours.
            out.push(Action::Send {
                to: Target::One(next.leader(self.config.n())),
                msg: ProtocolMsg::Suspect {
                    view: suspected,
                    from: self.me,
                },
            });
        }
    }

    /// Moves to `view` (strictly higher), resetting per-view state.
    fn advance_view(&mut self, view: View, out: &mut Vec<Action>) {
        debug_assert!(view > self.view);
        self.view = view;
        self.role = ReplicaRole::Follower;
        self.my_inflight.clear();
        self.promises.clear();
        out.push(Action::CancelAllRetransmits);
        out.push(Action::LeaderChanged {
            view,
            leader: self.leader(),
        });
    }

    fn start_prepare(&mut self, out: &mut Vec<Action>) {
        debug_assert!(self.is_leader());
        self.role = ReplicaRole::Preparing;
        self.promises.clear();
        self.prepare_first_unstable = self.log.first_gap();
        let msg = ProtocolMsg::Prepare {
            view: self.view,
            first_unstable: self.prepare_first_unstable,
        };
        out.push(Action::Send {
            to: Target::All,
            msg: msg.clone(),
        });
        out.push(Action::ScheduleRetransmit {
            key: RetransmitKey::Prepare { view: self.view },
            to: Target::All,
            msg,
        });
        // A single-replica cluster has its majority already.
        if 1 + self.promises.len() >= self.config.majority() {
            self.finish_prepare(out);
        }
    }

    fn finish_prepare(&mut self, out: &mut Vec<Action>) {
        self.role = ReplicaRole::Leading;
        out.push(Action::CancelRetransmit {
            key: RetransmitKey::Prepare { view: self.view },
        });
        let fu = self.prepare_first_unstable;

        // Slots the quorum reports decided are final, but a peer that has
        // compacted them holds neither value nor vote, so its promise is
        // silent about them. Below the reported decided frontier that
        // silence must NOT be read as "nothing was accepted": refilling
        // such a hole with a no-op would overwrite decided history.
        // Known values are still re-proposed anywhere; unknown slots
        // below the frontier are left to catch-up (snapshot transfer
        // once compacted).
        let decided_elsewhere = self
            .peer_decided_upto
            .iter()
            .copied()
            .max()
            .unwrap_or(Slot::ZERO);

        // Choose, per slot, the value accepted in the highest view among
        // the quorum's reports and our own log.
        let mut best: HashMap<u64, (View, Batch)> = HashMap::new();
        for (slot, view, batch) in self.log.accepted_from(fu) {
            best.insert(slot.0, (view, batch));
        }
        for entries in self.promises.values() {
            for e in entries {
                if e.slot < fu {
                    continue;
                }
                match best.get(&e.slot.0) {
                    Some((v, _)) if *v >= e.view => {}
                    _ => {
                        best.insert(e.slot.0, (e.view, e.batch.clone()));
                    }
                }
            }
        }
        let refill_from = fu.max(decided_elsewhere);
        let max_slot = best.keys().max().copied().map(Slot);
        let stop = max_slot.map_or(fu, |m| m.next()).max(refill_from);
        self.next_slot = stop;
        // Below the frontier, re-propose only slots whose value is known
        // (a hole there is a compacted decided slot, not a free slot);
        // from the frontier up, re-propose every unstable slot with
        // holes becoming no-ops so the log stays gap-free and later
        // decisions can execute.
        let mut salvage: Vec<u64> = best
            .keys()
            .copied()
            .filter(|s| fu.0 <= *s && *s < refill_from.0)
            .collect();
        salvage.sort_unstable();
        let unstable = salvage.into_iter().chain(refill_from.0..stop.0).map(Slot);
        for slot in unstable {
            if self.log.get(slot).is_some_and(|i| i.decided) {
                continue;
            }
            let batch = best
                .get(&slot.0)
                .map(|(_, b)| b.clone())
                .unwrap_or_else(Batch::empty);
            let view = self.view;
            let inst = self.log.entry(slot);
            inst.value = Some(batch.clone());
            inst.accepted_view = Some(view);
            inst.record_vote(self.me, view);
            self.my_inflight.insert(slot);
            let msg = ProtocolMsg::Propose { view, slot, batch };
            out.push(Action::Send {
                to: Target::All,
                msg: msg.clone(),
            });
            out.push(Action::ScheduleRetransmit {
                key: RetransmitKey::Propose { view, slot },
                to: Target::All,
                msg,
            });
            self.try_decide(slot, out);
        }
        self.drain_pending(out);
    }

    fn drain_pending(&mut self, out: &mut Vec<Action>) {
        while self.window_open() {
            match self.pending_proposals.pop_front() {
                Some(batch) => self.propose(batch, out),
                None => break,
            }
        }
    }

    fn on_message(
        &mut self,
        from: ReplicaId,
        msg: ProtocolMsg,
        now_ns: u64,
        out: &mut Vec<Action>,
    ) {
        if !self.config.contains(from) {
            return;
        }
        match msg {
            ProtocolMsg::Prepare {
                view,
                first_unstable,
            } => self.on_prepare(from, view, first_unstable, out),
            ProtocolMsg::Promise {
                view,
                decided_upto,
                accepted,
            } => self.on_promise(from, view, decided_upto, accepted, now_ns, out),
            ProtocolMsg::Propose { view, slot, batch } => {
                self.on_propose_msg(from, view, slot, batch, now_ns, out)
            }
            ProtocolMsg::Accept { view, slot } => self.on_accept(from, view, slot, now_ns, out),
            ProtocolMsg::CatchupQuery { from: lo, to } => self.on_catchup_query(from, lo, to, out),
            ProtocolMsg::CatchupReply {
                decided_upto,
                entries,
            } => self.on_catchup_reply(from, decided_upto, entries, now_ns, out),
            ProtocolMsg::Heartbeat { view, decided_upto } => {
                self.on_heartbeat(from, view, decided_upto, now_ns, out)
            }
            ProtocolMsg::Snapshot {
                applied_upto,
                state_hash,
                state,
            } => self.on_snapshot_msg(from, applied_upto, state_hash, state, now_ns, out),
            ProtocolMsg::Suspect {
                view,
                from: reporter,
            } => {
                // A peer suspects `view`'s leader and we are next in line.
                if view == self.view
                    && reporter != self.me
                    && self.view.next().leader(self.config.n()) == self.me
                {
                    self.on_suspect(view, out);
                }
            }
        }
    }

    fn on_prepare(
        &mut self,
        from: ReplicaId,
        view: View,
        first_unstable: Slot,
        out: &mut Vec<Action>,
    ) {
        if view < self.view || view.leader(self.config.n()) != from {
            return;
        }
        if view > self.view {
            self.advance_view(view, out);
        }
        // (view == self.view case: duplicate Prepare → idempotent re-promise.)
        let accepted = self
            .log
            .accepted_from(first_unstable)
            .into_iter()
            .map(|(slot, view, batch)| AcceptedEntry { slot, view, batch })
            .collect();
        out.push(Action::Send {
            to: Target::One(from),
            msg: ProtocolMsg::Promise {
                view,
                decided_upto: self.log.first_gap(),
                accepted,
            },
        });
    }

    fn on_promise(
        &mut self,
        from: ReplicaId,
        view: View,
        decided_upto: Slot,
        accepted: Vec<AcceptedEntry>,
        now_ns: u64,
        out: &mut Vec<Action>,
    ) {
        self.note_peer_progress(from, decided_upto);
        if view != self.view || self.role != ReplicaRole::Preparing {
            return;
        }
        self.promises.entry(from).or_insert(accepted);
        if 1 + self.promises.len() >= self.config.majority() {
            self.finish_prepare(out);
            self.maybe_catchup(None, now_ns, out);
        }
    }

    fn on_propose_msg(
        &mut self,
        from: ReplicaId,
        view: View,
        slot: Slot,
        batch: Batch,
        now_ns: u64,
        out: &mut Vec<Action>,
    ) {
        if view < self.view || view.leader(self.config.n()) != from {
            return;
        }
        if view > self.view {
            self.advance_view(view, out);
        }
        if slot < self.log.truncated_below() {
            // Long decided and garbage collected; tell the sender it can
            // stop retransmitting.
            out.push(Action::Send {
                to: Target::One(from),
                msg: ProtocolMsg::Accept { view, slot },
            });
            return;
        }
        let me = self.me;
        let inst = self.log.entry(slot);
        if inst.decided {
            debug_assert!(
                inst.value.as_ref() == Some(&batch),
                "paxos safety: decided value re-proposed differently"
            );
            out.push(Action::Send {
                to: Target::One(from),
                msg: ProtocolMsg::Accept { view, slot },
            });
            return;
        }
        // Accept: record our vote and the proposer's implicit vote.
        inst.value = Some(batch);
        inst.accepted_view = Some(view);
        inst.record_vote(me, view);
        inst.record_vote(from, view);
        out.push(Action::Send {
            to: Target::All,
            msg: ProtocolMsg::Accept { view, slot },
        });
        self.try_decide(slot, out);
        // A slot far beyond our decided frontier implies we missed traffic.
        if slot.0 > self.log.first_gap().0 + 2 * self.config.window() as u64 {
            self.maybe_catchup(Some(slot), now_ns, out);
        }
    }

    fn on_accept(
        &mut self,
        from: ReplicaId,
        view: View,
        slot: Slot,
        now_ns: u64,
        out: &mut Vec<Action>,
    ) {
        if view < self.view {
            return;
        }
        if view > self.view {
            // Someone accepted in a higher view; follow along.
            self.advance_view(view, out);
        }
        if slot < self.log.truncated_below() {
            return;
        }
        let majority = self.config.majority();
        let inst = self.log.entry(slot);
        inst.record_vote(from, view);
        let missing_value = inst.value.is_none() && inst.votes_in(view) >= majority;
        self.try_decide(slot, out);
        if missing_value {
            // A majority accepted a proposal we never saw: fetch it.
            self.maybe_catchup(Some(slot.next()), now_ns, out);
        }
    }

    fn try_decide(&mut self, slot: Slot, out: &mut Vec<Action>) {
        let majority = self.config.majority();
        let decidable = self.log.get(slot).is_some_and(|i| i.decidable(majority));
        if !decidable {
            return;
        }
        self.log.mark_decided(slot);
        if self.my_inflight.remove(&slot) {
            out.push(Action::CancelRetransmit {
                key: RetransmitKey::Propose {
                    view: self.view,
                    slot,
                },
            });
        }
        for (slot, batch) in self.log.take_deliverable() {
            out.push(Action::Deliver { slot, batch });
        }
        self.compact();
        if self.role == ReplicaRole::Leading {
            self.drain_pending(out);
        }
    }

    fn on_heartbeat(
        &mut self,
        from: ReplicaId,
        view: View,
        decided_upto: Slot,
        now_ns: u64,
        out: &mut Vec<Action>,
    ) {
        if view > self.view && view.leader(self.config.n()) == from {
            self.advance_view(view, out);
        }
        self.note_peer_progress(from, decided_upto);
        if decided_upto > self.log.first_gap() {
            self.maybe_catchup(None, now_ns, out);
        }
    }

    fn on_catchup_query(&mut self, from: ReplicaId, lo: Slot, to: Slot, out: &mut Vec<Action>) {
        // The straggler wants slots we have already compacted, and a
        // snapshot covers them: ship state instead of history. The runtime
        // materializes the blob; we still serve whatever retained tail we
        // have so the straggler converges in one round.
        if lo < self.log.truncated_below() && self.snapshot_watermark > lo {
            out.push(Action::SendSnapshot {
                to: Target::One(from),
            });
        }
        let to = Slot(to.0.min(lo.0.saturating_add(CATCHUP_CHUNK)));
        let entries = self.log.decided_range(lo, to, CATCHUP_CHUNK as usize);
        out.push(Action::Send {
            to: Target::One(from),
            msg: ProtocolMsg::CatchupReply {
                decided_upto: self.log.first_gap(),
                entries,
            },
        });
    }

    fn on_snapshot_msg(
        &mut self,
        from: ReplicaId,
        applied_upto: Slot,
        state_hash: u64,
        state: Vec<u8>,
        now_ns: u64,
        out: &mut Vec<Action>,
    ) {
        self.note_peer_progress(from, applied_upto);
        if applied_upto <= self.log.first_gap() {
            return; // stale: we already know everything it covers
        }
        self.catchup_inflight = None;
        self.snapshot_watermark = self.snapshot_watermark.max(applied_upto);
        self.log.fast_forward(applied_upto);
        self.next_slot = self.next_slot.max(applied_upto);
        out.push(Action::InstallSnapshot {
            snapshot: SnapshotBlob {
                applied_upto,
                state_hash,
                state,
            },
        });
        // Anything decided at or above the watermark delivers on top of
        // the restored state, then normal catch-up fetches the tail.
        for (slot, batch) in self.log.take_deliverable() {
            out.push(Action::Deliver { slot, batch });
        }
        self.compact();
        self.maybe_catchup(None, now_ns, out);
    }

    fn on_catchup_reply(
        &mut self,
        from: ReplicaId,
        decided_upto: Slot,
        entries: Vec<(Slot, Batch)>,
        now_ns: u64,
        out: &mut Vec<Action>,
    ) {
        self.catchup_inflight = None;
        self.note_peer_progress(from, decided_upto);
        for (slot, batch) in entries {
            if slot < self.log.truncated_below() {
                continue;
            }
            let inst = self.log.entry(slot);
            if inst.decided {
                continue;
            }
            inst.value = Some(batch);
            if inst.accepted_view.is_none() {
                inst.accepted_view = Some(View::ZERO);
            }
            self.log.mark_decided(slot);
        }
        for (slot, batch) in self.log.take_deliverable() {
            out.push(Action::Deliver { slot, batch });
        }
        if decided_upto > self.log.first_gap() {
            self.catchup_now(now_ns, out);
        }
    }

    fn note_peer_progress(&mut self, peer: ReplicaId, decided_upto: Slot) {
        let entry = &mut self.peer_decided_upto[peer.index()];
        *entry = (*entry).max(decided_upto);
    }

    /// Issues a catch-up query if we are behind and none is outstanding
    /// (or the outstanding one timed out).
    fn maybe_catchup(&mut self, hint: Option<Slot>, now_ns: u64, out: &mut Vec<Action>) {
        let known_best = self
            .peer_decided_upto
            .iter()
            .copied()
            .max()
            .unwrap_or(Slot::ZERO);
        let target = hint.map_or(known_best, |h| h.max(known_best));
        if target <= self.log.first_gap() {
            return;
        }
        if let Some((_, issued)) = self.catchup_inflight {
            if now_ns.saturating_sub(issued) < CATCHUP_TIMEOUT_NS {
                return;
            }
        }
        self.catchup_now(now_ns, out);
    }

    fn catchup_now(&mut self, now_ns: u64, out: &mut Vec<Action>) {
        let from = self.log.first_gap();
        let known_best = self
            .peer_decided_upto
            .iter()
            .copied()
            .max()
            .unwrap_or(Slot::ZERO);
        let to = Slot(known_best.0.max(from.0 + 1).min(from.0 + CATCHUP_CHUNK));
        // Ask the most advanced peer; ties go to the lowest id.
        let peer = self
            .config
            .peers(self.me)
            .max_by_key(|p| (self.peer_decided_upto[p.index()], std::cmp::Reverse(p.0)))
            .unwrap_or(self.leader());
        if peer == self.me {
            return;
        }
        self.catchup_inflight = Some((from, now_ns));
        out.push(Action::Send {
            to: Target::One(peer),
            msg: ProtocolMsg::CatchupQuery { from, to },
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr_types::{ClientId, RequestId, SeqNum};
    use smr_wire::Request;

    fn batch(tag: u64) -> Batch {
        Batch::new(vec![Request::new(
            RequestId::new(ClientId(tag), SeqNum(tag)),
            tag.to_le_bytes().to_vec(),
        )])
    }

    /// In-memory cluster that synchronously pumps every Send action.
    struct TestNet {
        replicas: Vec<PaxosReplica>,
        delivered: Vec<Vec<(Slot, Batch)>>,
        now: u64,
    }

    impl TestNet {
        fn new(n: usize) -> Self {
            let config = ClusterConfig::new(n);
            let mut replicas: Vec<PaxosReplica> = (0..n as u16)
                .map(|i| PaxosReplica::new(ReplicaId(i), config.clone()))
                .collect();
            let mut net = TestNet {
                replicas: Vec::new(),
                delivered: vec![Vec::new(); n],
                now: 0,
            };
            let mut inbox = Vec::new();
            for r in replicas.iter_mut() {
                let mut acts = Vec::new();
                r.handle(Event::Init, 0, &mut acts);
                inbox.push(acts);
            }
            net.replicas = replicas;
            for (i, acts) in inbox.into_iter().enumerate() {
                net.route(ReplicaId(i as u16), acts);
            }
            net
        }

        fn event(&mut self, to: ReplicaId, event: Event) {
            self.now += 1;
            let mut acts = Vec::new();
            self.replicas[to.index()].handle(event, self.now, &mut acts);
            self.route(to, acts);
        }

        fn route(&mut self, from: ReplicaId, actions: Vec<Action>) {
            let n = self.replicas.len();
            for action in actions {
                match action {
                    Action::Send { to, msg } => {
                        let targets: Vec<ReplicaId> = match to {
                            Target::All => (0..n as u16)
                                .map(ReplicaId)
                                .filter(|r| *r != from)
                                .collect(),
                            Target::One(r) => vec![r],
                        };
                        for t in targets {
                            self.event(
                                t,
                                Event::Message {
                                    from,
                                    msg: msg.clone(),
                                },
                            );
                        }
                    }
                    Action::Deliver { slot, batch } => {
                        self.delivered[from.index()].push((slot, batch));
                    }
                    _ => {}
                }
            }
        }

        fn leader(&self) -> ReplicaId {
            self.replicas[0].leader()
        }
    }

    #[test]
    fn three_replicas_order_and_deliver() {
        let mut net = TestNet::new(3);
        let leader = net.leader();
        assert_eq!(leader, ReplicaId(0));
        for i in 0..5 {
            net.event(leader, Event::Proposal(batch(i)));
        }
        for r in 0..3 {
            assert_eq!(
                net.delivered[r].len(),
                5,
                "replica {r} delivered everything"
            );
            for (i, (slot, b)) in net.delivered[r].iter().enumerate() {
                assert_eq!(slot.0, i as u64);
                assert_eq!(b, &batch(i as u64));
            }
        }
    }

    #[test]
    fn replicas_agree_pairwise() {
        let mut net = TestNet::new(5);
        for i in 0..10 {
            net.event(ReplicaId(0), Event::Proposal(batch(i)));
        }
        let reference = net.delivered[0].clone();
        assert_eq!(reference.len(), 10);
        for r in 1..5 {
            assert_eq!(net.delivered[r], reference);
        }
    }

    #[test]
    fn single_replica_decides_alone() {
        let mut net = TestNet::new(1);
        net.event(ReplicaId(0), Event::Proposal(batch(9)));
        assert_eq!(net.delivered[0], vec![(Slot(0), batch(9))]);
    }

    #[test]
    fn follower_drops_proposals() {
        let mut net = TestNet::new(3);
        net.event(ReplicaId(1), Event::Proposal(batch(1)));
        assert_eq!(net.replicas[1].dropped_proposals(), 1);
        assert!(net.delivered.iter().all(|d| d.is_empty()));
    }

    #[test]
    fn window_limits_inflight() {
        let config = ClusterConfig::builder(3).window(2).build().unwrap();
        let mut leader = PaxosReplica::new(ReplicaId(0), config);
        let mut out = Vec::new();
        leader.handle(Event::Init, 0, &mut out);
        for i in 0..5 {
            leader.handle(Event::Proposal(batch(i)), 0, &mut out);
        }
        // No accepts arrive, so only WND=2 proposals go out.
        assert_eq!(leader.in_flight(), 2);
        assert!(!leader.window_open());
        assert_eq!(leader.pending_proposals(), 3);
        let proposes = out
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    Action::Send {
                        msg: ProtocolMsg::Propose { .. },
                        to: Target::All
                    }
                )
            })
            .count();
        assert_eq!(proposes, 2);
    }

    #[test]
    fn view_change_elects_next_replica() {
        let mut net = TestNet::new(3);
        for i in 0..3 {
            net.event(ReplicaId(0), Event::Proposal(batch(i)));
        }
        // Replica 1 suspects the leader of view 0 and takes over.
        net.event(ReplicaId(1), Event::Suspect { view: View(0) });
        assert_eq!(net.replicas[1].view(), View(1));
        assert_eq!(net.replicas[1].role(), ReplicaRole::Leading);
        assert_eq!(net.replicas[2].view(), View(1));
        // The new leader keeps ordering.
        for i in 3..6 {
            net.event(ReplicaId(1), Event::Proposal(batch(i)));
        }
        for r in [1usize, 2] {
            let tags: Vec<u64> = net.delivered[r]
                .iter()
                .map(|(_, b)| b.requests[0].id.client.0)
                .collect();
            assert_eq!(
                tags,
                vec![0, 1, 2, 3, 4, 5],
                "replica {r} order preserved across views"
            );
        }
    }

    #[test]
    fn view_change_preserves_decided_values() {
        // Decide slots under leader 0, change view, verify leader 1
        // re-proposals do not overwrite them.
        let mut net = TestNet::new(3);
        for i in 0..4 {
            net.event(ReplicaId(0), Event::Proposal(batch(i)));
        }
        let before = net.delivered[2].clone();
        net.event(ReplicaId(2), Event::Suspect { view: View(0) });
        net.event(ReplicaId(1), Event::Suspect { view: View(0) });
        for i in 4..6 {
            net.event(ReplicaId(1), Event::Proposal(batch(i)));
        }
        assert_eq!(&net.delivered[2][..before.len()], &before[..]);
        for r in 1..3 {
            assert_eq!(net.delivered[r].len(), 6);
        }
    }

    #[test]
    fn suspect_message_triggers_next_leader() {
        let mut net = TestNet::new(3);
        // Replica 2 suspects; it is not next in line (1 is), so it sends a
        // Suspect message that makes replica 1 take over.
        net.event(ReplicaId(2), Event::Suspect { view: View(0) });
        assert_eq!(net.replicas[1].role(), ReplicaRole::Leading);
        assert_eq!(net.replicas[1].view(), View(1));
    }

    #[test]
    fn stale_suspicion_ignored() {
        let mut net = TestNet::new(3);
        net.event(ReplicaId(1), Event::Suspect { view: View(0) });
        let v = net.replicas[1].view();
        net.event(ReplicaId(1), Event::Suspect { view: View(0) });
        assert_eq!(
            net.replicas[1].view(),
            v,
            "second suspicion of view 0 is stale"
        );
    }

    #[test]
    fn heartbeat_triggers_catchup() {
        let config = ClusterConfig::new(3);
        let mut straggler = PaxosReplica::new(ReplicaId(2), config);
        let mut out = Vec::new();
        straggler.handle(Event::Init, 0, &mut out);
        out.clear();
        straggler.handle(
            Event::Message {
                from: ReplicaId(0),
                msg: ProtocolMsg::Heartbeat {
                    view: View(0),
                    decided_upto: Slot(10),
                },
            },
            1,
            &mut out,
        );
        assert!(
            out.iter().any(|a| matches!(
                a,
                Action::Send {
                    msg: ProtocolMsg::CatchupQuery { .. },
                    ..
                }
            )),
            "straggler asks for missing slots: {out:?}"
        );
    }

    #[test]
    fn catchup_roundtrip_fills_gap() {
        let mut net = TestNet::new(3);
        for i in 0..4 {
            net.event(ReplicaId(0), Event::Proposal(batch(i)));
        }
        // Build a detached straggler that saw nothing.
        let mut straggler = PaxosReplica::new(ReplicaId(2), net.replicas[0].config().clone());
        let mut acts = Vec::new();
        straggler.handle(Event::Init, 0, &mut acts);
        acts.clear();
        straggler.handle(
            Event::Message {
                from: ReplicaId(0),
                msg: ProtocolMsg::Heartbeat {
                    view: View(0),
                    decided_upto: Slot(4),
                },
            },
            1,
            &mut acts,
        );
        let query = acts
            .iter()
            .find_map(|a| match a {
                Action::Send {
                    to: Target::One(p),
                    msg: ProtocolMsg::CatchupQuery { from, to },
                } => Some((*p, *from, *to)),
                _ => None,
            })
            .expect("catch-up query issued");
        // Serve the query from replica 0's real log.
        let mut serve = Vec::new();
        net.replicas[0].handle(
            Event::Message {
                from: ReplicaId(2),
                msg: ProtocolMsg::CatchupQuery {
                    from: query.1,
                    to: query.2,
                },
            },
            2,
            &mut serve,
        );
        let reply = serve
            .iter()
            .find_map(|a| match a {
                Action::Send {
                    msg: m @ ProtocolMsg::CatchupReply { .. },
                    ..
                } => Some(m.clone()),
                _ => None,
            })
            .expect("catch-up reply produced");
        let mut final_acts = Vec::new();
        straggler.handle(
            Event::Message {
                from: query.0,
                msg: reply,
            },
            3,
            &mut final_acts,
        );
        let delivered: Vec<Slot> = final_acts
            .iter()
            .filter_map(|a| match a {
                Action::Deliver { slot, .. } => Some(*slot),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec![Slot(0), Slot(1), Slot(2), Slot(3)]);
    }

    #[test]
    fn decide_cancels_retransmission() {
        let mut net = TestNet::new(3);
        // Capture leader actions directly for one proposal.
        net.now += 1;
        let mut acts = Vec::new();
        net.replicas[0].handle(Event::Proposal(batch(0)), net.now, &mut acts);
        let scheduled = acts.iter().any(|a| {
            matches!(
                a,
                Action::ScheduleRetransmit {
                    key: RetransmitKey::Propose { .. },
                    ..
                }
            )
        });
        assert!(scheduled);
        net.route(ReplicaId(0), acts.clone());
        // After routing, accepts came back and the slot decided.
        assert_eq!(net.replicas[0].in_flight(), 0);
    }

    #[test]
    fn duplicate_propose_is_idempotent() {
        let mut net = TestNet::new(3);
        net.event(ReplicaId(0), Event::Proposal(batch(0)));
        let delivered_before = net.delivered[1].len();
        // Re-deliver the same Propose (retransmission after decide).
        net.event(
            ReplicaId(1),
            Event::Message {
                from: ReplicaId(0),
                msg: ProtocolMsg::Propose {
                    view: View(0),
                    slot: Slot(0),
                    batch: batch(0),
                },
            },
        );
        assert_eq!(
            net.delivered[1].len(),
            delivered_before,
            "no double delivery"
        );
    }

    #[test]
    fn old_view_messages_ignored() {
        let mut net = TestNet::new(3);
        net.event(ReplicaId(1), Event::Suspect { view: View(0) });
        assert_eq!(net.replicas[2].view(), View(1));
        // A stale propose from deposed leader 0 in view 0.
        let before = net.delivered[2].len();
        net.event(
            ReplicaId(2),
            Event::Message {
                from: ReplicaId(0),
                msg: ProtocolMsg::Propose {
                    view: View(0),
                    slot: Slot(99),
                    batch: batch(9),
                },
            },
        );
        assert_eq!(net.delivered[2].len(), before);
        assert!(net.replicas[2].log().get(Slot(99)).is_none());
    }

    #[test]
    fn non_leader_prepare_rejected() {
        let mut net = TestNet::new(3);
        // Replica 2 claims a Prepare for view 1, but view 1 is led by 1.
        net.event(
            ReplicaId(0),
            Event::Message {
                from: ReplicaId(2),
                msg: ProtocolMsg::Prepare {
                    view: View(1),
                    first_unstable: Slot(0),
                },
            },
        );
        assert_eq!(net.replicas[0].view(), View(0), "bogus prepare ignored");
    }

    #[test]
    fn snapshot_driven_holds_history_until_watermark() {
        let mut net = TestNet::new(3);
        net.replicas[0].set_compaction(CompactionPolicy::SnapshotDriven);
        for i in 0..6 {
            net.event(ReplicaId(0), Event::Proposal(batch(i)));
        }
        // No snapshot yet: nothing may be compacted.
        assert_eq!(net.replicas[0].log().truncated_below(), Slot(0));
        net.replicas[0].note_snapshot(Slot(4));
        assert_eq!(net.replicas[0].log().truncated_below(), Slot(4));
        assert_eq!(net.replicas[0].snapshot_watermark(), Slot(4));
        // Stale watermark never regresses.
        net.replicas[0].note_snapshot(Slot(2));
        assert_eq!(net.replicas[0].snapshot_watermark(), Slot(4));
    }

    #[test]
    fn note_snapshot_fast_forwards_fresh_log() {
        // Recovery: the service restored to slot 10, the log is empty.
        let mut r = PaxosReplica::new(ReplicaId(0), ClusterConfig::new(3));
        r.set_compaction(CompactionPolicy::SnapshotDriven);
        let mut out = Vec::new();
        r.handle(Event::Init, 0, &mut out);
        r.note_snapshot(Slot(10));
        assert_eq!(r.decided_upto(), Slot(10));
        assert_eq!(r.log().delivered_upto(), Slot(10));
        assert_eq!(r.log().truncated_below(), Slot(10));
        // A recovered leader must not propose into covered slots.
        out.clear();
        r.handle(Event::Proposal(batch(1)), 1, &mut out);
        assert!(out.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: ProtocolMsg::Propose { slot, .. },
                ..
            } if *slot >= Slot(10)
        )));
    }

    #[test]
    fn compacted_catchup_query_ships_snapshot() {
        let mut net = TestNet::new(3);
        net.replicas[0].set_compaction(CompactionPolicy::SnapshotDriven);
        for i in 0..6 {
            net.event(ReplicaId(0), Event::Proposal(batch(i)));
        }
        net.replicas[0].note_snapshot(Slot(4));
        // A straggler asks for slot 0, long compacted.
        let mut out = Vec::new();
        net.replicas[0].handle(
            Event::Message {
                from: ReplicaId(2),
                msg: ProtocolMsg::CatchupQuery {
                    from: Slot(0),
                    to: Slot(6),
                },
            },
            99,
            &mut out,
        );
        assert!(
            out.iter().any(|a| matches!(
                a,
                Action::SendSnapshot {
                    to: Target::One(ReplicaId(2))
                }
            )),
            "compacted range answered by snapshot: {out:?}"
        );
        // The retained tail still rides along in a CatchupReply.
        assert!(out.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: ProtocolMsg::CatchupReply { .. },
                ..
            }
        )));
    }

    #[test]
    fn retained_catchup_query_does_not_ship_snapshot() {
        let mut net = TestNet::new(3);
        net.replicas[0].set_compaction(CompactionPolicy::SnapshotDriven);
        for i in 0..6 {
            net.event(ReplicaId(0), Event::Proposal(batch(i)));
        }
        net.replicas[0].note_snapshot(Slot(4));
        let mut out = Vec::new();
        net.replicas[0].handle(
            Event::Message {
                from: ReplicaId(2),
                msg: ProtocolMsg::CatchupQuery {
                    from: Slot(4),
                    to: Slot(6),
                },
            },
            99,
            &mut out,
        );
        assert!(
            !out.iter().any(|a| matches!(a, Action::SendSnapshot { .. })),
            "retained range served by replay alone: {out:?}"
        );
    }

    #[test]
    fn new_leader_never_noops_compacted_decided_slots() {
        // A laggard wins leadership after its peers decided AND
        // compacted the slots it missed. Their promises are silent about
        // the compacted range, but that silence must not be refilled
        // with no-ops — the range is decided history, recoverable only
        // by catch-up (snapshot transfer).
        let mut r = PaxosReplica::new(ReplicaId(2), ClusterConfig::new(3));
        let mut out = Vec::new();
        r.handle(Event::Init, 0, &mut out);
        out.clear();
        // Climb to view 2, which this replica leads, and start preparing.
        r.handle(Event::Suspect { view: View(0) }, 1, &mut out);
        out.clear();
        r.handle(Event::Suspect { view: View(1) }, 2, &mut out);
        assert!(out.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: ProtocolMsg::Prepare { .. },
                ..
            }
        )));
        out.clear();
        // Peers decided up to slot 20 and compacted below 18: their
        // promises carry only the retained tail.
        let accepted: Vec<AcceptedEntry> = (18..20)
            .map(|s| AcceptedEntry {
                slot: Slot(s),
                view: View(0),
                batch: batch(s),
            })
            .collect();
        for peer in [0u16, 1] {
            r.handle(
                Event::Message {
                    from: ReplicaId(peer),
                    msg: ProtocolMsg::Promise {
                        view: View(2),
                        decided_upto: Slot(20),
                        accepted: accepted.clone(),
                    },
                },
                3,
                &mut out,
            );
        }
        let proposed: Vec<(Slot, bool)> = out
            .iter()
            .filter_map(|a| match a {
                Action::Send {
                    msg: ProtocolMsg::Propose { slot, batch, .. },
                    ..
                } => Some((*slot, batch.requests.is_empty())),
                _ => None,
            })
            .collect();
        // The retained tail is re-proposed; nothing below the quorum's
        // decided frontier becomes a no-op.
        assert!(proposed.iter().any(|(s, _)| *s == Slot(18)), "{proposed:?}");
        assert!(
            proposed.iter().all(|(s, empty)| !empty || *s >= Slot(20)),
            "no-op refill below the decided frontier: {proposed:?}"
        );
        // The compacted gap is chased via catch-up instead.
        assert!(
            out.iter().any(|a| matches!(
                a,
                Action::Send {
                    msg: ProtocolMsg::CatchupQuery { .. },
                    ..
                }
            )),
            "gap recovered via catch-up: {out:?}"
        );
        // New client proposals land above the decided frontier, never in
        // slots the cluster already burned.
        out.clear();
        r.handle(Event::Proposal(batch(99)), 4, &mut out);
        assert!(out.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: ProtocolMsg::Propose { slot, .. },
                ..
            } if *slot >= Slot(20)
        )));
    }

    #[test]
    fn snapshot_message_installs_and_fast_forwards() {
        let mut r = PaxosReplica::new(ReplicaId(2), ClusterConfig::new(3));
        r.set_compaction(CompactionPolicy::SnapshotDriven);
        let mut out = Vec::new();
        r.handle(Event::Init, 0, &mut out);
        out.clear();
        r.handle(
            Event::Message {
                from: ReplicaId(0),
                msg: ProtocolMsg::Snapshot {
                    applied_upto: Slot(8),
                    state_hash: 77,
                    state: vec![1, 2, 3],
                },
            },
            1,
            &mut out,
        );
        let install = out
            .iter()
            .find_map(|a| match a {
                Action::InstallSnapshot { snapshot } => Some(snapshot.clone()),
                _ => None,
            })
            .expect("snapshot installed: {out:?}");
        assert_eq!(install.applied_upto, Slot(8));
        assert_eq!(install.state_hash, 77);
        assert_eq!(r.decided_upto(), Slot(8));
        assert_eq!(r.snapshot_watermark(), Slot(8));
        // A second, stale snapshot is ignored.
        out.clear();
        r.handle(
            Event::Message {
                from: ReplicaId(1),
                msg: ProtocolMsg::Snapshot {
                    applied_upto: Slot(4),
                    state_hash: 5,
                    state: vec![],
                },
            },
            2,
            &mut out,
        );
        assert!(out.is_empty(), "stale snapshot ignored: {out:?}");
        assert_eq!(r.decided_upto(), Slot(8));
    }

    #[test]
    #[allow(deprecated)]
    fn set_retention_maps_to_keep_slots() {
        let mut r = PaxosReplica::new(ReplicaId(0), ClusterConfig::new(1));
        r.set_retention(16);
        assert_eq!(r.compaction(), CompactionPolicy::KeepSlots(16));
    }

    #[test]
    fn init_reports_leader() {
        let mut r = PaxosReplica::new(ReplicaId(1), ClusterConfig::new(3));
        let mut out = Vec::new();
        r.handle(Event::Init, 0, &mut out);
        assert_eq!(
            out,
            vec![Action::LeaderChanged {
                view: View(0),
                leader: ReplicaId(0)
            }]
        );
        assert_eq!(r.role(), ReplicaRole::Follower);
    }
}
