//! The replicated log: per-instance consensus state and the decided /
//! delivered frontiers.

use std::collections::BTreeMap;

use smr_types::{ReplicaId, Slot, View};
use smr_wire::Batch;

/// Consensus state of one instance (one slot of the log).
#[derive(Debug, Clone, Default)]
pub struct Instance {
    /// View in which `value` was accepted locally, if any.
    pub accepted_view: Option<View>,
    /// The value accepted locally (or learned via catch-up / decision).
    pub value: Option<Batch>,
    /// The view whose Phase 2b votes are being counted.
    vote_view: View,
    /// Bitmask of replicas known to have accepted in `vote_view`.
    votes: u64,
    /// Whether the instance is decided.
    pub decided: bool,
}

impl Instance {
    /// Records that `replica` accepted in `view`; votes of older views are
    /// discarded when a newer view appears.
    pub fn record_vote(&mut self, replica: ReplicaId, view: View) {
        debug_assert!(
            replica.index() < 64,
            "vote bitmask supports up to 64 replicas"
        );
        if view > self.vote_view {
            self.vote_view = view;
            self.votes = 0;
        }
        if view == self.vote_view {
            self.votes |= 1 << replica.index();
        }
    }

    /// Number of recorded votes for `view`.
    pub fn votes_in(&self, view: View) -> usize {
        if view == self.vote_view {
            self.votes.count_ones() as usize
        } else {
            0
        }
    }

    /// Whether the locally held value can be declared decided with
    /// `majority` votes: the value must have been accepted in the voted
    /// view.
    pub fn decidable(&self, majority: usize) -> bool {
        !self.decided
            && self.value.is_some()
            && self.accepted_view == Some(self.vote_view)
            && self.votes.count_ones() as usize >= majority
    }
}

/// The replicated log of a single replica.
///
/// Maintains three monotone frontiers:
///
/// * `first_gap` — lowest slot not known decided (the paper's
///   `decided_upto`, sent in heartbeats and promises);
/// * `delivered_upto` — lowest slot not yet handed to the service
///   (`delivered_upto <= first_gap`);
/// * `truncated_below` — slots below this have been garbage collected and
///   can no longer serve catch-up.
#[derive(Debug, Default)]
pub struct Log {
    entries: BTreeMap<u64, Instance>,
    first_gap: Slot,
    delivered_upto: Slot,
    truncated_below: Slot,
}

impl Log {
    /// Creates an empty log.
    pub fn new() -> Self {
        Log::default()
    }

    /// Lowest slot not known decided.
    pub fn first_gap(&self) -> Slot {
        self.first_gap
    }

    /// Lowest slot not yet delivered to the service.
    pub fn delivered_upto(&self) -> Slot {
        self.delivered_upto
    }

    /// Slots below this have been garbage collected.
    pub fn truncated_below(&self) -> Slot {
        self.truncated_below
    }

    /// Number of instances currently materialized.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no instances are materialized.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Read access to a slot's instance, if materialized.
    pub fn get(&self, slot: Slot) -> Option<&Instance> {
        self.entries.get(&slot.0)
    }

    /// Mutable access to a slot's instance, materializing it.
    pub fn entry(&mut self, slot: Slot) -> &mut Instance {
        self.entries.entry(slot.0).or_default()
    }

    /// Marks `slot` decided (value must already be present). Returns true
    /// if the flag changed.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the instance has no value.
    pub fn mark_decided(&mut self, slot: Slot) -> bool {
        let inst = self.entries.entry(slot.0).or_default();
        debug_assert!(inst.value.is_some(), "deciding a slot without a value");
        if inst.decided {
            return false;
        }
        inst.decided = true;
        // Advance the decided frontier over contiguous decided slots.
        while self
            .entries
            .get(&self.first_gap.0)
            .is_some_and(|i| i.decided)
        {
            self.first_gap = self.first_gap.next();
        }
        true
    }

    /// Pops the next deliverable `(slot, batch)` pairs: every decided slot
    /// from `delivered_upto` up to the decided frontier, in order.
    pub fn take_deliverable(&mut self) -> Vec<(Slot, Batch)> {
        let mut out = Vec::new();
        while self.delivered_upto < self.first_gap {
            let slot = self.delivered_upto;
            let inst = self
                .entries
                .get(&slot.0)
                .expect("decided slot is materialized");
            let batch = inst.value.clone().expect("decided slot has a value");
            out.push((slot, batch));
            self.delivered_upto = slot.next();
        }
        out
    }

    /// Decided `(slot, value)` pairs in `[from, to)` that are still
    /// retained, for serving catch-up queries.
    pub fn decided_range(&self, from: Slot, to: Slot, limit: usize) -> Vec<(Slot, Batch)> {
        self.entries
            .range(from.0..to.0)
            .filter(|(_, i)| i.decided)
            .take(limit)
            .filter_map(|(s, i)| i.value.clone().map(|b| (Slot(*s), b)))
            .collect()
    }

    /// Accepted-but-relevant entries at or above `from`, for Phase 1b
    /// promises.
    pub fn accepted_from(&self, from: Slot) -> Vec<(Slot, View, Batch)> {
        self.entries
            .range(from.0..)
            .filter_map(|(s, i)| match (&i.accepted_view, &i.value) {
                (Some(v), Some(b)) => Some((Slot(*s), *v, b.clone())),
                _ => None,
            })
            .collect()
    }

    /// Highest materialized slot, if any.
    pub fn max_slot(&self) -> Option<Slot> {
        self.entries.keys().next_back().map(|s| Slot(*s))
    }

    /// Jumps every frontier forward to `to` because a snapshot now covers
    /// all slots below it: entries below `to` are dropped, and
    /// `truncated_below` / `delivered_upto` / `first_gap` are advanced to
    /// at least `to` (the decided frontier then re-advances over any
    /// contiguous decided slots already materialized at or above `to`).
    ///
    /// Unlike [`Log::truncate_below`], this is NOT clamped to the
    /// delivered frontier — the snapshot replaces delivery of the dropped
    /// slots.
    pub fn fast_forward(&mut self, to: Slot) {
        if to <= self.truncated_below && to <= self.delivered_upto && to <= self.first_gap {
            return;
        }
        let keys: Vec<u64> = self.entries.range(..to.0).map(|(s, _)| *s).collect();
        for k in keys {
            self.entries.remove(&k);
        }
        self.truncated_below = self.truncated_below.max(to);
        self.delivered_upto = self.delivered_upto.max(to);
        if self.first_gap < to {
            self.first_gap = to;
            while self
                .entries
                .get(&self.first_gap.0)
                .is_some_and(|i| i.decided)
            {
                self.first_gap = self.first_gap.next();
            }
        }
    }

    /// Garbage-collects delivered slots below `keep_from` (clamped to the
    /// delivered frontier — undelivered entries are never dropped).
    pub fn truncate_below(&mut self, keep_from: Slot) {
        let limit = keep_from.min(self.delivered_upto);
        if limit <= self.truncated_below {
            return;
        }
        let keys: Vec<u64> = self.entries.range(..limit.0).map(|(s, _)| *s).collect();
        for k in keys {
            self.entries.remove(&k);
        }
        self.truncated_below = limit;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr_types::{ClientId, RequestId, SeqNum};
    use smr_wire::Request;

    fn batch(tag: u64) -> Batch {
        Batch::new(vec![Request::new(
            RequestId::new(ClientId(tag), SeqNum(0)),
            vec![],
        )])
    }

    #[test]
    fn votes_count_per_view() {
        let mut inst = Instance::default();
        inst.record_vote(ReplicaId(0), View(1));
        inst.record_vote(ReplicaId(1), View(1));
        assert_eq!(inst.votes_in(View(1)), 2);
        assert_eq!(inst.votes_in(View(0)), 0);
    }

    #[test]
    fn newer_view_resets_votes() {
        let mut inst = Instance::default();
        inst.record_vote(ReplicaId(0), View(1));
        inst.record_vote(ReplicaId(1), View(2));
        assert_eq!(inst.votes_in(View(1)), 0);
        assert_eq!(inst.votes_in(View(2)), 1);
    }

    #[test]
    fn duplicate_votes_count_once() {
        let mut inst = Instance::default();
        inst.record_vote(ReplicaId(2), View(1));
        inst.record_vote(ReplicaId(2), View(1));
        assert_eq!(inst.votes_in(View(1)), 1);
    }

    #[test]
    fn decidable_requires_value_in_vote_view() {
        let mut inst = Instance::default();
        inst.record_vote(ReplicaId(0), View(1));
        inst.record_vote(ReplicaId(1), View(1));
        assert!(!inst.decidable(2), "no value yet");
        inst.value = Some(batch(1));
        inst.accepted_view = Some(View(0));
        assert!(!inst.decidable(2), "value from older view");
        inst.accepted_view = Some(View(1));
        assert!(inst.decidable(2));
    }

    #[test]
    fn frontier_advances_contiguously() {
        let mut log = Log::new();
        for s in [1u64, 2] {
            let e = log.entry(Slot(s));
            e.value = Some(batch(s));
            e.accepted_view = Some(View(0));
        }
        log.mark_decided(Slot(1));
        log.mark_decided(Slot(2));
        assert_eq!(
            log.first_gap(),
            Slot(0),
            "slot 0 missing blocks the frontier"
        );
        let e = log.entry(Slot(0));
        e.value = Some(batch(0));
        e.accepted_view = Some(View(0));
        log.mark_decided(Slot(0));
        assert_eq!(log.first_gap(), Slot(3));
    }

    #[test]
    fn take_deliverable_in_order_once() {
        let mut log = Log::new();
        for s in 0..3u64 {
            let e = log.entry(Slot(s));
            e.value = Some(batch(s));
            e.accepted_view = Some(View(0));
            log.mark_decided(Slot(s));
        }
        let delivered = log.take_deliverable();
        assert_eq!(delivered.len(), 3);
        assert_eq!(delivered[0].0, Slot(0));
        assert_eq!(delivered[2].0, Slot(2));
        assert!(
            log.take_deliverable().is_empty(),
            "delivery is exactly-once"
        );
    }

    #[test]
    fn decided_range_serves_catchup() {
        let mut log = Log::new();
        for s in 0..5u64 {
            let e = log.entry(Slot(s));
            e.value = Some(batch(s));
            e.accepted_view = Some(View(0));
            log.mark_decided(Slot(s));
        }
        let got = log.decided_range(Slot(1), Slot(4), 10);
        assert_eq!(
            got.iter().map(|(s, _)| s.0).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        let limited = log.decided_range(Slot(0), Slot(5), 2);
        assert_eq!(limited.len(), 2);
    }

    #[test]
    fn truncation_respects_delivery_frontier() {
        let mut log = Log::new();
        for s in 0..4u64 {
            let e = log.entry(Slot(s));
            e.value = Some(batch(s));
            e.accepted_view = Some(View(0));
            log.mark_decided(Slot(s));
        }
        // Nothing delivered yet: truncation is clamped to 0.
        log.truncate_below(Slot(4));
        assert_eq!(log.len(), 4);
        let _ = log.take_deliverable();
        log.truncate_below(Slot(2));
        assert_eq!(log.truncated_below(), Slot(2));
        assert_eq!(log.len(), 2);
        assert!(log.get(Slot(1)).is_none());
    }

    #[test]
    fn fast_forward_jumps_all_frontiers() {
        let mut log = Log::new();
        for s in 0..3u64 {
            let e = log.entry(Slot(s));
            e.value = Some(batch(s));
            e.accepted_view = Some(View(0));
            log.mark_decided(Slot(s));
        }
        // A snapshot covering slots [0, 10) supersedes everything held.
        log.fast_forward(Slot(10));
        assert_eq!(log.truncated_below(), Slot(10));
        assert_eq!(log.delivered_upto(), Slot(10));
        assert_eq!(log.first_gap(), Slot(10));
        assert!(log.is_empty());
        assert!(log.take_deliverable().is_empty());
    }

    #[test]
    fn fast_forward_readvances_over_decided_suffix() {
        let mut log = Log::new();
        // Slot 4 is decided but unreachable (gap at 0..4).
        let e = log.entry(Slot(4));
        e.value = Some(batch(4));
        e.accepted_view = Some(View(0));
        log.mark_decided(Slot(4));
        assert_eq!(log.first_gap(), Slot(0));
        log.fast_forward(Slot(4));
        // The snapshot bridges the gap; the decided frontier hops over 4.
        assert_eq!(log.first_gap(), Slot(5));
        assert_eq!(log.delivered_upto(), Slot(4));
        let d = log.take_deliverable();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0, Slot(4));
    }

    #[test]
    fn fast_forward_is_monotone() {
        let mut log = Log::new();
        log.fast_forward(Slot(8));
        log.fast_forward(Slot(3)); // stale snapshot: no regression
        assert_eq!(log.truncated_below(), Slot(8));
        assert_eq!(log.first_gap(), Slot(8));
    }

    #[test]
    fn accepted_from_reports_suffix() {
        let mut log = Log::new();
        for s in [3u64, 5] {
            let e = log.entry(Slot(s));
            e.value = Some(batch(s));
            e.accepted_view = Some(View(2));
        }
        log.entry(Slot(4)); // materialized but nothing accepted
        let acc = log.accepted_from(Slot(4));
        assert_eq!(acc.len(), 1);
        assert_eq!(acc[0].0, Slot(5));
    }
}
