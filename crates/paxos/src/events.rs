//! Events consumed and actions produced by the protocol state machine.

use smr_types::{ReplicaId, Slot, SnapshotBlob, View};
use smr_wire::{Batch, ProtocolMsg};

/// An input to [`crate::PaxosReplica::handle`] — one item popped from the
/// Protocol thread's DispatcherQueue (or ProposalQueue).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// Emitted once at startup, before any other event.
    Init,
    /// A batch produced by the Batcher, ready to be proposed. Callers
    /// should only submit proposals while [`crate::PaxosReplica::window_open`]
    /// returns true (flow control); the core buffers a small number of
    /// excess proposals and drops the rest when not leading.
    Proposal(Batch),
    /// A protocol message received from a peer.
    Message {
        /// The sending replica.
        from: ReplicaId,
        /// The message.
        msg: ProtocolMsg,
    },
    /// The failure detector suspects the leader of `view`. Stale
    /// suspicions (of older views) are ignored.
    Suspect {
        /// The view whose leader is suspected.
        view: View,
    },
    /// Periodic housekeeping tick (catch-up re-issue, …). The real
    /// runtime delivers one every few tens of milliseconds.
    Tick,
}

/// Destination of an outgoing message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// Every peer (all replicas except the sender).
    All,
    /// A single replica.
    One(ReplicaId),
}

/// Identifies a retransmittable message for cancellation (§V-C4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RetransmitKey {
    /// The Phase 1a message of a view being prepared.
    Prepare {
        /// The view.
        view: View,
    },
    /// The Phase 2a message of one instance.
    Propose {
        /// The proposing view.
        view: View,
        /// The instance.
        slot: Slot,
    },
    /// An outstanding catch-up query.
    Catchup {
        /// First slot requested.
        from: Slot,
    },
}

/// An output of the protocol state machine, to be effected by the caller
/// (send a message, deliver a decision, manage retransmission timers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Send `msg` to `to`.
    Send {
        /// Destination.
        to: Target,
        /// The message.
        msg: ProtocolMsg,
    },
    /// Deliver the decided `batch` of `slot` to the service. Emitted in
    /// strictly increasing, gap-free slot order.
    Deliver {
        /// The decided slot.
        slot: Slot,
        /// The decided value.
        batch: Batch,
    },
    /// Register `msg` for periodic retransmission to `to` until cancelled.
    ScheduleRetransmit {
        /// Cancellation key.
        key: RetransmitKey,
        /// Destination.
        to: Target,
        /// The message to retransmit.
        msg: ProtocolMsg,
    },
    /// Cancel a previously scheduled retransmission.
    CancelRetransmit {
        /// The key to cancel.
        key: RetransmitKey,
    },
    /// Cancel every outstanding retransmission (on view change).
    CancelAllRetransmits,
    /// The view changed; the failure detector should start monitoring (or
    /// heartbeating, if this replica leads) `view`.
    LeaderChanged {
        /// The new view.
        view: View,
        /// Its leader.
        leader: ReplicaId,
    },
    /// A straggler asked for slots this replica has compacted: ship the
    /// latest service snapshot to `to`. The runtime materializes the blob
    /// (the protocol core does not hold service state) and sends a
    /// [`ProtocolMsg::Snapshot`]; if no snapshot exists yet the action is
    /// a no-op.
    SendSnapshot {
        /// The straggling replica.
        to: Target,
    },
    /// A peer's snapshot superseded part of this replica's log: the
    /// service must restore from `snapshot` before consuming any further
    /// [`Action::Deliver`]. Emitted strictly before deliveries of slots at
    /// or above `snapshot.applied_upto`.
    InstallSnapshot {
        /// The snapshot to restore from.
        snapshot: SnapshotBlob,
    },
}

impl Action {
    /// Short name of the action kind, for logs and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            Action::Send { .. } => "Send",
            Action::Deliver { .. } => "Deliver",
            Action::ScheduleRetransmit { .. } => "ScheduleRetransmit",
            Action::CancelRetransmit { .. } => "CancelRetransmit",
            Action::CancelAllRetransmits => "CancelAllRetransmits",
            Action::LeaderChanged { .. } => "LeaderChanged",
            Action::SendSnapshot { .. } => "SendSnapshot",
            Action::InstallSnapshot { .. } => "InstallSnapshot",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_kind_names() {
        assert_eq!(Action::CancelAllRetransmits.kind(), "CancelAllRetransmits");
        assert_eq!(
            Action::LeaderChanged {
                view: View(1),
                leader: ReplicaId(1)
            }
            .kind(),
            "LeaderChanged"
        );
    }

    #[test]
    fn retransmit_keys_are_distinct() {
        use std::collections::HashSet;
        let keys = [
            RetransmitKey::Prepare { view: View(1) },
            RetransmitKey::Propose {
                view: View(1),
                slot: Slot(0),
            },
            RetransmitKey::Propose {
                view: View(1),
                slot: Slot(1),
            },
            RetransmitKey::Catchup { from: Slot(0) },
        ];
        let set: HashSet<_> = keys.iter().collect();
        assert_eq!(set.len(), keys.len());
    }
}
