//! Dependency-aware parallel command execution (the "parallel replica").
//!
//! The paper makes ordering cheap enough that the single ServiceManager
//! thread becomes the bottleneck for CPU-heavy or stall-heavy services.
//! This module removes that ceiling the way the parallel
//! state-machine-replication literature does ("Rethinking State-Machine
//! Replication for Parallelism", "Early Scheduling in Parallel State
//! Machine Replication"): commands are classified by the keys they touch
//! ([`smr_types::KeySet`], declared by a
//! [`ConflictAwareService`]), a scheduler builds the per-key dependency
//! DAG from the decided order, and ready (dependency-free) commands are
//! dispatched to a worker pool while conflicting commands wait for their
//! predecessors.
//!
//! Determinism is preserved because the DAG is built from the decided
//! log order, which is identical on every replica: two conflicting
//! commands always execute in log order, and two non-conflicting
//! commands cannot observe each other by definition, so any interleaving
//! of them yields the same state and the same replies.
//!
//! The moving parts:
//!
//! * [`DepGraph`] (crate-private) — the bookkeeping: per-key last-writer
//!   and readers-since, per-client chains, and the global-command
//!   barrier. Pure data structure, no threads, exhaustively unit-tested.
//! * [`ParallelExecutor`] — the runtime: a worker pool fed through a
//!   bounded dispatch queue, completions returned through a bounded
//!   completion queue (both using the bulk queue API, one lock per
//!   burst), and the scheduler state driven by whichever thread owns the
//!   executor (the ServiceManager thread in a replica; the test thread
//!   in the determinism proptests).
//!
//! Two scheduling details matter for correctness beyond key conflicts:
//!
//! * **Per-client chains.** Commands from the same client are linked in
//!   decided order even when their keys do not conflict. This preserves
//!   per-client reply order and makes the reply cache's
//!   highest-sequence-number bookkeeping race-free, because a client's
//!   retry can never be in flight concurrently with its original.
//! * **Global commands.** A command classified [`KeySet::global`]
//!   depends on *every* incomplete command and every later command
//!   depends on it — a full barrier, the safe treatment for commands
//!   whose footprint is unknown.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use smr_metrics::ThreadHandle;
use smr_queue::{BoundedQueue, PopError};
use smr_types::{AccessMode, KeySet, RequestId};
use smr_wire::Request;

use crate::reply_cache::{ExecuteOutcome, ReplyCache};
use crate::service::ConflictAwareService;

/// Maximum commands a worker pulls per dispatch-queue drain.
const WORKER_DRAIN_MAX: usize = 256;
/// How long an idle worker parks before re-checking for shutdown.
const WORKER_PARK: Duration = Duration::from_millis(100);
/// Capacity of the dispatch queue (scheduler → workers).
const DISPATCH_CAPACITY: usize = 4096;

/// Everything the scheduler tracks about one incomplete command.
struct TaskNode {
    /// `Some` until the command is dispatched to a worker.
    request: Option<Request>,
    /// The command's declared footprint (needed again at completion to
    /// unwind the per-key bookkeeping).
    keys: KeySet,
    /// The issuing client, for unwinding the per-client chain.
    client: u64,
    /// Number of incomplete commands this one waits for.
    unmet: usize,
    /// Commands waiting for this one.
    dependents: Vec<u64>,
}

/// Per-key scheduling state: the incomplete commands that last touched
/// the key. Entries only reference incomplete commands — completion
/// removes them — so the map's size is bounded by in-flight work, not by
/// the key space.
#[derive(Default)]
struct KeyUsers {
    /// The most recent incomplete writer of the key.
    last_writer: Option<u64>,
    /// Incomplete readers admitted since that writer.
    readers: Vec<u64>,
}

/// The dependency DAG over decided-but-incomplete commands.
///
/// `submit` assigns each command the next sequence number (the decided
/// order) and computes its dependencies; `complete` retires a command
/// and surfaces newly unblocked ones. Commands with no unmet
/// dependencies accumulate in an internal ready list drained by
/// [`DepGraph::take_ready`].
#[derive(Default)]
pub(crate) struct DepGraph {
    next_seq: u64,
    tasks: HashMap<u64, TaskNode>,
    keys: HashMap<u64, KeyUsers>,
    clients: HashMap<u64, u64>,
    last_global: Option<u64>,
    ready: Vec<(u64, Request)>,
}

impl DepGraph {
    pub(crate) fn new() -> Self {
        DepGraph::default()
    }

    /// Incomplete (submitted, not yet completed) commands.
    pub(crate) fn pending(&self) -> usize {
        self.tasks.len()
    }

    /// Admits the next command of the decided order with its declared
    /// footprint. If it conflicts with nothing incomplete it becomes
    /// ready immediately.
    pub(crate) fn submit(&mut self, request: Request, keys: KeySet) {
        let seq = self.next_seq;
        self.next_seq += 1;

        let mut deps: Vec<u64> = Vec::new();
        if keys.is_global() {
            // A global command is a barrier: it waits for everything.
            deps.extend(self.tasks.keys().copied());
            self.last_global = Some(seq);
        } else {
            for &(key, mode) in keys.entries() {
                let users = self.keys.entry(key).or_default();
                match mode {
                    AccessMode::Write => {
                        // A writer waits for the previous writer and for
                        // every reader admitted since, then becomes the
                        // key's writer frontier.
                        if let Some(w) = users.last_writer {
                            deps.push(w);
                        }
                        deps.extend(users.readers.iter().copied());
                        users.last_writer = Some(seq);
                        users.readers.clear();
                    }
                    AccessMode::Read => {
                        // A reader waits only for the last writer;
                        // concurrent readers share.
                        if let Some(w) = users.last_writer {
                            deps.push(w);
                        }
                        users.readers.push(seq);
                    }
                }
            }
            // Everything ordered after an incomplete global command
            // waits for it.
            if let Some(g) = self.last_global {
                deps.push(g);
            }
        }

        // Per-client chain: decided order within one client is execution
        // order, whatever the keys (reply order + reply-cache safety).
        let client = request.id.client.0;
        if let Some(&prev) = self.clients.get(&client) {
            deps.push(prev);
        }
        self.clients.insert(client, seq);

        deps.sort_unstable();
        deps.dedup();
        let mut unmet = 0;
        for dep in deps {
            // All bookkeeping references incomplete commands only, but
            // stay defensive: a missing entry is simply already done.
            if let Some(node) = self.tasks.get_mut(&dep) {
                node.dependents.push(seq);
                unmet += 1;
            }
        }

        if unmet == 0 {
            self.tasks.insert(
                seq,
                TaskNode {
                    request: None,
                    keys,
                    client,
                    unmet: 0,
                    dependents: Vec::new(),
                },
            );
            self.ready.push((seq, request));
        } else {
            self.tasks.insert(
                seq,
                TaskNode {
                    request: Some(request),
                    keys,
                    client,
                    unmet,
                    dependents: Vec::new(),
                },
            );
        }
    }

    /// Retires a completed command, unwinding its key/client/global
    /// bookkeeping and moving newly unblocked dependents to the ready
    /// list.
    pub(crate) fn complete(&mut self, seq: u64) {
        let node = self.tasks.remove(&seq).expect("completed task exists");
        if node.keys.is_global() {
            if self.last_global == Some(seq) {
                self.last_global = None;
            }
        } else {
            for &(key, mode) in node.keys.entries() {
                if let std::collections::hash_map::Entry::Occupied(mut entry) = self.keys.entry(key)
                {
                    let users = entry.get_mut();
                    match mode {
                        AccessMode::Write => {
                            if users.last_writer == Some(seq) {
                                users.last_writer = None;
                            }
                        }
                        AccessMode::Read => users.readers.retain(|r| *r != seq),
                    }
                    if users.last_writer.is_none() && users.readers.is_empty() {
                        entry.remove();
                    }
                }
            }
        }
        if self.clients.get(&node.client) == Some(&seq) {
            self.clients.remove(&node.client);
        }
        for dep in node.dependents {
            let waiter = self.tasks.get_mut(&dep).expect("dependent is incomplete");
            waiter.unmet -= 1;
            if waiter.unmet == 0 {
                let request = waiter.request.take().expect("undispatched request");
                self.ready.push((dep, request));
            }
        }
    }

    /// Moves up to `max` ready commands into `out` (appending), oldest
    /// first. Returns how many were moved.
    pub(crate) fn take_ready(&mut self, out: &mut Vec<(u64, Request)>, max: usize) -> usize {
        let n = self.ready.len().min(max);
        out.extend(self.ready.drain(..n));
        n
    }
}

/// A finished command on its way back from a worker.
struct Completion {
    seq: u64,
    id: RequestId,
    /// `None` when the reply cache suppressed a stale duplicate.
    reply: Option<Vec<u8>>,
}

/// The dependency-aware parallel executor: a dependency-graph scheduler
/// in front of a worker pool executing a shared [`ConflictAwareService`].
///
/// The executor is driven by its owning thread: [`ParallelExecutor::submit`]
/// admits decided commands in log order, [`ParallelExecutor::poll`]
/// (or [`ParallelExecutor::wait_idle`]) harvests completed replies and
/// dispatches newly unblocked work. Inside a replica the owning thread
/// is the ServiceManager; the executor is also usable standalone, which
/// is how the sequential-vs-parallel equivalence proptests drive it.
///
/// Replies are reported in completion order, which preserves each
/// client's issue order (same-client commands are chained) but is not
/// globally the log order — exactly the guarantee a replicated service
/// client gets anyway.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use smr_core::{ConcurrentKvService, KvService, ParallelExecutor};
/// use smr_types::{ClientId, RequestId, SeqNum};
/// use smr_wire::Request;
///
/// let service = Arc::new(ConcurrentKvService::new(4));
/// let mut exec = ParallelExecutor::new(service.clone(), 2);
/// let id = |c, s| RequestId::new(ClientId(c), SeqNum(s));
/// exec.submit(Request::new(id(1, 0), KvService::put(b"a", b"1")));
/// exec.submit(Request::new(id(2, 0), KvService::put(b"b", b"2")));
/// let mut replies = Vec::new();
/// exec.wait_idle(&mut replies);
/// assert_eq!(replies.len(), 2);
/// assert_eq!(service.len(), 2);
/// exec.shutdown();
/// ```
pub struct ParallelExecutor {
    service: Arc<dyn ConflictAwareService>,
    graph: DepGraph,
    work_q: BoundedQueue<(u64, Request)>,
    done_q: BoundedQueue<Completion>,
    workers: Vec<JoinHandle<()>>,
    dispatch_buf: Vec<(u64, Request)>,
    completion_buf: Vec<Completion>,
    finished: Vec<(RequestId, Option<Vec<u8>>)>,
}

impl std::fmt::Debug for ParallelExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelExecutor")
            .field("workers", &self.workers.len())
            .field("pending", &self.graph.pending())
            .finish()
    }
}

impl ParallelExecutor {
    /// Spawns a pool of `workers` threads executing `service`.
    /// `workers` is clamped to at least 1.
    pub fn new(service: Arc<dyn ConflictAwareService>, workers: usize) -> Self {
        Self::with_reply_cache(service, workers, None)
    }

    /// Like [`ParallelExecutor::new`], with at-most-once semantics: when
    /// a cache is given, workers consult it before executing (skipping
    /// already-executed duplicates and resending their cached reply) and
    /// record every fresh reply. Safe because same-client commands are
    /// chained, so one client's cache entry is never raced.
    pub fn with_reply_cache(
        service: Arc<dyn ConflictAwareService>,
        workers: usize,
        cache: Option<Arc<dyn ReplyCache>>,
    ) -> Self {
        let workers = workers.max(1);
        let work_q: BoundedQueue<(u64, Request)> =
            BoundedQueue::new("ExecDispatchQueue", DISPATCH_CAPACITY);
        // Sized so a worker's bulk completion push can never block for
        // long: everything dispatched always fits.
        let done_q: BoundedQueue<Completion> =
            BoundedQueue::new("ExecCompletionQueue", DISPATCH_CAPACITY + workers);
        let handles = (0..workers)
            .map(|i| {
                let service = Arc::clone(&service);
                let cache = cache.clone();
                let work_q = work_q.clone();
                let done_q = done_q.clone();
                std::thread::Builder::new()
                    .name(format!("ExecWorker-{i}"))
                    .spawn(move || {
                        run_worker(&*service, cache.as_deref(), &work_q, &done_q, workers)
                    })
                    .expect("spawn executor worker")
            })
            .collect();
        ParallelExecutor {
            service,
            graph: DepGraph::new(),
            work_q,
            done_q,
            workers: handles,
            dispatch_buf: Vec::new(),
            completion_buf: Vec::new(),
            finished: Vec::new(),
        }
    }

    /// Commands submitted but not yet completed.
    pub fn pending(&self) -> usize {
        self.graph.pending()
    }

    /// Admits the next command of the decided order: classifies it,
    /// links it into the dependency graph, and dispatches it (and
    /// anything a drained completion unblocked) to the worker pool.
    /// Completed replies accumulate internally until the next
    /// [`ParallelExecutor::poll`].
    pub fn submit(&mut self, request: Request) {
        let keys = self.service.conflict_keys(&request.payload);
        self.graph.submit(request, keys);
        self.drain_completions();
        self.dispatch_ready();
    }

    /// Harvests completed commands into `out` (appending
    /// `(request id, reply)` pairs; the reply is `None` when the reply
    /// cache suppressed a duplicate) and dispatches newly unblocked
    /// work. Blocks up to `timeout` only when work is in flight and no
    /// completion is immediately available. Returns the number of pairs
    /// appended.
    pub fn poll(
        &mut self,
        out: &mut Vec<(RequestId, Option<Vec<u8>>)>,
        timeout: Duration,
    ) -> usize {
        self.poll_impl(out, timeout, None)
    }

    /// [`ParallelExecutor::poll`] with the wait charged to `handle` as
    /// [`smr_metrics::ThreadState::Waiting`].
    pub fn poll_with(
        &mut self,
        out: &mut Vec<(RequestId, Option<Vec<u8>>)>,
        timeout: Duration,
        handle: &ThreadHandle,
    ) -> usize {
        self.poll_impl(out, timeout, Some(handle))
    }

    fn poll_impl(
        &mut self,
        out: &mut Vec<(RequestId, Option<Vec<u8>>)>,
        timeout: Duration,
        handle: Option<&ThreadHandle>,
    ) -> usize {
        self.drain_completions();
        if self.finished.is_empty() && self.graph.pending() > 0 && !timeout.is_zero() {
            // Nothing done yet but something is running (the DAG always
            // has a dispatched source): wait for the first completion.
            self.completion_buf.clear();
            let popped = match handle {
                Some(h) => {
                    self.done_q
                        .pop_wait_all_with(&mut self.completion_buf, usize::MAX, timeout, h)
                }
                None => self
                    .done_q
                    .pop_wait_all(&mut self.completion_buf, usize::MAX, timeout),
            };
            if popped.is_ok() {
                self.process_completions();
            }
        }
        self.dispatch_ready();
        let n = self.finished.len();
        out.append(&mut self.finished);
        n
    }

    /// Drives the executor until every submitted command has completed,
    /// appending all replies to `out`.
    pub fn wait_idle(&mut self, out: &mut Vec<(RequestId, Option<Vec<u8>>)>) {
        while self.graph.pending() > 0 {
            self.poll_impl(out, Duration::from_millis(100), None);
        }
        out.append(&mut self.finished);
    }

    /// Stops the worker pool and joins it. Dropping the executor does
    /// the same; this form just makes shutdown explicit at call sites.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.work_q.close();
        self.done_q.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Non-blocking harvest of finished work into the internal buffer.
    fn drain_completions(&mut self) {
        self.completion_buf.clear();
        if self.done_q.try_pop_all(&mut self.completion_buf).is_ok() {
            self.process_completions();
        }
    }

    fn process_completions(&mut self) {
        for c in self.completion_buf.drain(..) {
            self.graph.complete(c.seq);
            self.finished.push((c.id, c.reply));
        }
    }

    /// Moves ready commands onto the dispatch queue. The scheduler is
    /// the queue's only producer, so `capacity - len` space is
    /// guaranteed still free and the bulk push can never block (which is
    /// what makes the scheduler/worker loop deadlock-free by
    /// construction). Commands that do not fit stay in the ready list
    /// until completions free queue space.
    fn dispatch_ready(&mut self) {
        loop {
            let room = self.work_q.capacity().saturating_sub(self.work_q.len());
            if room == 0 {
                return;
            }
            self.dispatch_buf.clear();
            if self.graph.take_ready(&mut self.dispatch_buf, room) == 0 {
                return;
            }
            if self.work_q.push_many(self.dispatch_buf.drain(..)).is_err() {
                return; // shut down
            }
        }
    }
}

impl Drop for ParallelExecutor {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// The worker loop: drain a burst of dispatched commands, execute each
/// against the shared service (with at-most-once bookkeeping when a
/// reply cache is attached), and push the burst's completions back in
/// one bulk operation.
///
/// The burst size adapts to load: roughly `queue depth / pool size`, so
/// a deep backlog of cheap commands amortizes the queue lock while a
/// shallow burst of expensive commands still spreads across the whole
/// pool (a fixed greedy burst would let one worker serialize it).
fn run_worker(
    service: &dyn ConflictAwareService,
    cache: Option<&dyn ReplyCache>,
    work_q: &BoundedQueue<(u64, Request)>,
    done_q: &BoundedQueue<Completion>,
    workers: usize,
) {
    let mut in_buf: Vec<(u64, Request)> = Vec::new();
    let mut out: Vec<Completion> = Vec::new();
    loop {
        in_buf.clear();
        let fair_share = (work_q.len() / workers).clamp(1, WORKER_DRAIN_MAX);
        match work_q.pop_wait_all(&mut in_buf, fair_share, WORKER_PARK) {
            Ok(_) => {}
            Err(PopError::Empty) => continue,
            Err(PopError::Closed) => return,
        }
        for (seq, request) in in_buf.drain(..) {
            let reply = match cache {
                Some(c) => match c.check_execute(request.id) {
                    ExecuteOutcome::Fresh => {
                        let r = service.execute(&request.payload);
                        c.record(request.id, r.clone());
                        Some(r)
                    }
                    // Ordered twice (client retry raced the pipeline):
                    // do not re-execute; resend the cached reply.
                    ExecuteOutcome::Duplicate(cached) => cached,
                },
                None => Some(service.execute(&request.payload)),
            };
            out.push(Completion {
                seq,
                id: request.id,
                reply,
            });
        }
        if done_q.push_many(out.drain(..)).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr_types::{ClientId, SeqNum};

    fn req(client: u64, seq: u64) -> Request {
        Request::new(RequestId::new(ClientId(client), SeqNum(seq)), Vec::new())
    }

    fn ready_seqs(g: &mut DepGraph) -> Vec<u64> {
        let mut out = Vec::new();
        g.take_ready(&mut out, usize::MAX);
        out.into_iter().map(|(s, _)| s).collect()
    }

    #[test]
    fn independent_keys_all_ready() {
        let mut g = DepGraph::new();
        g.submit(req(1, 0), KeySet::write(10));
        g.submit(req(2, 0), KeySet::write(11));
        g.submit(req(3, 0), KeySet::read(12));
        assert_eq!(ready_seqs(&mut g), vec![0, 1, 2]);
    }

    #[test]
    fn write_write_chain_serializes() {
        let mut g = DepGraph::new();
        g.submit(req(1, 0), KeySet::write(10));
        g.submit(req(2, 0), KeySet::write(10));
        g.submit(req(3, 0), KeySet::write(10));
        assert_eq!(ready_seqs(&mut g), vec![0]);
        g.complete(0);
        assert_eq!(ready_seqs(&mut g), vec![1]);
        g.complete(1);
        assert_eq!(ready_seqs(&mut g), vec![2]);
        g.complete(2);
        assert_eq!(g.pending(), 0);
    }

    #[test]
    fn readers_share_then_block_writer() {
        let mut g = DepGraph::new();
        g.submit(req(1, 0), KeySet::write(10));
        g.submit(req(2, 0), KeySet::read(10));
        g.submit(req(3, 0), KeySet::read(10));
        g.submit(req(4, 0), KeySet::write(10));
        assert_eq!(ready_seqs(&mut g), vec![0]);
        g.complete(0);
        // Both readers unblock together; the writer waits for both.
        assert_eq!(ready_seqs(&mut g), vec![1, 2]);
        g.complete(1);
        assert_eq!(ready_seqs(&mut g), Vec::<u64>::new());
        g.complete(2);
        assert_eq!(ready_seqs(&mut g), vec![3]);
    }

    #[test]
    fn global_is_a_full_barrier() {
        let mut g = DepGraph::new();
        g.submit(req(1, 0), KeySet::write(10));
        g.submit(req(2, 0), KeySet::write(11));
        g.submit(req(3, 0), KeySet::global());
        g.submit(req(4, 0), KeySet::write(12));
        // Only the two pre-barrier writes run.
        assert_eq!(ready_seqs(&mut g), vec![0, 1]);
        g.complete(0);
        assert_eq!(ready_seqs(&mut g), Vec::<u64>::new());
        g.complete(1);
        // The barrier runs alone; the post-barrier write still waits.
        assert_eq!(ready_seqs(&mut g), vec![2]);
        g.complete(2);
        assert_eq!(ready_seqs(&mut g), vec![3]);
    }

    #[test]
    fn same_client_chains_even_without_key_conflict() {
        let mut g = DepGraph::new();
        g.submit(req(7, 0), KeySet::write(10));
        g.submit(req(7, 1), KeySet::write(11));
        assert_eq!(ready_seqs(&mut g), vec![0]);
        g.complete(0);
        assert_eq!(ready_seqs(&mut g), vec![1]);
    }

    #[test]
    fn empty_keyset_only_chains_on_client() {
        let mut g = DepGraph::new();
        g.submit(req(1, 0), KeySet::global());
        g.submit(req(2, 0), KeySet::new());
        // The empty-footprint command still waits for the barrier.
        assert_eq!(ready_seqs(&mut g), vec![0]);
        g.complete(0);
        assert_eq!(ready_seqs(&mut g), vec![1]);
    }

    #[test]
    fn bookkeeping_is_fully_unwound() {
        let mut g = DepGraph::new();
        g.submit(req(1, 0), KeySet::write(10));
        g.submit(req(1, 1), KeySet::read(10));
        g.submit(req(2, 0), KeySet::global());
        let _ = ready_seqs(&mut g);
        g.complete(0);
        let _ = ready_seqs(&mut g);
        g.complete(1);
        let _ = ready_seqs(&mut g);
        g.complete(2);
        assert_eq!(g.pending(), 0);
        assert!(g.keys.is_empty(), "key map drained");
        assert!(g.clients.is_empty(), "client map drained");
        assert!(g.last_global.is_none(), "barrier cleared");
    }

    #[test]
    fn executor_runs_conflicting_workload_to_the_sequential_state() {
        use crate::service::{ConcurrentKvService, KvService, Service, ServiceState};
        let service = Arc::new(ConcurrentKvService::new(4));
        let mut exec = ParallelExecutor::new(service.clone(), 3);
        let mut reference = KvService::new();
        let mut n = 0u64;
        for round in 0..40u8 {
            for key in 0..6u8 {
                let cmd = if round % 3 == 0 {
                    KvService::get(&[key])
                } else {
                    KvService::put(&[key], &[round, key])
                };
                reference.execute(&cmd);
                exec.submit(Request::new(
                    RequestId::new(ClientId(u64::from(key) % 3), SeqNum(n)),
                    cmd,
                ));
                n += 1;
            }
        }
        let mut replies = Vec::new();
        exec.wait_idle(&mut replies);
        assert_eq!(replies.len(), n as usize);
        assert_eq!(service.entries(), reference.entries());
        assert_eq!(service.state_hash(), reference.state_hash());
        exec.shutdown();
    }

    #[test]
    fn executor_with_cache_suppresses_duplicates() {
        use crate::reply_cache::ShardedReplyCache;
        use crate::service::{ConcurrentKvService, KvService};
        let service = Arc::new(ConcurrentKvService::new(4));
        let cache: Arc<dyn ReplyCache> = Arc::new(ShardedReplyCache::new(4));
        let mut exec = ParallelExecutor::with_reply_cache(service.clone(), 2, Some(cache));
        let id = RequestId::new(ClientId(1), SeqNum(0));
        // The same request ordered twice (a retry raced the pipeline):
        // it must execute once and reply twice with the same payload.
        exec.submit(Request::new(id, KvService::put(b"k", b"v")));
        exec.submit(Request::new(id, KvService::put(b"k", b"v")));
        let mut replies = Vec::new();
        exec.wait_idle(&mut replies);
        assert_eq!(replies.len(), 2);
        assert_eq!(replies[0].1, replies[1].1, "cached reply resent");
        assert_eq!(service.len(), 1);
        exec.shutdown();
    }
}
