//! The reply cache: at-most-once execution and duplicate suppression.
//!
//! §V-D of the paper: the cache is queried by every ClientIO thread on
//! request arrival and updated by the ServiceManager thread on execution,
//! thousands of times per second from many threads — "a conventional hash
//! table based on coarse-grained locking performs poorly in this
//! situation". JPaxos used `ConcurrentHashMap`; we provide a sharded,
//! fine-grained-locking cache ([`ShardedReplyCache`]) plus the naive
//! coarse cache ([`CoarseReplyCache`]) as the ablation baseline measured
//! by `smr-bench/benches/reply_cache.rs`.
//!
//! The cache stores, per client, the highest executed sequence number and
//! its reply — sufficient for at-most-once semantics with clients that
//! issue one request at a time (the closed-loop model of the paper).

use std::collections::HashMap;

use parking_lot::Mutex;

use smr_types::RequestId;

/// Outcome of the ClientIO-side lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Never seen: forward for ordering.
    Miss,
    /// Exactly the last executed request: resend the cached reply.
    Hit(Vec<u8>),
    /// Older than the last executed request: drop silently.
    Stale,
}

/// Outcome of the execution-side check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecuteOutcome {
    /// First execution of this sequence number: run the service.
    Fresh,
    /// Already executed; resend the cached reply if it is the latest.
    Duplicate(Option<Vec<u8>>),
}

/// A cache of the last reply sent to each client.
pub trait ReplyCache: Send + Sync + 'static {
    /// ClientIO path: classify an incoming request.
    fn lookup(&self, id: RequestId) -> CacheOutcome;

    /// Execution path: decide whether the ordered request must execute.
    fn check_execute(&self, id: RequestId) -> ExecuteOutcome;

    /// Records the reply of an executed request.
    fn record(&self, id: RequestId, reply: Vec<u8>);

    /// Number of clients tracked.
    fn len(&self) -> usize;

    /// Whether no clients are tracked.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

type Shard = Mutex<HashMap<u64, (u64, Vec<u8>)>>;

fn classify(entry: Option<&(u64, Vec<u8>)>, seq: u64) -> CacheOutcome {
    match entry {
        Some((last, reply)) if seq == *last => CacheOutcome::Hit(reply.clone()),
        Some((last, _)) if seq < *last => CacheOutcome::Stale,
        _ => CacheOutcome::Miss,
    }
}

fn classify_execute(entry: Option<&(u64, Vec<u8>)>, seq: u64) -> ExecuteOutcome {
    match entry {
        Some((last, reply)) if seq == *last => ExecuteOutcome::Duplicate(Some(reply.clone())),
        Some((last, _)) if seq < *last => ExecuteOutcome::Duplicate(None),
        _ => ExecuteOutcome::Fresh,
    }
}

/// Fine-grained (sharded) reply cache — the design the paper recommends.
#[derive(Debug)]
pub struct ShardedReplyCache {
    shards: Vec<Shard>,
}

impl ShardedReplyCache {
    /// Creates a cache with `shards` independent locks.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardedReplyCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, client: u64) -> &Shard {
        // Multiplicative hash spreads consecutive client ids.
        let h = client.wrapping_mul(0x9E3779B97F4A7C15);
        &self.shards[(h >> 32) as usize % self.shards.len()]
    }
}

impl ReplyCache for ShardedReplyCache {
    fn lookup(&self, id: RequestId) -> CacheOutcome {
        let shard = self.shard(id.client.0).lock();
        classify(shard.get(&id.client.0), id.seq.0)
    }

    fn check_execute(&self, id: RequestId) -> ExecuteOutcome {
        let shard = self.shard(id.client.0).lock();
        classify_execute(shard.get(&id.client.0), id.seq.0)
    }

    fn record(&self, id: RequestId, reply: Vec<u8>) {
        let mut shard = self.shard(id.client.0).lock();
        let entry = shard.entry(id.client.0).or_insert((0, Vec::new()));
        if entry.1.is_empty() && entry.0 == 0 || id.seq.0 >= entry.0 {
            *entry = (id.seq.0, reply);
        }
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

/// Coarse-grained reply cache: one global lock (the anti-pattern §V-D
/// warns about; kept as the ablation baseline).
#[derive(Debug, Default)]
pub struct CoarseReplyCache {
    map: Mutex<HashMap<u64, (u64, Vec<u8>)>>,
}

impl CoarseReplyCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        CoarseReplyCache::default()
    }
}

impl ReplyCache for CoarseReplyCache {
    fn lookup(&self, id: RequestId) -> CacheOutcome {
        let map = self.map.lock();
        classify(map.get(&id.client.0), id.seq.0)
    }

    fn check_execute(&self, id: RequestId) -> ExecuteOutcome {
        let map = self.map.lock();
        classify_execute(map.get(&id.client.0), id.seq.0)
    }

    fn record(&self, id: RequestId, reply: Vec<u8>) {
        let mut map = self.map.lock();
        let entry = map.entry(id.client.0).or_insert((0, Vec::new()));
        if entry.1.is_empty() && entry.0 == 0 || id.seq.0 >= entry.0 {
            *entry = (id.seq.0, reply);
        }
    }

    fn len(&self) -> usize {
        self.map.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr_types::{ClientId, SeqNum};

    fn id(client: u64, seq: u64) -> RequestId {
        RequestId::new(ClientId(client), SeqNum(seq))
    }

    fn behaves_correctly(cache: &dyn ReplyCache) {
        assert_eq!(cache.lookup(id(1, 1)), CacheOutcome::Miss);
        assert_eq!(cache.check_execute(id(1, 1)), ExecuteOutcome::Fresh);
        cache.record(id(1, 1), b"r1".to_vec());
        assert_eq!(cache.lookup(id(1, 1)), CacheOutcome::Hit(b"r1".to_vec()));
        assert_eq!(
            cache.check_execute(id(1, 1)),
            ExecuteOutcome::Duplicate(Some(b"r1".to_vec()))
        );
        assert_eq!(cache.lookup(id(1, 2)), CacheOutcome::Miss);
        cache.record(id(1, 2), b"r2".to_vec());
        assert_eq!(cache.lookup(id(1, 1)), CacheOutcome::Stale);
        assert_eq!(
            cache.check_execute(id(1, 1)),
            ExecuteOutcome::Duplicate(None)
        );
        // Clients are independent.
        assert_eq!(cache.lookup(id(2, 1)), CacheOutcome::Miss);
        assert_eq!(cache.len(), 1 + usize::from(false));
    }

    #[test]
    fn sharded_semantics() {
        behaves_correctly(&ShardedReplyCache::new(16));
    }

    #[test]
    fn coarse_semantics() {
        behaves_correctly(&CoarseReplyCache::new());
    }

    #[test]
    fn out_of_order_record_keeps_latest() {
        let cache = ShardedReplyCache::new(4);
        cache.record(id(1, 5), b"r5".to_vec());
        cache.record(id(1, 3), b"r3".to_vec());
        assert_eq!(cache.lookup(id(1, 5)), CacheOutcome::Hit(b"r5".to_vec()));
        assert_eq!(cache.lookup(id(1, 3)), CacheOutcome::Stale);
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let cache = Arc::new(ShardedReplyCache::new(16));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        let rid = id(t * 1000 + i, 1);
                        cache.record(rid, vec![t as u8]);
                        assert_ne!(cache.lookup(rid), CacheOutcome::Miss);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(cache.len(), 8000);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedReplyCache::new(0);
    }
}
