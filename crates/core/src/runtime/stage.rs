//! Slot-lifecycle latency breakdown: stage stamps and their histograms.
//!
//! A batch crosses the pipeline of Fig. 3 through fixed stage
//! boundaries: request **intake** (ClientIO decodes it) → batch
//! **sealed** (Batcher closes the batch) → **proposed** (Protocol
//! thread starts the ballot) → **decided** (consensus) → **executed**
//! (ServiceManager ran it) → **reply enqueued** (handed to ClientIO).
//! Each boundary stamps the batch with [`SharedState::now_ns`], and
//! each transition feeds one histogram here, giving the per-stage
//! latency breakdown the paper's evaluation methodology calls for.
//!
//! All recording is guarded by [`StageMetrics::enabled`]: with stage
//! metrics off, stamps stay zero and no histogram locks are touched, so
//! the hot path pays one branch and a `u64` copy per boundary.

use smr_metrics::{MetricsRegistry, SharedHistogram};
use smr_types::RequestId;

use crate::shared::SharedState;

/// Stamps a batch carries from the Batcher to the Protocol thread.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct BatchStamp {
    /// When the batch's first request left its ClientIO thread.
    pub intake_ns: u64,
    /// When the Batcher sealed the batch.
    pub sealed_ns: u64,
}

/// The full stage clock a batch accumulates by decision time; carried
/// with `Decision::Apply` into the ServiceManager.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct StageClock {
    /// When the batch's first request left its ClientIO thread.
    pub intake_ns: u64,
    /// When the Batcher sealed the batch. Not consumed by a transition
    /// (sealed→proposed is recorded before the clock is built) but
    /// carried so the clock is the complete stage record.
    #[allow(dead_code)]
    pub sealed_ns: u64,
    /// When the Protocol thread proposed the batch.
    pub proposed_ns: u64,
    /// When consensus decided the batch.
    pub decided_ns: u64,
}

/// Per-transition latency histograms, shared across the pipeline's
/// threads. All histograms live in the replica's [`MetricsRegistry`]
/// under `stage.*` / `wal.*` names, so they appear in the metrics
/// export automatically.
#[derive(Debug, Clone)]
pub(crate) struct StageMetrics {
    /// Whether stage stamping and recording is on. Off ⇒ every record_*
    /// call is a single branch.
    pub enabled: bool,
    /// Request intake → batch sealed (Batcher queueing + fill time).
    pub intake_to_sealed: SharedHistogram,
    /// Batch sealed → proposed (ProposalQueue wait + window gating).
    pub sealed_to_proposed: SharedHistogram,
    /// Proposed → decided (consensus round trips).
    pub proposed_to_decided: SharedHistogram,
    /// Decided → executed (DecisionQueue wait + WAL append + execution).
    pub decided_to_executed: SharedHistogram,
    /// Executed → reply enqueued on the ClientIO reply queues.
    pub executed_to_reply: SharedHistogram,
    /// Intake → reply enqueued: the end-to-end replica residence time.
    pub intake_to_reply: SharedHistogram,
    /// One WAL append (buffered write of one decided record).
    pub wal_append: SharedHistogram,
    /// One WAL sync — the group-commit flush covering a drained burst.
    pub wal_fsync: SharedHistogram,
}

impl StageMetrics {
    /// Wires the stage histograms into `registry` under their canonical
    /// names.
    pub fn new(registry: &MetricsRegistry, enabled: bool) -> Self {
        StageMetrics {
            enabled,
            intake_to_sealed: registry.histogram("stage.intake_to_sealed"),
            sealed_to_proposed: registry.histogram("stage.sealed_to_proposed"),
            proposed_to_decided: registry.histogram("stage.proposed_to_decided"),
            decided_to_executed: registry.histogram("stage.decided_to_executed"),
            executed_to_reply: registry.histogram("stage.executed_to_reply"),
            intake_to_reply: registry.histogram("stage.intake_to_reply"),
            wal_append: registry.histogram("wal.append"),
            wal_fsync: registry.histogram("wal.fsync"),
        }
    }

    /// Current stamp, or 0 when stage metrics are off.
    pub fn stamp(&self, shared: &SharedState) -> u64 {
        if self.enabled {
            shared.now_ns()
        } else {
            0
        }
    }

    /// Records a batch sealing: intake → sealed.
    pub fn record_sealed(&self, stamp: BatchStamp) {
        if self.enabled {
            self.intake_to_sealed
                .record(stamp.sealed_ns.saturating_sub(stamp.intake_ns));
        }
    }

    /// Records a proposal, upgrading the batch stamp to a full clock.
    pub fn record_proposed(&self, stamp: BatchStamp, proposed_ns: u64) -> StageClock {
        if self.enabled {
            self.sealed_to_proposed
                .record(proposed_ns.saturating_sub(stamp.sealed_ns));
        }
        StageClock {
            intake_ns: stamp.intake_ns,
            sealed_ns: stamp.sealed_ns,
            proposed_ns,
            decided_ns: 0,
        }
    }

    /// Records a decision: proposed → decided. Returns the completed
    /// clock to carry into the ServiceManager.
    pub fn record_decided(&self, mut clock: StageClock, decided_ns: u64) -> StageClock {
        clock.decided_ns = decided_ns;
        if self.enabled {
            self.proposed_to_decided
                .record(decided_ns.saturating_sub(clock.proposed_ns));
        }
        clock
    }

    /// Records a batch execution: decided → executed.
    pub fn record_executed(&self, clock: &StageClock, executed_ns: u64) {
        if self.enabled {
            self.decided_to_executed
                .record(executed_ns.saturating_sub(clock.decided_ns));
        }
    }

    /// Records the reply hand-over: executed → reply enqueued, plus the
    /// end-to-end intake → reply residence time.
    pub fn record_replied(&self, clock: &StageClock, executed_ns: u64, replied_ns: u64) {
        if self.enabled {
            self.executed_to_reply
                .record(replied_ns.saturating_sub(executed_ns));
            self.intake_to_reply
                .record(replied_ns.saturating_sub(clock.intake_ns));
        }
    }

    /// Records one buffered WAL append.
    pub fn record_wal_append(&self, start_ns: u64, end_ns: u64) {
        if self.enabled {
            self.wal_append.record(end_ns.saturating_sub(start_ns));
        }
    }

    /// Records one WAL sync — the group-commit flush of a drained burst.
    pub fn record_wal_fsync(&self, start_ns: u64, end_ns: u64) {
        if self.enabled {
            self.wal_fsync.record(end_ns.saturating_sub(start_ns));
        }
    }
}

/// Key a proposed batch is tracked under while consensus is in flight:
/// its first request's id (unique — request ids enter the pipeline
/// once; retries are deduplicated at the ClientIO cache probe).
pub(crate) fn batch_key(batch: &smr_wire::Batch) -> Option<RequestId> {
    batch.requests.first().map(|r| r.id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_stage_metrics_record_nothing() {
        let registry = MetricsRegistry::new();
        let stage = StageMetrics::new(&registry, false);
        let shared = SharedState::new(3);
        assert_eq!(stage.stamp(&shared), 0);
        stage.record_sealed(BatchStamp {
            intake_ns: 5,
            sealed_ns: 10,
        });
        let clock = stage.record_proposed(BatchStamp::default(), 20);
        let clock = stage.record_decided(clock, 30);
        stage.record_executed(&clock, 40);
        stage.record_replied(&clock, 40, 50);
        assert!(
            registry.histogram_summaries().is_empty(),
            "no samples recorded while disabled"
        );
    }

    #[test]
    fn enabled_stage_metrics_feed_all_transitions() {
        let registry = MetricsRegistry::new();
        let stage = StageMetrics::new(&registry, true);
        let stamp = BatchStamp {
            intake_ns: 100,
            sealed_ns: 250,
        };
        stage.record_sealed(stamp);
        let clock = stage.record_proposed(stamp, 400);
        let clock = stage.record_decided(clock, 900);
        stage.record_executed(&clock, 1_100);
        stage.record_replied(&clock, 1_100, 1_200);
        let names: Vec<String> = registry
            .histogram_summaries()
            .into_iter()
            .map(|h| h.name)
            .collect();
        assert_eq!(
            names,
            vec![
                "stage.decided_to_executed",
                "stage.executed_to_reply",
                "stage.intake_to_reply",
                "stage.intake_to_sealed",
                "stage.proposed_to_decided",
                "stage.sealed_to_proposed",
            ]
        );
        assert_eq!(
            registry
                .histogram("stage.intake_to_reply")
                .snapshot()
                .max_ns(),
            1_100,
            "end-to-end = replied - intake"
        );
    }

    #[test]
    fn clock_survives_the_pipeline() {
        let registry = MetricsRegistry::new();
        let stage = StageMetrics::new(&registry, true);
        let stamp = BatchStamp {
            intake_ns: 1,
            sealed_ns: 2,
        };
        let clock = stage.record_decided(stage.record_proposed(stamp, 3), 4);
        assert_eq!(clock.intake_ns, 1);
        assert_eq!(clock.sealed_ns, 2);
        assert_eq!(clock.proposed_ns, 3);
        assert_eq!(clock.decided_ns, 4);
    }
}
