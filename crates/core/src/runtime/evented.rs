//! Evented ClientIO: the readiness-loop client path.
//!
//! Each pool thread owns one epoll instance (via the vendored `mio` shim)
//! and a slab of connections; the slab index is the epoll token. Reads
//! drain edge-triggered readiness into per-connection frame decoders
//! feeding the RequestQueue, replies coalesce into per-connection
//! outbound buffers flushed once per burst, and slow readers get a
//! bounded overflow queue plus writable-interest re-arm instead of a
//! blocking write. The protocol pipeline above is untouched: the same
//! intake/reply queues, stage stamps, and backpressure contract as the
//! thread-per-connection path, so both modes are interchangeable behind
//! [`ReplicaBuilder::with_evented_client_io`].
//!
//! [`ReplicaBuilder::with_evented_client_io`]: super::ReplicaBuilder::with_evented_client_io

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use smr_metrics::ThreadState;
use smr_net::{ClientConn, ClientListener};
use smr_queue::{PopError, PushError};
use smr_wire::{ClientMsg, Codec, Reply, Request};

use super::client_io::{classify_frame, run_acceptor, run_client_io, FrameAction};
use super::Ctx;

/// Token reserved for the cross-thread waker; connection tokens are slab
/// indices, which can never reach it.
const WAKER_TOKEN: mio::Token = mio::Token(usize::MAX);

/// Poll timeout when nothing is outstanding; bounds how stale the
/// shutdown check can get (wakers cover every other wake-up source).
const IDLE_TIMEOUT: Duration = Duration::from_millis(100);

/// Tuning knobs for the evented ClientIO path
/// ([`ReplicaBuilder::with_evented_client_io`]).
///
/// [`ReplicaBuilder::with_evented_client_io`]: super::ReplicaBuilder::with_evented_client_io
#[derive(Debug, Clone)]
pub struct EventedIoOptions {
    /// Per-connection outbound buffer cap in bytes. Replies beyond it go
    /// to the overflow queue instead of growing the buffer without bound
    /// — the slow-reader threshold.
    pub max_outbound_bytes: usize,
    /// Encoded reply frames a slow reader may accumulate in overflow
    /// before the connection is dropped.
    pub max_overflow_frames: usize,
    /// Poll timeout while work that produces no readiness event is
    /// outstanding: fd-less (in-memory) connections to scan, parked
    /// requests waiting for RequestQueue space, or fd-less flush retries.
    pub tick: Duration,
}

impl Default for EventedIoOptions {
    fn default() -> Self {
        EventedIoOptions {
            max_outbound_bytes: 256 * 1024,
            max_overflow_frames: 1024,
            tick: Duration::from_millis(1),
        }
    }
}

/// A slot another thread can ring to kick an evented ClientIO thread out
/// of `epoll_wait`. Empty (a no-op) in threaded mode and until the
/// evented thread installs its waker.
pub(crate) struct IoWaker(Mutex<Option<Arc<mio::Waker>>>);

impl IoWaker {
    /// An uninstalled waker; `ring` is a no-op until `install`.
    pub(crate) fn empty() -> Self {
        IoWaker(Mutex::new(None))
    }

    fn install(&self, waker: Arc<mio::Waker>) {
        *self.0.lock() = Some(waker);
    }

    /// Wakes the owning evented thread, if one exists.
    pub(crate) fn ring(&self) {
        if let Some(w) = self.0.lock().as_ref() {
            let _ = w.wake();
        }
    }
}

/// One connection owned by an evented pool thread.
struct EvConn {
    conn: Box<dyn ClientConn>,
    /// Registered fd, or `None` for poll-scanned (in-memory) connections.
    fd: Option<i32>,
    /// Edge-triggered readiness: set by an event, cleared only once a
    /// read drains to `WouldBlock` — it survives a backpressure pause so
    /// buffered bytes are not forgotten.
    readable: bool,
    /// Currently registered with writable interest (flush hit
    /// `WouldBlock` and is waiting for the socket to accept more).
    writable_armed: bool,
    /// Queued in `dirty` for a flush attempt this iteration.
    needs_flush: bool,
    /// A stamped request awaiting RequestQueue space (§V-E). While
    /// present the connection is not read.
    pending: Option<(Request, u64)>,
    /// Encoded reply frames that did not fit the transport's outbound
    /// buffer, drained ahead of new replies to preserve order.
    overflow: VecDeque<Vec<u8>>,
}

impl EvConn {
    /// Queues one encoded frame behind any overflow; returns false when
    /// the connection must be dropped (broken, or overflow past the cap).
    fn queue_frame(&mut self, frame: Vec<u8>, opts: &EventedIoOptions) -> bool {
        if !self.overflow.is_empty() {
            if self.overflow.len() >= opts.max_overflow_frames {
                return false; // slow reader past the drop threshold
            }
            self.overflow.push_back(frame);
            return true;
        }
        match self.conn.try_send(frame, opts.max_outbound_bytes) {
            Ok(None) => true,
            Ok(Some(refused)) => {
                self.overflow.push_back(refused);
                true
            }
            Err(_) => false,
        }
    }

    /// Moves overflow into the transport buffer and flushes it.
    /// `Ok(true)` = everything drained, `Ok(false)` = backlog remains
    /// (socket full), `Err(())` = connection broke.
    fn flush(&mut self, opts: &EventedIoOptions) -> Result<bool, ()> {
        while let Some(frame) = self.overflow.pop_front() {
            match self.conn.try_send(frame, opts.max_outbound_bytes) {
                Ok(None) => {}
                Ok(Some(refused)) => {
                    self.overflow.push_front(refused);
                    break;
                }
                Err(_) => return Err(()),
            }
        }
        match self.conn.flush_out() {
            Ok(drained) => Ok(drained && self.overflow.is_empty()),
            Err(_) => Err(()),
        }
    }
}

fn interest_both() -> mio::Interest {
    mio::Interest::READABLE | mio::Interest::WRITABLE
}

/// The readiness loop replacing `run_client_io` when the builder selects
/// evented mode. Falls back to the threaded loop body (minus the
/// dedicated threads — this thread still owns only its share of
/// connections) on platforms without epoll.
pub(crate) fn run_evented_client_io(ctx: &Ctx, index: usize, opts: &EventedIoOptions) {
    if !mio::SUPPORTED {
        return run_client_io(ctx, index);
    }
    let mut poll = match mio::Poll::new() {
        Ok(p) => p,
        Err(_) => return run_client_io(ctx, index),
    };
    let waker = match mio::Waker::new(poll.registry(), WAKER_TOKEN) {
        Ok(w) => Arc::new(w),
        Err(_) => return run_client_io(ctx, index),
    };
    ctx.io_wakers[index].install(Arc::clone(&waker));

    let handle = ctx.metrics.register_thread(format!("ClientIO-{index}"));
    let mut slots: Vec<Option<EvConn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut by_id: HashMap<u64, usize> = HashMap::new();
    // Work lists, all holding slab indices. An index may go stale when
    // its connection dies; scans skip empty slots, and `kill` purges the
    // lists eagerly so a recycled slot is never misattributed.
    let mut polled: Vec<usize> = Vec::new(); // fd-less conns, scanned per tick
    let mut read_list: Vec<usize> = Vec::new(); // fd conns with readable set
    let mut parked: Vec<usize> = Vec::new(); // conns holding a pending request
    let mut dirty: Vec<usize> = Vec::new(); // conns needing a flush attempt
    let mut next_dirty: Vec<usize> = Vec::new();
    let mut dead: Vec<usize> = Vec::new();
    let mut adopted: Vec<Box<dyn ClientConn>> = Vec::new();
    let mut replies: Vec<(u64, Reply)> = Vec::new();
    let mut events = mio::Events::with_capacity(256);

    while !ctx.is_shutdown() {
        // 1. Adopt newly accepted connections dealt by the acceptor.
        if ctx.intake_qs[index].try_pop_all(&mut adopted).is_ok() {
            for conn in adopted.drain(..) {
                let slot = free.pop().unwrap_or_else(|| {
                    slots.push(None);
                    slots.len() - 1
                });
                by_id.insert(conn.id(), slot);
                let raw = conn.raw_fd();
                slots[slot] = Some(EvConn {
                    conn,
                    fd: None,
                    // Conservatively readable: bytes may have arrived
                    // before registration; the first drain settles it.
                    readable: true,
                    writable_armed: false,
                    needs_flush: false,
                    pending: None,
                    overflow: VecDeque::new(),
                });
                let registered = raw.is_some_and(|fd| {
                    poll.registry()
                        .register(
                            &mut mio::unix::SourceFd(&fd),
                            mio::Token(slot),
                            mio::Interest::READABLE,
                        )
                        .is_ok()
                });
                if registered {
                    slots[slot].as_mut().expect("just inserted").fd = raw;
                    read_list.push(slot);
                } else {
                    polled.push(slot); // no fd (or registration failed): scan
                }
            }
        }

        // 2. Coalesce replies queued by the ServiceManager into the
        // per-connection outbound buffers (flushed in phase 5).
        match ctx.reply_qs[index].try_pop_all(&mut replies) {
            Ok(_) => {
                for (conn_id, reply) in replies.drain(..) {
                    let Some(&slot) = by_id.get(&conn_id) else {
                        continue; // client departed
                    };
                    let Some(st) = slots[slot].as_mut() else {
                        continue;
                    };
                    let frame = ClientMsg::Reply(reply).encode_to_vec();
                    if !st.queue_frame(frame, opts) {
                        dead.push(slot);
                    } else if !st.needs_flush {
                        st.needs_flush = true;
                        dirty.push(slot);
                    }
                }
            }
            Err(PopError::Empty) => {}
            Err(PopError::Closed) => return,
        }

        // 3. Retry requests parked on a full RequestQueue (§V-E).
        let mut i = 0;
        while i < parked.len() {
            let slot = parked[i];
            let Some(st) = slots[slot].as_mut() else {
                parked.swap_remove(i);
                continue;
            };
            let Some(req) = st.pending.take() else {
                parked.swap_remove(i);
                continue;
            };
            match ctx.request_q.try_push(req) {
                Ok(()) => {
                    parked.swap_remove(i);
                }
                Err(PushError::Full(req)) => {
                    st.pending = Some(req);
                    i += 1;
                }
                Err(PushError::Closed(_)) => return,
            }
        }

        // 4. Reads. fd-less connections are scanned every iteration (a
        // try_recv on an empty in-memory queue is one atomic load);
        // fd-backed connections only when flagged readable by an edge.
        let mut i = 0;
        while i < polled.len() {
            let slot = polled[i];
            if slots[slot].is_none() {
                polled.swap_remove(i);
                continue;
            }
            read_slot(
                ctx,
                index,
                opts,
                &mut slots,
                slot,
                &mut parked,
                &mut dirty,
                &mut dead,
            );
            i += 1;
        }
        let mut i = 0;
        while i < read_list.len() {
            let slot = read_list[i];
            let Some(st) = slots[slot].as_ref() else {
                read_list.swap_remove(i);
                continue;
            };
            if st.pending.is_some() {
                i += 1; // paused on backpressure; stays readable
                continue;
            }
            match read_slot(
                ctx,
                index,
                opts,
                &mut slots,
                slot,
                &mut parked,
                &mut dirty,
                &mut dead,
            ) {
                ReadOutcome::Drained | ReadOutcome::Dead => {
                    if let Some(st) = slots[slot].as_mut() {
                        st.readable = false;
                    }
                    read_list.swap_remove(i);
                }
                ReadOutcome::Paused => i += 1,
            }
        }

        // 5. Flush: one write burst per connection touched this
        // iteration, plus those a writable edge re-armed.
        for slot in dirty.drain(..) {
            let Some(st) = slots[slot].as_mut() else {
                continue;
            };
            st.needs_flush = false;
            match st.flush(opts) {
                Ok(true) => {
                    if st.writable_armed {
                        // Backlog cleared: stop watching for writable.
                        if let Some(fd) = st.fd {
                            let _ = poll.registry().reregister(
                                &mut mio::unix::SourceFd(&fd),
                                mio::Token(slot),
                                mio::Interest::READABLE,
                            );
                        }
                        st.writable_armed = false;
                    }
                }
                Ok(false) => match st.fd {
                    Some(fd) => {
                        if !st.writable_armed {
                            // Socket full: re-arm instead of blocking.
                            // The MOD delivers an edge even if the
                            // socket became writable in between.
                            let _ = poll.registry().reregister(
                                &mut mio::unix::SourceFd(&fd),
                                mio::Token(slot),
                                interest_both(),
                            );
                            st.writable_armed = true;
                        }
                    }
                    None => {
                        // No fd to arm: retry on the next tick.
                        st.needs_flush = true;
                        next_dirty.push(slot);
                    }
                },
                Err(()) => dead.push(slot),
            }
        }
        std::mem::swap(&mut dirty, &mut next_dirty);

        // 6. Bury connections that broke in any phase above.
        for slot in dead.drain(..) {
            kill(
                &poll,
                &mut slots,
                &mut free,
                &mut by_id,
                slot,
                [&mut polled, &mut read_list, &mut parked, &mut dirty],
            );
        }

        // 7. Park on epoll. Ticking work (fd-less scans, parked-request
        // retries, fd-less flush backlogs) bounds the sleep; otherwise
        // only a waker or a connection event need wake us early.
        let timeout = if polled.is_empty() && parked.is_empty() && dirty.is_empty() {
            IDLE_TIMEOUT
        } else {
            opts.tick
        };
        {
            let _g = handle.enter(ThreadState::Other); // blocked in epoll_wait
            let _ = poll.poll(&mut events, Some(timeout));
        }
        for ev in events.iter() {
            if ev.token() == WAKER_TOKEN {
                waker.clear();
                continue;
            }
            let slot = ev.token().0;
            let Some(st) = slots.get_mut(slot).and_then(|s| s.as_mut()) else {
                continue; // event raced a kill
            };
            if (ev.is_readable() || ev.is_read_closed() || ev.is_error()) && !st.readable {
                st.readable = true;
                read_list.push(slot);
            }
            if ev.is_writable() && !st.needs_flush {
                st.needs_flush = true;
                dirty.push(slot);
            }
        }
    }
}

/// What one connection's read drain ended with.
enum ReadOutcome {
    /// `try_recv` returned `None`: the kernel/queue buffer is empty.
    Drained,
    /// Stopped mid-drain on RequestQueue backpressure; bytes may remain.
    Paused,
    /// The connection broke or misbehaved and was queued for burial.
    Dead,
}

/// Drains one connection's inbound frames through [`classify_frame`],
/// coalescing responses and parking on backpressure.
#[allow(clippy::too_many_arguments)]
fn read_slot(
    ctx: &Ctx,
    index: usize,
    opts: &EventedIoOptions,
    slots: &mut [Option<EvConn>],
    slot: usize,
    parked: &mut Vec<usize>,
    dirty: &mut Vec<usize>,
    dead: &mut Vec<usize>,
) -> ReadOutcome {
    let Some(st) = slots[slot].as_mut() else {
        return ReadOutcome::Dead;
    };
    if st.pending.is_some() {
        return ReadOutcome::Paused;
    }
    loop {
        match st.conn.try_recv() {
            Ok(Some(frame)) => match classify_frame(ctx, index, st.conn.id(), &frame) {
                FrameAction::Respond(f) => {
                    if !st.queue_frame(f, opts) {
                        dead.push(slot);
                        return ReadOutcome::Dead;
                    }
                    if !st.needs_flush {
                        st.needs_flush = true;
                        dirty.push(slot);
                    }
                }
                FrameAction::Continue => {}
                FrameAction::Park(req) => {
                    st.pending = Some(req);
                    parked.push(slot);
                    return ReadOutcome::Paused;
                }
                FrameAction::Drop => {
                    dead.push(slot);
                    return ReadOutcome::Dead;
                }
            },
            Ok(None) => return ReadOutcome::Drained,
            Err(_) => {
                dead.push(slot);
                return ReadOutcome::Dead;
            }
        }
    }
}

/// Removes a connection: deregisters its fd, frees the slab slot, and
/// purges it from every work list so the recycled index starts clean.
fn kill(
    poll: &mio::Poll,
    slots: &mut [Option<EvConn>],
    free: &mut Vec<usize>,
    by_id: &mut HashMap<u64, usize>,
    slot: usize,
    lists: [&mut Vec<usize>; 4],
) {
    let Some(st) = slots[slot].take() else {
        return; // already buried (e.g. queued dead twice in one burst)
    };
    if let Some(fd) = st.fd {
        let _ = poll.registry().deregister(&mut mio::unix::SourceFd(&fd));
    }
    by_id.remove(&st.conn.id());
    for list in lists {
        list.retain(|s| *s != slot);
    }
    free.push(slot);
}

/// The acceptor in evented mode: parks on listener readiness instead of
/// sleep-polling, accepts in bursts, and rings the adopting pool thread's
/// waker. Falls back to the threaded acceptor when the listener has no fd
/// (in-memory transport) or epoll is unavailable.
pub(crate) fn run_evented_acceptor(ctx: &Ctx, listener: Box<dyn ClientListener>) {
    let Some(fd) = listener.raw_fd().filter(|_| mio::SUPPORTED) else {
        return run_acceptor(ctx, listener);
    };
    let Ok(mut poll) = mio::Poll::new() else {
        return run_acceptor(ctx, listener);
    };
    if poll
        .registry()
        .register(
            &mut mio::unix::SourceFd(&fd),
            mio::Token(0),
            mio::Interest::READABLE,
        )
        .is_err()
    {
        return run_acceptor(ctx, listener);
    }
    let handle = ctx.metrics.register_thread("ClientAcceptor");
    let k = ctx.intake_qs.len();
    let mut next = 0usize;
    let mut events = mio::Events::with_capacity(8);
    while !ctx.is_shutdown() {
        // Accept to WouldBlock (required by edge-triggering), fanning
        // connections across the pool round-robin (§V-A).
        loop {
            match listener.try_accept() {
                Ok(Some(conn)) => {
                    if ctx.intake_qs[next].push(conn).is_err() {
                        return;
                    }
                    ctx.io_wakers[next].ring();
                    next = (next + 1) % k;
                }
                Ok(None) => break,
                Err(_) => return,
            }
        }
        let _g = handle.enter(ThreadState::Other); // blocked in epoll_wait
        let _ = poll.poll(&mut events, Some(IDLE_TIMEOUT));
    }
}
