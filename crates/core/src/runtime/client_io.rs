//! The ClientIO module (§V-A): the acceptor thread and the ClientIO pool.

use std::collections::HashMap;
use std::time::Duration;

use smr_metrics::ThreadState;
use smr_net::{ClientConn, ClientListener};
use smr_queue::{PopError, PushError};
use smr_wire::{ClientMsg, Codec, Reply, Request};

use crate::reply_cache::CacheOutcome;

use super::Ctx;

/// Accepts client connections and deals them to ClientIO threads
/// round-robin (§V-A).
pub(crate) fn run_acceptor(ctx: &Ctx, listener: Box<dyn ClientListener>) {
    let handle = ctx.metrics.register_thread("ClientAcceptor");
    let k = ctx.intake_qs.len();
    let mut next = 0usize;
    while !ctx.is_shutdown() {
        let accepted = {
            let _g = handle.enter(ThreadState::Other); // blocked in accept(2)
            listener.accept_timeout(Duration::from_millis(100))
        };
        match accepted {
            Ok(Some(conn)) => {
                if ctx.intake_qs[next].push(conn).is_err() {
                    break;
                }
                // No-op in threaded mode; wakes an evented pool thread
                // out of epoll_wait to adopt the connection.
                ctx.io_wakers[next].ring();
                next = (next + 1) % k;
            }
            Ok(None) => {}
            Err(_) => break,
        }
    }
}

struct ConnState {
    conn: Box<dyn ClientConn>,
    /// A decoded request (with its intake stamp) that could not yet be
    /// pushed to the RequestQueue. While present, the connection is not
    /// read — this is the backpressure point of §V-E: paused reads fill
    /// the client's TCP buffers and eventually block the client.
    pending: Option<(Request, u64)>,
}

/// Most replies drained per wakeup while parked on an idle ReplyQueue
/// (bounds how long the thread defers its connection scan when a reply
/// burst lands; the busy path's `try_pop_all` drains everything queued).
const REPLY_BURST: usize = 1024;

/// One thread of the ClientIO pool: owns a subset of connections, decodes
/// requests, probes the reply cache, forwards to the Batcher, and writes
/// replies handed over by the ServiceManager. Replies and newly accepted
/// connections are drained in bulk — one lock acquisition per burst.
pub(crate) fn run_client_io(ctx: &Ctx, index: usize) {
    let handle = ctx.metrics.register_thread(format!("ClientIO-{index}"));
    let mut conns: HashMap<u64, ConnState> = HashMap::new();
    let mut dead: Vec<u64> = Vec::new();
    let mut adopted: Vec<Box<dyn ClientConn>> = Vec::new();
    let mut replies: Vec<(u64, Reply)> = Vec::new();

    while !ctx.is_shutdown() {
        let mut did_work = false;

        // Adopt newly accepted connections.
        if ctx.intake_qs[index].try_pop_all(&mut adopted).is_ok() {
            did_work = true;
            for conn in adopted.drain(..) {
                conns.insert(
                    conn.id(),
                    ConnState {
                        conn,
                        pending: None,
                    },
                );
            }
        }

        // Write replies queued by the ServiceManager.
        match ctx.reply_qs[index].try_pop_all(&mut replies) {
            Ok(_) => {
                did_work = true;
                for (conn_id, reply) in replies.drain(..) {
                    deliver_reply(&mut conns, &mut dead, conn_id, reply);
                }
            }
            Err(PopError::Empty) => {}
            Err(PopError::Closed) => return,
        }

        // Retry pushes that were paused on a full RequestQueue.
        for (id, state) in conns.iter_mut() {
            if let Some(req) = state.pending.take() {
                match ctx.request_q.try_push(req) {
                    Ok(()) => did_work = true,
                    Err(PushError::Full(req)) => state.pending = Some(req),
                    Err(PushError::Closed(_)) => return,
                }
            }
            let _ = id;
        }

        // Read from connections that are not paused.
        for (id, state) in conns.iter_mut() {
            if state.pending.is_some() {
                continue;
            }
            loop {
                match state.conn.try_recv() {
                    Ok(Some(frame)) => {
                        did_work = true;
                        if !handle_frame(ctx, index, state, &frame) {
                            dead.push(*id);
                            break;
                        }
                        if state.pending.is_some() {
                            break; // backpressure: stop reading this conn
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        dead.push(*id);
                        break;
                    }
                }
            }
        }
        for id in dead.drain(..) {
            conns.remove(&id);
        }

        if !did_work {
            // Park on the reply queue: the most likely source of new work
            // when all connections are idle.
            match ctx.reply_qs[index].pop_wait_all_with(
                &mut replies,
                REPLY_BURST,
                Duration::from_millis(1),
                &handle,
            ) {
                Ok(_) => {
                    for (conn_id, reply) in replies.drain(..) {
                        deliver_reply(&mut conns, &mut dead, conn_id, reply);
                    }
                }
                Err(PopError::Empty) => {}
                Err(PopError::Closed) => return,
            }
        }
    }
}

fn deliver_reply(
    conns: &mut HashMap<u64, ConnState>,
    dead: &mut Vec<u64>,
    conn_id: u64,
    reply: Reply,
) {
    if let Some(state) = conns.get_mut(&conn_id) {
        let frame = ClientMsg::Reply(reply).encode_to_vec();
        if state.conn.send(frame).is_err() {
            dead.push(conn_id);
        }
    }
}

/// What a ClientIO loop must do with one inbound frame, as decided by
/// [`classify_frame`]. The threaded and evented paths share the
/// classification (decode, reply-cache probe, leader check, client
/// binding, RequestQueue push) and differ only in how they write
/// responses and park backpressured requests.
pub(crate) enum FrameAction {
    /// Write this pre-encoded frame (cache-hit reply or leader redirect)
    /// back to the client.
    Respond(Vec<u8>),
    /// Nothing further: stale duplicate ignored or request accepted into
    /// the RequestQueue.
    Continue,
    /// The RequestQueue is full (§V-E): hold the stamped request and stop
    /// reading this connection until it fits.
    Park((Request, u64)),
    /// Drop the connection (undecodable frame, non-request message, or
    /// closed RequestQueue).
    Drop,
}

/// Processes one inbound frame up to (and including) the RequestQueue
/// push, stamping intake for the stage-latency breakdown.
pub(crate) fn classify_frame(ctx: &Ctx, index: usize, conn_id: u64, frame: &[u8]) -> FrameAction {
    let msg = match ClientMsg::decode(frame) {
        Ok(m) => m,
        Err(_) => return FrameAction::Drop, // garbage: drop the connection
    };
    let ClientMsg::Request(request) = msg else {
        return FrameAction::Drop; // clients only send requests
    };
    match ctx.cache.lookup(request.id) {
        CacheOutcome::Hit(reply) => {
            let frame = ClientMsg::Reply(Reply::new(request.id, reply)).encode_to_vec();
            return FrameAction::Respond(frame);
        }
        CacheOutcome::Stale => return FrameAction::Continue, // outdated duplicate
        CacheOutcome::Miss => {}
    }
    if !ctx.shared.is_leader() {
        // §VI-E: non-leaders refuse ordering work; point the client at
        // the best-known leader.
        let leader = ctx.shared.leader();
        let hint = if leader == ctx.me { None } else { Some(leader) };
        let frame = ClientMsg::Redirect { leader: hint }.encode_to_vec();
        return FrameAction::Respond(frame);
    }
    // Remember how to route the reply back (§V-D hand-over).
    ctx.shared.bind_client(request.id.client, index, conn_id);
    let stamp = ctx.stage.stamp(&ctx.shared);
    match ctx.request_q.try_push((request, stamp)) {
        Ok(()) => FrameAction::Continue,
        Err(PushError::Full(pending)) => FrameAction::Park(pending),
        Err(PushError::Closed(_)) => FrameAction::Drop,
    }
}

/// Processes one inbound frame; returns false if the connection should be
/// dropped.
fn handle_frame(ctx: &Ctx, index: usize, state: &mut ConnState, frame: &[u8]) -> bool {
    match classify_frame(ctx, index, state.conn.id(), frame) {
        FrameAction::Respond(f) => state.conn.send(f).is_ok(),
        FrameAction::Continue => true,
        FrameAction::Park(pending) => {
            state.pending = Some(pending);
            true
        }
        FrameAction::Drop => false,
    }
}
