//! The ReplicaIO module (§V-B): one blocking sender and one blocking
//! receiver thread per peer.

use std::time::Duration;

use smr_metrics::ThreadState;
use smr_paxos::Event;
use smr_types::ReplicaId;
use smr_wire::{Codec, ProtocolMsg};

use super::Ctx;

/// Sender thread for one peer: drains the peer's SendQueue, serializes,
/// and writes to the network. Having a dedicated thread means the
/// Protocol thread never blocks on a slow or dead peer (§V-B), avoiding
/// the distributed-deadlock scenario the paper describes.
pub(crate) fn run_sender(ctx: &Ctx, peer: ReplicaId) {
    let handle = ctx
        .metrics
        .register_thread(format!("ReplicaIOSnd-{}", peer.0));
    loop {
        match ctx.send_qs[peer.index()].pop_with(&handle) {
            Ok(msg) => {
                let frame = msg.encode_to_vec();
                ctx.shared.note_send(peer);
                let sent = {
                    let _g = handle.enter(ThreadState::Other); // in send(2)
                    ctx.network.send_to(peer, frame)
                };
                if sent.is_err() {
                    if ctx.is_shutdown() {
                        return;
                    }
                    // Link down: drop the frame (retransmission recovers)
                    // and back off so reconnects aren't a busy loop.
                    let _g = handle.enter(ThreadState::Other);
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
            Err(_) => return,
        }
    }
}

/// Receiver thread for one peer: blocks on the socket, deserializes, and
/// feeds the DispatcherQueue. Also stamps the failure detector's
/// last-received timestamp (lock-free, §V-C3).
pub(crate) fn run_receiver(ctx: &Ctx, peer: ReplicaId) {
    let handle = ctx
        .metrics
        .register_thread(format!("ReplicaIORcv-{}", peer.0));
    loop {
        let frame = {
            let _g = handle.enter(ThreadState::Other); // blocked in recv(2)
            ctx.network.recv_from(peer)
        };
        match frame {
            Ok(frame) => {
                ctx.shared.note_recv(peer);
                match ProtocolMsg::decode(&frame) {
                    Ok(msg) => {
                        if ctx
                            .dispatcher_q
                            .push_with(Event::Message { from: peer, msg }, &handle)
                            .is_err()
                        {
                            return;
                        }
                    }
                    Err(_) => {
                        // Corrupt frame: drop it; retransmission recovers.
                    }
                }
            }
            Err(_) => {
                if ctx.is_shutdown() {
                    return;
                }
                let _g = handle.enter(ThreadState::Other);
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}
