//! The replica runtime: thread spawning, wiring, and lifecycle.

mod client_io;
mod core_threads;
mod evented;
mod replica_io;
mod service_manager;
mod stage;

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use smr_metrics::{Counter, MetricsRegistry, MetricsSnapshot, ThreadState};
use smr_net::{ClientConn, ClientListener, ReplicaNetwork};
use smr_paxos::{RetransmitKey, Target};
use smr_queue::{BoundedQueue, CancelHandle, DepthSampler, QueueRegistry, TimerQueue};
use smr_storage::Storage;
use smr_types::{
    ClusterConfig, CompactionPolicy, ConfigError, ReplicaId, Slot, SmrError, SnapshotBlob,
};
use smr_wire::{Batch, ProtocolMsg, Reply, Request};

use stage::{BatchStamp, StageClock, StageMetrics};

use crate::reply_cache::{ExecuteOutcome, ReplyCache, ShardedReplyCache};
use crate::service::{
    ConflictAwareService, RecoverableService, Service, SharedOps, SharedSnapshotOps,
    SharedSnapshotService,
};
use crate::shared::SharedState;

pub use evented::EventedIoOptions;
pub(crate) use evented::IoWaker;
pub(crate) use service_manager::SnapshotRig;

/// Which ClientIO implementation the builder spawns.
enum ClientIoMode {
    /// Thread-per-connection-scan pool (the paper's §V-A; default).
    Threaded,
    /// Readiness loop: `pool` threads, each owning an epoll instance and
    /// a connection slab (see [`evented`]).
    Evented { pool: usize, opts: EventedIoOptions },
}

/// How the ServiceManager executes decided commands.
enum ServiceMode {
    /// One thread, strict log order (the paper's architecture; default).
    Sequential(Box<dyn Service>),
    /// One thread, strict log order, with snapshot/restore — unlocks
    /// durability, snapshot-driven compaction, and snapshot transfer.
    SequentialSnapshot(Box<dyn RecoverableService>),
    /// Dependency-aware parallel execution on a worker pool (see
    /// [`crate::ParallelExecutor`]). `snapshot` carries the lifecycle
    /// operations when the service supports them.
    Parallel {
        service: Arc<dyn ConflictAwareService>,
        workers: usize,
        snapshot: Option<Box<dyn SharedSnapshotOps>>,
    },
}

impl ServiceMode {
    /// Whether this mode can produce and restore snapshots.
    fn snapshot_capable(&self) -> bool {
        match self {
            ServiceMode::Sequential(_) => false,
            ServiceMode::SequentialSnapshot(_) => true,
            ServiceMode::Parallel { snapshot, .. } => snapshot.is_some(),
        }
    }
}

/// One unit of work on the DecisionQueue.
#[derive(Debug)]
pub(crate) enum Decision {
    /// Execute the decided batch of `slot` (strictly increasing, gap-free
    /// except across a preceding `Install`). The clock carries the
    /// batch's stage stamps when this replica proposed it with stage
    /// metrics on; follower deliveries carry `None`.
    Apply(Slot, Batch, Option<StageClock>),
    /// Replace the service state with a peer's snapshot before applying
    /// anything at or above its watermark.
    Install(SnapshotBlob),
}

/// The replica's published snapshot state: the newest blob (for serving
/// snapshot transfer) and its watermark (an atomic the Protocol thread
/// polls to drive compaction without locking).
pub(crate) struct SnapshotStore {
    latest: Mutex<Option<Arc<SnapshotBlob>>>,
    watermark: AtomicU64,
}

impl SnapshotStore {
    fn new() -> Self {
        SnapshotStore {
            latest: Mutex::new(None),
            watermark: AtomicU64::new(0),
        }
    }

    /// Publishes a newer snapshot. Blob first, watermark second: anyone
    /// who observes the watermark will find a blob at least as new.
    pub fn publish(&self, blob: Arc<SnapshotBlob>) {
        let upto = blob.applied_upto;
        {
            let mut latest = self.latest.lock();
            if latest.as_ref().is_some_and(|cur| cur.applied_upto >= upto) {
                return;
            }
            *latest = Some(blob);
        }
        self.watermark.fetch_max(upto.0, Ordering::Release);
    }

    /// The newest published snapshot, if any.
    pub fn latest(&self) -> Option<Arc<SnapshotBlob>> {
        self.latest.lock().clone()
    }

    /// Watermark of the newest published snapshot.
    pub fn watermark(&self) -> Slot {
        Slot(self.watermark.load(Ordering::Acquire))
    }
}

/// A message awaiting retransmission (§V-C4).
#[derive(Debug, Clone)]
pub(crate) struct RetransmitEntry {
    pub key: RetransmitKey,
    pub to: Target,
    pub msg: ProtocolMsg,
    pub attempt: u32,
}

/// Everything the replica's threads share.
pub(crate) struct Ctx {
    pub me: ReplicaId,
    pub config: ClusterConfig,
    pub shared: Arc<SharedState>,
    pub cache: Arc<dyn ReplyCache>,
    pub metrics: MetricsRegistry,
    /// Probes of every named pipeline queue, for the metrics export and
    /// the opt-in depth sampler.
    pub queues: QueueRegistry,
    /// The slot-lifecycle latency instrumentation (see [`stage`]).
    pub stage: StageMetrics,
    pub shutdown: AtomicBool,
    /// Requests paired with their intake stamp (0 when stage metrics are
    /// off).
    pub request_q: BoundedQueue<(Request, u64)>,
    /// Sealed batches paired with their intake/sealed stamps.
    pub proposal_q: BoundedQueue<(Batch, BatchStamp)>,
    pub dispatcher_q: BoundedQueue<smr_paxos::Event>,
    pub decision_q: BoundedQueue<Decision>,
    /// Newest snapshot (blob + watermark) this replica can serve.
    pub snapshots: SnapshotStore,
    /// Whether the configured service supports snapshot/restore.
    pub snapshot_capable: bool,
    /// The compaction policy threaded into the Protocol core.
    pub compaction: CompactionPolicy,
    /// Indexed by peer replica id (own slot unused).
    pub send_qs: Vec<BoundedQueue<ProtocolMsg>>,
    /// Indexed by ClientIO thread.
    pub reply_qs: Vec<BoundedQueue<(u64, Reply)>>,
    /// Indexed by ClientIO thread: newly accepted connections.
    pub intake_qs: Vec<BoundedQueue<Box<dyn ClientConn>>>,
    /// Indexed by ClientIO thread: rings the thread out of `epoll_wait`
    /// when replies or connections land. No-ops in threaded mode.
    pub io_wakers: Vec<IoWaker>,
    pub network: Arc<dyn ReplicaNetwork>,
    pub timers: TimerQueue<RetransmitEntry>,
    pub retransmits: Mutex<HashMap<RetransmitKey, CancelHandle>>,
    /// Frames dropped because a SendQueue was full (the non-blocking
    /// escape hatch of §V-B; retransmission recovers them).
    pub send_drops: Counter,
}

impl Ctx {
    /// Enqueues `msg` for each target peer on its SendQueue without
    /// blocking; full queues drop (the Retransmitter will recover).
    pub fn send(&self, to: Target, msg: &ProtocolMsg) {
        match to {
            Target::All => {
                for peer in self.config.peers(self.me) {
                    if self.send_qs[peer.index()].try_push(msg.clone()).is_err() {
                        self.send_drops.inc();
                    }
                }
            }
            Target::One(peer) => {
                if peer != self.me
                    && self.config.contains(peer)
                    && self.send_qs[peer.index()].try_push(msg.clone()).is_err()
                {
                    self.send_drops.inc();
                }
            }
        }
    }

    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }
}

/// Builder for a [`Replica`] ([C-BUILDER]).
///
/// The surface is `with_*` setters: a service (one of the four service
/// setters), [`with_network`](ReplicaBuilder::with_network), and
/// [`with_client_listener`](ReplicaBuilder::with_client_listener) are
/// required; durability, compaction, metrics, and the reply cache are
/// optional.
pub struct ReplicaBuilder {
    me: ReplicaId,
    config: ClusterConfig,
    service: Option<ServiceMode>,
    network: Option<Arc<dyn ReplicaNetwork>>,
    listener: Option<Box<dyn ClientListener>>,
    metrics: Option<MetricsRegistry>,
    cache: Option<Arc<dyn ReplyCache>>,
    durability: Option<PathBuf>,
    compaction: Option<CompactionPolicy>,
    snapshot_every: u64,
    stage_metrics: bool,
    metrics_dump: Option<(PathBuf, Duration)>,
    queue_sampler: Option<Duration>,
    client_io_mode: ClientIoMode,
}

impl ReplicaBuilder {
    /// Starts building replica `me` of `config`.
    pub fn new(me: ReplicaId, config: ClusterConfig) -> Self {
        ReplicaBuilder {
            me,
            config,
            service: None,
            network: None,
            listener: None,
            metrics: None,
            cache: None,
            durability: None,
            compaction: None,
            snapshot_every: 1024,
            stage_metrics: true,
            metrics_dump: None,
            queue_sampler: None,
            client_io_mode: ClientIoMode::Threaded,
        }
    }

    /// Sets the replicated service, executed sequentially in decided-log
    /// order. Exactly one of the four service setters is required.
    ///
    /// A service set this way cannot snapshot: durability and
    /// snapshot-driven compaction are unavailable. Prefer
    /// [`with_snapshot_service`](ReplicaBuilder::with_snapshot_service)
    /// when the service implements [`SnapshotService`](crate::SnapshotService).
    pub fn with_service(mut self, service: Box<dyn Service>) -> Self {
        self.service = Some(ServiceMode::Sequential(service));
        self
    }

    /// Sets a sequential service that also supports snapshot/restore,
    /// unlocking [`with_durability`](ReplicaBuilder::with_durability),
    /// snapshot-driven compaction, and snapshot transfer to lagging
    /// peers.
    pub fn with_snapshot_service(mut self, service: Box<dyn RecoverableService>) -> Self {
        self.service = Some(ServiceMode::SequentialSnapshot(service));
        self
    }

    /// Sets the replicated service in dependency-aware parallel mode:
    /// decided commands that do not conflict (per the service's
    /// [`ConflictAwareService::conflict_keys`] classification) execute
    /// concurrently on a pool of `workers` threads, conflicting ones in
    /// decided order. Replaces any service set earlier; `workers` is
    /// clamped to at least 1.
    pub fn with_parallel_service(
        mut self,
        service: Arc<dyn ConflictAwareService>,
        workers: usize,
    ) -> Self {
        self.service = Some(ServiceMode::Parallel {
            service,
            workers: workers.max(1),
            snapshot: None,
        });
        self
    }

    /// Sets a parallel service that also supports shared
    /// snapshot/restore ([`SharedSnapshotService`]), combining parallel
    /// execution with durability, compaction, and snapshot transfer.
    pub fn with_parallel_snapshot_service<S>(mut self, service: Arc<S>, workers: usize) -> Self
    where
        S: ConflictAwareService + SharedSnapshotService + 'static,
    {
        let ops: Box<dyn SharedSnapshotOps> = Box::new(SharedOps(Arc::clone(&service)));
        self.service = Some(ServiceMode::Parallel {
            service,
            workers: workers.max(1),
            snapshot: Some(ops),
        });
        self
    }

    /// Persists the decided log and snapshots under `dir`, and recovers
    /// from them on startup. Requires a snapshot-capable service
    /// ([`with_snapshot_service`](ReplicaBuilder::with_snapshot_service)
    /// or
    /// [`with_parallel_snapshot_service`](ReplicaBuilder::with_parallel_snapshot_service)).
    pub fn with_durability(mut self, dir: impl Into<PathBuf>) -> Self {
        self.durability = Some(dir.into());
        self
    }

    /// Sets the log compaction policy (optional; defaults to
    /// [`CompactionPolicy::SnapshotDriven`] for snapshot-capable
    /// services and `KeepSlots(4096)` otherwise).
    pub fn with_compaction(mut self, policy: CompactionPolicy) -> Self {
        self.compaction = Some(policy);
        self
    }

    /// Takes a snapshot every `n` applied slots (optional; default
    /// 1024). Clamped to at least 1; only meaningful for
    /// snapshot-capable services.
    pub fn with_snapshot_every(mut self, n: u64) -> Self {
        self.snapshot_every = n.max(1);
        self
    }

    /// Sets the replica-to-replica network (required).
    pub fn with_network(mut self, network: Arc<dyn ReplicaNetwork>) -> Self {
        self.network = Some(network);
        self
    }

    /// Sets the client listener (required).
    pub fn with_client_listener(mut self, listener: Box<dyn ClientListener>) -> Self {
        self.listener = Some(listener);
        self
    }

    /// Replaces the thread-per-connection-scan ClientIO pool with the
    /// evented path: `pool` readiness-loop threads, each owning an epoll
    /// instance and a slab of connections, with per-connection reply
    /// coalescing and slow-reader backpressure (see [`EventedIoOptions`]).
    /// `pool` overrides [`ClusterConfig::client_io_threads`] and is
    /// clamped to at least 1. The protocol pipeline is unaffected; on
    /// platforms without epoll the pool degrades to the threaded loop.
    ///
    /// [`ClusterConfig::client_io_threads`]: smr_types::ClusterConfig::client_io_threads
    pub fn with_evented_client_io(mut self, pool: usize, opts: EventedIoOptions) -> Self {
        self.client_io_mode = ClientIoMode::Evented {
            pool: pool.max(1),
            opts,
        };
        self
    }

    /// Uses an existing metrics registry (optional).
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Toggles the slot-lifecycle latency breakdown (optional; default
    /// on). When off, batches carry zero stamps and no stage histogram
    /// is touched, so the pipeline's hot-path overhead is one branch per
    /// stage boundary.
    pub fn with_stage_metrics(mut self, enabled: bool) -> Self {
        self.stage_metrics = enabled;
        self
    }

    /// Periodically writes the full metrics snapshot
    /// ([`Replica::metrics_json`]) to `path` (optional). Each write goes
    /// to a temp file and renames into place, so readers never observe a
    /// torn snapshot; a final dump is written at shutdown. `period` is
    /// clamped to at least 10ms.
    pub fn with_metrics_dump(mut self, path: impl Into<PathBuf>, period: Duration) -> Self {
        self.metrics_dump = Some((path.into(), period.max(Duration::from_millis(10))));
        self
    }

    /// Samples every pipeline queue's depth at `period` into Table
    /// I-style mean ± std-dev statistics (optional; off by default — the
    /// exact high-watermark and instantaneous depth are always
    /// maintained). `period` is clamped to at least 1ms.
    pub fn with_queue_sampler(mut self, period: Duration) -> Self {
        self.queue_sampler = Some(period.max(Duration::from_millis(1)));
        self
    }

    /// Overrides the reply cache (optional; defaults to a
    /// [`ShardedReplyCache`] with the configured shard count).
    pub fn with_reply_cache(mut self, cache: Arc<dyn ReplyCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Deprecated alias for [`with_service`](ReplicaBuilder::with_service).
    #[deprecated(since = "0.7.0", note = "use with_service")]
    pub fn service(self, service: Box<dyn Service>) -> Self {
        self.with_service(service)
    }

    /// Deprecated alias for
    /// [`with_parallel_service`](ReplicaBuilder::with_parallel_service).
    #[deprecated(since = "0.7.0", note = "use with_parallel_service")]
    pub fn parallel_service(self, service: Arc<dyn ConflictAwareService>, workers: usize) -> Self {
        self.with_parallel_service(service, workers)
    }

    /// Deprecated alias for [`with_network`](ReplicaBuilder::with_network).
    #[deprecated(since = "0.7.0", note = "use with_network")]
    pub fn network(self, network: Arc<dyn ReplicaNetwork>) -> Self {
        self.with_network(network)
    }

    /// Deprecated alias for
    /// [`with_client_listener`](ReplicaBuilder::with_client_listener).
    #[deprecated(since = "0.7.0", note = "use with_client_listener")]
    pub fn client_listener(self, listener: Box<dyn ClientListener>) -> Self {
        self.with_client_listener(listener)
    }

    /// Deprecated alias for [`with_metrics`](ReplicaBuilder::with_metrics).
    #[deprecated(since = "0.7.0", note = "use with_metrics")]
    pub fn metrics(self, metrics: MetricsRegistry) -> Self {
        self.with_metrics(metrics)
    }

    /// Deprecated alias for
    /// [`with_reply_cache`](ReplicaBuilder::with_reply_cache).
    #[deprecated(since = "0.7.0", note = "use with_reply_cache")]
    pub fn reply_cache(self, cache: Arc<dyn ReplyCache>) -> Self {
        self.with_reply_cache(cache)
    }

    /// Spawns every thread of the architecture and returns the handle.
    ///
    /// When durability is configured, recovery runs first, before any
    /// thread starts: the newest valid snapshot on disk is restored into
    /// the service, the durable log tail beyond it is replayed, and a
    /// fresh snapshot is written at the recovered frontier (rotating the
    /// log so the next recovery starts there).
    ///
    /// # Errors
    ///
    /// Returns [`SmrError::Config`] if a required component is missing,
    /// `me` is not part of `config`, durability is requested for a
    /// service that cannot snapshot, or recovery from the durable
    /// directory fails.
    pub fn start(self) -> Result<Replica, SmrError> {
        if !self.config.contains(self.me) {
            return Err(ConfigError::invalid("replica id outside cluster").into());
        }
        let mut service = self
            .service
            .ok_or_else(|| ConfigError::invalid("service is required"))?;
        let network = self
            .network
            .ok_or_else(|| ConfigError::invalid("network is required"))?;
        let listener = self
            .listener
            .ok_or_else(|| ConfigError::invalid("client listener is required"))?;
        let metrics = self.metrics.unwrap_or_default();
        let cache = self
            .cache
            .unwrap_or_else(|| Arc::new(ShardedReplyCache::new(self.config.reply_cache_shards())));

        let snapshot_capable = service.snapshot_capable();
        if self.durability.is_some() && !snapshot_capable {
            return Err(ConfigError::invalid(
                "durability requires a snapshot-capable service \
                 (with_snapshot_service or with_parallel_snapshot_service)",
            )
            .into());
        }
        if self.compaction == Some(CompactionPolicy::SnapshotDriven) && !snapshot_capable {
            return Err(ConfigError::invalid(
                "snapshot-driven compaction requires a snapshot-capable service",
            )
            .into());
        }
        let compaction = self.compaction.unwrap_or(if snapshot_capable {
            CompactionPolicy::SnapshotDriven
        } else {
            CompactionPolicy::KeepSlots(4096)
        });

        // Crash recovery, strictly before any thread spawns: the service
        // is rebuilt from disk while it is still exclusively ours.
        let mut rig = None;
        let mut recovered_blob: Option<Arc<SnapshotBlob>> = None;
        if snapshot_capable {
            let mut r = SnapshotRig {
                storage: None,
                watermark: Slot::ZERO,
                last_snapshot: Slot::ZERO,
                every: self.snapshot_every,
            };
            if let Some(dir) = &self.durability {
                recovered_blob = recover(dir, &mut service, &cache, &mut r)?;
            }
            rig = Some(r);
        }

        let config = self.config;
        let me = self.me;
        let n = config.n();
        let evented_opts = match &self.client_io_mode {
            ClientIoMode::Threaded => None,
            ClientIoMode::Evented { opts, .. } => Some(opts.clone()),
        };
        let k = match &self.client_io_mode {
            ClientIoMode::Threaded => config.client_io_threads(),
            ClientIoMode::Evented { pool, .. } => *pool,
        };
        let stage = StageMetrics::new(&metrics, self.stage_metrics);
        // A named counter rather than a free-floating one, so the
        // metrics export picks it up with everything else.
        let send_drops = metrics.counter("net.send_drops");
        let ctx = Arc::new(Ctx {
            me,
            shared: Arc::new(SharedState::new(n)),
            cache,
            metrics,
            queues: QueueRegistry::new(),
            stage,
            shutdown: AtomicBool::new(false),
            request_q: BoundedQueue::new("RequestQueue", config.request_queue_capacity()),
            proposal_q: BoundedQueue::new("ProposalQueue", config.proposal_queue_capacity()),
            dispatcher_q: BoundedQueue::new("DispatcherQueue", config.dispatcher_queue_capacity()),
            decision_q: BoundedQueue::new("DecisionQueue", config.decision_queue_capacity()),
            send_qs: (0..n)
                .map(|p| BoundedQueue::new(format!("SendQueue-{p}"), config.send_queue_capacity()))
                .collect(),
            reply_qs: (0..k)
                .map(|i| {
                    BoundedQueue::new(format!("ReplyQueue-{i}"), config.reply_queue_capacity())
                })
                .collect(),
            intake_qs: (0..k)
                .map(|i| BoundedQueue::new(format!("ConnIntake-{i}"), 1024))
                .collect(),
            io_wakers: (0..k).map(|_| IoWaker::empty()).collect(),
            network,
            timers: TimerQueue::new(),
            retransmits: Mutex::new(HashMap::new()),
            send_drops,
            snapshots: SnapshotStore::new(),
            snapshot_capable,
            compaction,
            config,
        });
        // Register every pipeline queue for depth/watermark export
        // (Table I). The peer's own SendQueue slot is unused, so skip it.
        ctx.queues.register(ctx.request_q.probe());
        ctx.queues.register(ctx.proposal_q.probe());
        ctx.queues.register(ctx.dispatcher_q.probe());
        ctx.queues.register(ctx.decision_q.probe());
        for (p, q) in ctx.send_qs.iter().enumerate() {
            if p != me.index() {
                ctx.queues.register(q.probe());
            }
        }
        for q in &ctx.reply_qs {
            ctx.queues.register(q.probe());
        }
        let sampler = self
            .queue_sampler
            .map(|period| ctx.queues.start_sampler(period));
        // Publish the recovered snapshot before any thread starts, so
        // the Protocol thread compacts from it and peers can fetch it
        // immediately.
        if let Some(blob) = recovered_blob {
            ctx.snapshots.publish(blob);
        }

        let mut threads = Vec::new();
        let spawn = |name: String, f: Box<dyn FnOnce() + Send>| -> JoinHandle<()> {
            std::thread::Builder::new()
                .name(name)
                .spawn(f)
                .expect("spawn replica thread")
        };

        // ClientIO pool + acceptor (§V-A) — threaded or evented per the
        // builder; the rest of the pipeline is identical either way.
        for i in 0..k {
            let ctx2 = Arc::clone(&ctx);
            threads.push(spawn(
                format!("ClientIO-{i}"),
                match &evented_opts {
                    Some(opts) => {
                        let opts = opts.clone();
                        Box::new(move || evented::run_evented_client_io(&ctx2, i, &opts))
                    }
                    None => Box::new(move || client_io::run_client_io(&ctx2, i)),
                },
            ));
        }
        {
            let ctx2 = Arc::clone(&ctx);
            threads.push(spawn(
                "ClientAcceptor".into(),
                if evented_opts.is_some() {
                    Box::new(move || evented::run_evented_acceptor(&ctx2, listener))
                } else {
                    Box::new(move || client_io::run_acceptor(&ctx2, listener))
                },
            ));
        }
        // ReplicaIO: one sender + one receiver per peer (§V-B).
        for peer in ctx.config.peers(me).collect::<Vec<_>>() {
            let ctx2 = Arc::clone(&ctx);
            threads.push(spawn(
                format!("ReplicaIOSnd-{}", peer.0),
                Box::new(move || replica_io::run_sender(&ctx2, peer)),
            ));
            let ctx2 = Arc::clone(&ctx);
            threads.push(spawn(
                format!("ReplicaIORcv-{}", peer.0),
                Box::new(move || replica_io::run_receiver(&ctx2, peer)),
            ));
        }
        // ReplicationCore threads (§V-C).
        {
            let ctx2 = Arc::clone(&ctx);
            threads.push(spawn(
                "Batcher".into(),
                Box::new(move || core_threads::run_batcher(&ctx2)),
            ));
        }
        {
            let ctx2 = Arc::clone(&ctx);
            threads.push(spawn(
                "Protocol".into(),
                Box::new(move || core_threads::run_protocol(&ctx2)),
            ));
        }
        {
            let ctx2 = Arc::clone(&ctx);
            threads.push(spawn(
                "FailureDetector".into(),
                Box::new(move || core_threads::run_failure_detector(&ctx2)),
            ));
        }
        {
            let ctx2 = Arc::clone(&ctx);
            threads.push(spawn(
                "Retransmitter".into(),
                Box::new(move || core_threads::run_retransmitter(&ctx2)),
            ));
        }
        // ServiceManager (§V-D) — named "Replica" in the paper's profiles.
        {
            let ctx2 = Arc::clone(&ctx);
            threads.push(spawn(
                "Replica".into(),
                match service {
                    ServiceMode::Sequential(service) => {
                        Box::new(move || service_manager::run_service_manager(&ctx2, service))
                    }
                    ServiceMode::SequentialSnapshot(service) => {
                        let rig = rig.take().expect("rig exists for snapshot-capable mode");
                        Box::new(move || {
                            service_manager::run_durable_service_manager(&ctx2, service, rig)
                        })
                    }
                    ServiceMode::Parallel {
                        service,
                        workers,
                        snapshot: Some(ops),
                    } => {
                        let rig = rig.take().expect("rig exists for snapshot-capable mode");
                        Box::new(move || {
                            service_manager::run_durable_parallel_service_manager(
                                &ctx2, service, workers, ops, rig,
                            )
                        })
                    }
                    ServiceMode::Parallel {
                        service,
                        workers,
                        snapshot: None,
                    } => Box::new(move || {
                        service_manager::run_parallel_service_manager(&ctx2, service, workers)
                    }),
                },
            ));
        }

        // MetricsDump (opt-in): periodic JSON snapshots of the whole
        // observability surface, plus a final dump at shutdown.
        if let Some((path, period)) = self.metrics_dump {
            let ctx2 = Arc::clone(&ctx);
            threads.push(spawn(
                "MetricsDump".into(),
                Box::new(move || run_metrics_dump(&ctx2, &path, period)),
            ));
        }

        Ok(Replica {
            ctx,
            sampler,
            threads: Some(threads),
        })
    }
}

/// Assembles the full metrics snapshot of a running replica.
fn build_snapshot(ctx: &Ctx) -> MetricsSnapshot {
    MetricsSnapshot {
        replica: u64::from(ctx.me.0),
        uptime_ns: ctx.shared.now_ns(),
        threads: ctx.metrics.snapshot().threads,
        counters: ctx.metrics.counter_values(),
        histograms: ctx.metrics.histogram_summaries(),
        queues: ctx.queues.snapshots(),
    }
}

/// The MetricsDump thread: every `period`, serializes the snapshot and
/// atomically replaces `path` (temp file + rename, so a concurrent
/// reader never sees a torn document). Writes one final snapshot on
/// shutdown before exiting.
fn run_metrics_dump(ctx: &Ctx, path: &std::path::Path, period: Duration) {
    let handle = ctx.metrics.register_thread("MetricsDump");
    let tmp = path.with_extension("json.tmp");
    let dump = |ctx: &Ctx| {
        let doc = build_snapshot(ctx).to_json();
        if std::fs::write(&tmp, &doc).is_ok() {
            let _ = std::fs::rename(&tmp, path);
        }
    };
    loop {
        // Sleep in short slices so shutdown is prompt even with long
        // periods.
        let mut slept = Duration::ZERO;
        while slept < period && !ctx.is_shutdown() {
            let slice = (period - slept).min(Duration::from_millis(25));
            let _g = handle.enter(ThreadState::Other);
            std::thread::sleep(slice);
            slept += slice;
        }
        dump(ctx);
        if ctx.is_shutdown() {
            return;
        }
    }
}

/// Restores `service` from the durable directory: newest valid snapshot
/// first, then replay of the log tail through the reply cache (so
/// post-restart client retries still dedup). Finishes by writing a fresh
/// snapshot at the recovered frontier — rotating the log so the next
/// recovery starts there — and returns the snapshot to publish.
fn recover(
    dir: &std::path::Path,
    service: &mut ServiceMode,
    cache: &Arc<dyn ReplyCache>,
    rig: &mut SnapshotRig,
) -> Result<Option<Arc<SnapshotBlob>>, SmrError> {
    let bad = |e: String| ConfigError::invalid(format!("durability: {e}"));
    let (mut storage, recovered) = Storage::open(dir).map_err(|e| bad(e.to_string()))?;
    let mut blob = None;
    if let Some(snap) = recovered.snapshot {
        match service {
            ServiceMode::SequentialSnapshot(s) => {
                s.restore(&snap.state).map_err(|e| bad(e.to_string()))?;
                if s.state_hash() != snap.state_hash {
                    return Err(bad("snapshot hash mismatch after restore".into()).into());
                }
            }
            ServiceMode::Parallel {
                snapshot: Some(ops),
                ..
            } => {
                ops.restore(&snap.state).map_err(|e| bad(e.to_string()))?;
                if ops.state_hash() != snap.state_hash {
                    return Err(bad("snapshot hash mismatch after restore".into()).into());
                }
            }
            _ => unreachable!("durability requires a snapshot-capable service"),
        }
        rig.watermark = snap.applied_upto;
        rig.last_snapshot = snap.applied_upto;
        blob = Some(Arc::new(snap));
    }
    for (slot, batch) in recovered.tail {
        for request in &batch.requests {
            if let ExecuteOutcome::Fresh = cache.check_execute(request.id) {
                let reply = match service {
                    ServiceMode::SequentialSnapshot(s) => s.execute(&request.payload),
                    ServiceMode::Parallel { service, .. } => service.execute(&request.payload),
                    ServiceMode::Sequential(_) => {
                        unreachable!("durability requires a snapshot-capable service")
                    }
                };
                cache.record(request.id, reply);
            }
        }
        rig.watermark = slot.next();
    }
    if rig.watermark > rig.last_snapshot {
        // Replay advanced past the snapshot on disk: checkpoint here so
        // recovery work is not repeated (and the old log is pruned).
        let (state_hash, state) = match service {
            ServiceMode::SequentialSnapshot(s) => (s.state_hash(), s.snapshot()),
            ServiceMode::Parallel {
                snapshot: Some(ops),
                ..
            } => (ops.state_hash(), ops.snapshot()),
            _ => unreachable!("durability requires a snapshot-capable service"),
        };
        let fresh = SnapshotBlob {
            applied_upto: rig.watermark,
            state_hash,
            state,
        };
        storage
            .install_snapshot(&fresh)
            .map_err(|e| bad(e.to_string()))?;
        rig.last_snapshot = rig.watermark;
        blob = Some(Arc::new(fresh));
    }
    rig.storage = Some(storage);
    Ok(blob)
}

/// A running replica: the full thread ensemble of Fig. 3.
///
/// Dropping the handle shuts the replica down and joins every thread.
pub struct Replica {
    ctx: Arc<Ctx>,
    sampler: Option<DepthSampler>,
    threads: Option<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica").field("id", &self.ctx.me).finish()
    }
}

impl Replica {
    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.ctx.me
    }

    /// The lock-free shared state (view, leader, frontier).
    pub fn shared(&self) -> &SharedState {
        &self.ctx.shared
    }

    /// The metrics registry with every thread's profile.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.ctx.metrics
    }

    /// Instantaneous sizes of (RequestQueue, ProposalQueue,
    /// DispatcherQueue) — the Table I quantities.
    pub fn queue_lengths(&self) -> (usize, usize, usize) {
        (
            self.ctx.request_q.len(),
            self.ctx.proposal_q.len(),
            self.ctx.dispatcher_q.len(),
        )
    }

    /// Frames dropped on full SendQueues so far.
    pub fn send_drops(&self) -> u64 {
        self.ctx.send_drops.get()
    }

    /// A point-in-time snapshot of the replica's full observability
    /// surface: thread profiles, named counters, per-stage latency
    /// histograms, and per-queue depth/watermark statistics.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        build_snapshot(&self.ctx)
    }

    /// [`Replica::metrics_snapshot`] serialized as a self-contained JSON
    /// document (see [`smr_metrics::MetricsSnapshot::to_json`] for the
    /// schema). Parse it back with [`smr_metrics::json::JsonValue`].
    pub fn metrics_json(&self) -> String {
        self.metrics_snapshot().to_json()
    }

    /// Watermark of the newest snapshot this replica has published —
    /// every slot below it has been folded into a snapshot (and, under
    /// [`CompactionPolicy::SnapshotDriven`], compacted out of the
    /// in-memory log). `Slot::ZERO` when no snapshot exists yet or the
    /// service cannot snapshot.
    pub fn snapshot_watermark(&self) -> Slot {
        self.ctx.snapshots.watermark()
    }

    /// The newest snapshot this replica can serve to lagging peers, if
    /// any.
    pub fn latest_snapshot(&self) -> Option<Arc<SnapshotBlob>> {
        self.ctx.snapshots.latest()
    }

    /// Stops every thread and joins them.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let Some(threads) = self.threads.take() else {
            return;
        };
        drop(self.sampler.take()); // stop sampling before queues close
        self.ctx.shutdown.store(true, Ordering::Release);
        self.ctx.request_q.close();
        self.ctx.proposal_q.close();
        self.ctx.dispatcher_q.close();
        self.ctx.decision_q.close();
        for q in &self.ctx.send_qs {
            q.close();
        }
        for q in &self.ctx.reply_qs {
            q.close();
        }
        for q in &self.ctx.intake_qs {
            q.close();
        }
        self.ctx.timers.close();
        self.ctx.network.shutdown();
        // Kick evented ClientIO threads out of epoll_wait so they
        // observe the flag now rather than at their next timeout.
        for w in &self.ctx.io_wakers {
            w.ring();
        }
        for t in threads {
            let _ = t.join();
        }
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}
