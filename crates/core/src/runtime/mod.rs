//! The replica runtime: thread spawning, wiring, and lifecycle.

mod client_io;
mod core_threads;
mod replica_io;
mod service_manager;

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use smr_metrics::{Counter, MetricsRegistry};
use smr_net::{ClientConn, ClientListener, ReplicaNetwork};
use smr_paxos::{RetransmitKey, Target};
use smr_queue::{BoundedQueue, CancelHandle, TimerQueue};
use smr_types::{ClusterConfig, ReplicaId, Slot, SmrError};
use smr_wire::{Batch, ProtocolMsg, Reply, Request};

use crate::reply_cache::{ReplyCache, ShardedReplyCache};
use crate::service::{ConflictAwareService, Service};
use crate::shared::SharedState;

/// How the ServiceManager executes decided commands.
enum ServiceMode {
    /// One thread, strict log order (the paper's architecture; default).
    Sequential(Box<dyn Service>),
    /// Dependency-aware parallel execution on a worker pool (see
    /// [`crate::ParallelExecutor`]).
    Parallel {
        service: Arc<dyn ConflictAwareService>,
        workers: usize,
    },
}

/// A message awaiting retransmission (§V-C4).
#[derive(Debug, Clone)]
pub(crate) struct RetransmitEntry {
    pub key: RetransmitKey,
    pub to: Target,
    pub msg: ProtocolMsg,
    pub attempt: u32,
}

/// Everything the replica's threads share.
pub(crate) struct Ctx {
    pub me: ReplicaId,
    pub config: ClusterConfig,
    pub shared: Arc<SharedState>,
    pub cache: Arc<dyn ReplyCache>,
    pub metrics: MetricsRegistry,
    pub shutdown: AtomicBool,
    pub request_q: BoundedQueue<Request>,
    pub proposal_q: BoundedQueue<Batch>,
    pub dispatcher_q: BoundedQueue<smr_paxos::Event>,
    pub decision_q: BoundedQueue<(Slot, Batch)>,
    /// Indexed by peer replica id (own slot unused).
    pub send_qs: Vec<BoundedQueue<ProtocolMsg>>,
    /// Indexed by ClientIO thread.
    pub reply_qs: Vec<BoundedQueue<(u64, Reply)>>,
    /// Indexed by ClientIO thread: newly accepted connections.
    pub intake_qs: Vec<BoundedQueue<Box<dyn ClientConn>>>,
    pub network: Arc<dyn ReplicaNetwork>,
    pub timers: TimerQueue<RetransmitEntry>,
    pub retransmits: Mutex<HashMap<RetransmitKey, CancelHandle>>,
    /// Frames dropped because a SendQueue was full (the non-blocking
    /// escape hatch of §V-B; retransmission recovers them).
    pub send_drops: Counter,
}

impl Ctx {
    /// Enqueues `msg` for each target peer on its SendQueue without
    /// blocking; full queues drop (the Retransmitter will recover).
    pub fn send(&self, to: Target, msg: &ProtocolMsg) {
        match to {
            Target::All => {
                for peer in self.config.peers(self.me) {
                    if self.send_qs[peer.index()].try_push(msg.clone()).is_err() {
                        self.send_drops.inc();
                    }
                }
            }
            Target::One(peer) => {
                if peer != self.me
                    && self.config.contains(peer)
                    && self.send_qs[peer.index()].try_push(msg.clone()).is_err()
                {
                    self.send_drops.inc();
                }
            }
        }
    }

    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }
}

/// Builder for a [`Replica`] ([C-BUILDER]).
pub struct ReplicaBuilder {
    me: ReplicaId,
    config: ClusterConfig,
    service: Option<ServiceMode>,
    network: Option<Arc<dyn ReplicaNetwork>>,
    listener: Option<Box<dyn ClientListener>>,
    metrics: Option<MetricsRegistry>,
    cache: Option<Arc<dyn ReplyCache>>,
}

impl ReplicaBuilder {
    /// Starts building replica `me` of `config`.
    pub fn new(me: ReplicaId, config: ClusterConfig) -> Self {
        ReplicaBuilder {
            me,
            config,
            service: None,
            network: None,
            listener: None,
            metrics: None,
            cache: None,
        }
    }

    /// Sets the replicated service, executed sequentially in decided-log
    /// order (required unless [`ReplicaBuilder::parallel_service`] is
    /// used).
    pub fn service(mut self, service: Box<dyn Service>) -> Self {
        self.service = Some(ServiceMode::Sequential(service));
        self
    }

    /// Sets the replicated service in dependency-aware parallel mode:
    /// decided commands that do not conflict (per the service's
    /// [`ConflictAwareService::conflict_keys`] classification) execute
    /// concurrently on a pool of `workers` threads, conflicting ones in
    /// decided order. Replaces any service set earlier; `workers` is
    /// clamped to at least 1.
    pub fn parallel_service(
        mut self,
        service: Arc<dyn ConflictAwareService>,
        workers: usize,
    ) -> Self {
        self.service = Some(ServiceMode::Parallel {
            service,
            workers: workers.max(1),
        });
        self
    }

    /// Sets the replica-to-replica network (required).
    pub fn network(mut self, network: Arc<dyn ReplicaNetwork>) -> Self {
        self.network = Some(network);
        self
    }

    /// Sets the client listener (required).
    pub fn client_listener(mut self, listener: Box<dyn ClientListener>) -> Self {
        self.listener = Some(listener);
        self
    }

    /// Uses an existing metrics registry (optional).
    pub fn metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Overrides the reply cache (optional; defaults to a
    /// [`ShardedReplyCache`] with the configured shard count).
    pub fn reply_cache(mut self, cache: Arc<dyn ReplyCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Spawns every thread of the architecture and returns the handle.
    ///
    /// # Errors
    ///
    /// Returns [`SmrError::Config`] if a required component is missing or
    /// `me` is not part of `config`.
    pub fn start(self) -> Result<Replica, SmrError> {
        use smr_types::ConfigError;
        if !self.config.contains(self.me) {
            return Err(ConfigError::invalid("replica id outside cluster").into());
        }
        let service = self
            .service
            .ok_or_else(|| ConfigError::invalid("service is required"))?;
        let network = self
            .network
            .ok_or_else(|| ConfigError::invalid("network is required"))?;
        let listener = self
            .listener
            .ok_or_else(|| ConfigError::invalid("client listener is required"))?;
        let metrics = self.metrics.unwrap_or_default();
        let cache = self
            .cache
            .unwrap_or_else(|| Arc::new(ShardedReplyCache::new(self.config.reply_cache_shards())));

        let config = self.config;
        let me = self.me;
        let n = config.n();
        let k = config.client_io_threads();
        let ctx = Arc::new(Ctx {
            me,
            shared: Arc::new(SharedState::new(n)),
            cache,
            metrics,
            shutdown: AtomicBool::new(false),
            request_q: BoundedQueue::new("RequestQueue", config.request_queue_capacity()),
            proposal_q: BoundedQueue::new("ProposalQueue", config.proposal_queue_capacity()),
            dispatcher_q: BoundedQueue::new("DispatcherQueue", config.dispatcher_queue_capacity()),
            decision_q: BoundedQueue::new("DecisionQueue", config.decision_queue_capacity()),
            send_qs: (0..n)
                .map(|p| BoundedQueue::new(format!("SendQueue-{p}"), config.send_queue_capacity()))
                .collect(),
            reply_qs: (0..k)
                .map(|i| BoundedQueue::new(format!("ReplyQueue-{i}"), 4096))
                .collect(),
            intake_qs: (0..k)
                .map(|i| BoundedQueue::new(format!("ConnIntake-{i}"), 1024))
                .collect(),
            network,
            timers: TimerQueue::new(),
            retransmits: Mutex::new(HashMap::new()),
            send_drops: Counter::new(),
            config,
        });

        let mut threads = Vec::new();
        let spawn = |name: String, f: Box<dyn FnOnce() + Send>| -> JoinHandle<()> {
            std::thread::Builder::new()
                .name(name)
                .spawn(f)
                .expect("spawn replica thread")
        };

        // ClientIO pool + acceptor (§V-A).
        for i in 0..k {
            let ctx2 = Arc::clone(&ctx);
            threads.push(spawn(
                format!("ClientIO-{i}"),
                Box::new(move || client_io::run_client_io(&ctx2, i)),
            ));
        }
        {
            let ctx2 = Arc::clone(&ctx);
            threads.push(spawn(
                "ClientAcceptor".into(),
                Box::new(move || client_io::run_acceptor(&ctx2, listener)),
            ));
        }
        // ReplicaIO: one sender + one receiver per peer (§V-B).
        for peer in ctx.config.peers(me).collect::<Vec<_>>() {
            let ctx2 = Arc::clone(&ctx);
            threads.push(spawn(
                format!("ReplicaIOSnd-{}", peer.0),
                Box::new(move || replica_io::run_sender(&ctx2, peer)),
            ));
            let ctx2 = Arc::clone(&ctx);
            threads.push(spawn(
                format!("ReplicaIORcv-{}", peer.0),
                Box::new(move || replica_io::run_receiver(&ctx2, peer)),
            ));
        }
        // ReplicationCore threads (§V-C).
        {
            let ctx2 = Arc::clone(&ctx);
            threads.push(spawn(
                "Batcher".into(),
                Box::new(move || core_threads::run_batcher(&ctx2)),
            ));
        }
        {
            let ctx2 = Arc::clone(&ctx);
            threads.push(spawn(
                "Protocol".into(),
                Box::new(move || core_threads::run_protocol(&ctx2)),
            ));
        }
        {
            let ctx2 = Arc::clone(&ctx);
            threads.push(spawn(
                "FailureDetector".into(),
                Box::new(move || core_threads::run_failure_detector(&ctx2)),
            ));
        }
        {
            let ctx2 = Arc::clone(&ctx);
            threads.push(spawn(
                "Retransmitter".into(),
                Box::new(move || core_threads::run_retransmitter(&ctx2)),
            ));
        }
        // ServiceManager (§V-D) — named "Replica" in the paper's profiles.
        {
            let ctx2 = Arc::clone(&ctx);
            threads.push(spawn(
                "Replica".into(),
                match service {
                    ServiceMode::Sequential(service) => {
                        Box::new(move || service_manager::run_service_manager(&ctx2, service))
                    }
                    ServiceMode::Parallel { service, workers } => Box::new(move || {
                        service_manager::run_parallel_service_manager(&ctx2, service, workers)
                    }),
                },
            ));
        }

        Ok(Replica {
            ctx,
            threads: Some(threads),
        })
    }
}

/// A running replica: the full thread ensemble of Fig. 3.
///
/// Dropping the handle shuts the replica down and joins every thread.
pub struct Replica {
    ctx: Arc<Ctx>,
    threads: Option<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica").field("id", &self.ctx.me).finish()
    }
}

impl Replica {
    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.ctx.me
    }

    /// The lock-free shared state (view, leader, frontier).
    pub fn shared(&self) -> &SharedState {
        &self.ctx.shared
    }

    /// The metrics registry with every thread's profile.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.ctx.metrics
    }

    /// Instantaneous sizes of (RequestQueue, ProposalQueue,
    /// DispatcherQueue) — the Table I quantities.
    pub fn queue_lengths(&self) -> (usize, usize, usize) {
        (
            self.ctx.request_q.len(),
            self.ctx.proposal_q.len(),
            self.ctx.dispatcher_q.len(),
        )
    }

    /// Frames dropped on full SendQueues so far.
    pub fn send_drops(&self) -> u64 {
        self.ctx.send_drops.get()
    }

    /// Stops every thread and joins them.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let Some(threads) = self.threads.take() else {
            return;
        };
        self.ctx.shutdown.store(true, Ordering::Release);
        self.ctx.request_q.close();
        self.ctx.proposal_q.close();
        self.ctx.dispatcher_q.close();
        self.ctx.decision_q.close();
        for q in &self.ctx.send_qs {
            q.close();
        }
        for q in &self.ctx.reply_qs {
            q.close();
        }
        for q in &self.ctx.intake_qs {
            q.close();
        }
        self.ctx.timers.close();
        self.ctx.network.shutdown();
        for t in threads {
            let _ = t.join();
        }
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}
