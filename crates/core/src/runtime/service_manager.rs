//! The ServiceManager module (§V-D): the "Replica" thread of the paper's
//! per-thread profiles, in both execution modes (sequential by default,
//! dependency-aware parallel opt-in), with optional durability: decided
//! batches are appended to the write-ahead log before execution, and
//! periodic snapshots bound both recovery time and log growth.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use smr_metrics::ThreadHandle;
use smr_storage::Storage;
use smr_types::{RequestId, Slot, SnapshotBlob};
use smr_wire::{Batch, Reply};

use crate::exec::ParallelExecutor;
use crate::reply_cache::ExecuteOutcome;
use crate::service::{ConflictAwareService, RecoverableService, Service, SharedSnapshotOps};

use super::stage::StageClock;
use super::{Ctx, Decision};

/// How long the parallel manager waits for worker completions before
/// re-checking the DecisionQueue for new work.
const COMPLETION_POLL: Duration = Duration::from_millis(1);

/// The durability/snapshot harness a snapshot-capable ServiceManager
/// carries: the (optional) on-disk storage, the apply watermark (next
/// slot to execute), and the snapshot cadence.
pub(crate) struct SnapshotRig {
    /// On-disk log + snapshots; `None` when the service is
    /// snapshot-capable but durability was not requested (snapshots then
    /// live only in memory, for transfer and compaction).
    pub storage: Option<Storage>,
    /// Next slot this replica will apply (everything below is covered by
    /// executed batches or an installed snapshot).
    pub watermark: Slot,
    /// Watermark of the most recent snapshot taken or installed.
    pub last_snapshot: Slot,
    /// Take a snapshot every this many applied slots.
    pub every: u64,
}

impl SnapshotRig {
    /// Whether enough slots have been applied since the last snapshot.
    fn snapshot_due(&self) -> bool {
        self.watermark.0.saturating_sub(self.last_snapshot.0) >= self.every
    }

    /// Persists (when durable) and publishes `blob`, advancing
    /// `last_snapshot`. Returns `false` on a storage error, which is
    /// fatal for the manager thread.
    fn commit_snapshot(&mut self, ctx: &Ctx, blob: SnapshotBlob) -> bool {
        let blob = Arc::new(blob);
        if let Some(storage) = self.storage.as_mut() {
            if let Err(e) = storage.install_snapshot(&blob) {
                eprintln!("smr-core: replica {}: snapshot write failed: {e}", ctx.me.0);
                return false;
            }
        }
        self.last_snapshot = blob.applied_upto;
        ctx.snapshots.publish(blob);
        true
    }
}

/// Executes decided batches in log order, updates the reply cache, and
/// hands replies to the ClientIO threads owning the clients' connections.
/// The thread parks on the first decision (so an idle replica costs
/// nothing; `close` wakes it for shutdown), then drains whatever else is
/// queued in one lock acquisition. Replies are grouped per ClientIO
/// thread and flushed after every decided batch, so reply latency is
/// bounded by one batch's execution no matter how deep the drained
/// backlog is.
pub(crate) fn run_service_manager(ctx: &Ctx, mut service: Box<dyn Service>) {
    let handle = ctx.metrics.register_thread("Replica");
    let mut decisions: Vec<Decision> = Vec::new();
    let mut replies: Vec<(RequestId, Option<Vec<u8>>)> = Vec::new();
    let mut outboxes: Vec<Vec<(u64, Reply)>> =
        (0..ctx.reply_qs.len()).map(|_| Vec::new()).collect();
    loop {
        match ctx.decision_q.pop_with(&handle) {
            Ok(first) => decisions.push(first),
            Err(_) => return,
        }
        // Batch up the backlog behind the first decision; an error here
        // (empty or closed) still leaves that decision to execute.
        let _ = ctx.decision_q.try_pop_all(&mut decisions);
        for decision in decisions.drain(..) {
            let Decision::Apply(_slot, batch, clock) = decision else {
                // Snapshot installs are gated out by the Protocol thread
                // for services that cannot restore one.
                continue;
            };
            execute_batch(ctx, service.as_mut(), batch, &mut replies);
            let executed_ns = clock.map_or(0, |_| ctx.shared.now_ns());
            if !route_replies(ctx, &handle, &mut replies, &mut outboxes) {
                return;
            }
            if let Some(clock) = clock {
                ctx.stage.record_executed(&clock, executed_ns);
                ctx.stage
                    .record_replied(&clock, executed_ns, ctx.shared.now_ns());
            }
        }
    }
}

/// The snapshot-capable sequential "Replica" thread: the same log-order
/// execution as [`run_service_manager`] plus the durability protocol —
/// append to the WAL *before* executing, sync once per drained burst,
/// snapshot every `rig.every` applied slots, and install snapshots
/// shipped by peers (replacing local state wholesale).
pub(crate) fn run_durable_service_manager(
    ctx: &Ctx,
    mut service: Box<dyn RecoverableService>,
    mut rig: SnapshotRig,
) {
    let handle = ctx.metrics.register_thread("Replica");
    let wal_appended = ctx.metrics.counter("wal.appended_bytes");
    let wal_synced = ctx.metrics.counter("wal.synced_bytes");
    let mut decisions: Vec<Decision> = Vec::new();
    let mut replies: Vec<(RequestId, Option<Vec<u8>>)> = Vec::new();
    let mut outboxes: Vec<Vec<(u64, Reply)>> =
        (0..ctx.reply_qs.len()).map(|_| Vec::new()).collect();
    loop {
        match ctx.decision_q.pop_with(&handle) {
            Ok(first) => decisions.push(first),
            Err(_) => return,
        }
        let _ = ctx.decision_q.try_pop_all(&mut decisions);
        let mut appended = false;
        for decision in decisions.drain(..) {
            match decision {
                Decision::Install(blob) => {
                    if blob.applied_upto <= rig.watermark {
                        continue; // already at or past this state
                    }
                    if let Err(e) = service.restore(&blob.state) {
                        eprintln!("smr-core: replica {}: {e}", ctx.me.0);
                        return;
                    }
                    if service.state_hash() != blob.state_hash {
                        eprintln!(
                            "smr-core: replica {}: snapshot hash mismatch after restore",
                            ctx.me.0
                        );
                        return;
                    }
                    rig.watermark = blob.applied_upto;
                    if !rig.commit_snapshot(ctx, blob) {
                        return;
                    }
                }
                Decision::Apply(slot, batch, clock) => {
                    if slot < rig.watermark {
                        continue; // covered by an installed snapshot
                    }
                    if let Some(storage) = rig.storage.as_mut() {
                        // WAL before execution: a crash after the append
                        // re-executes (dedup'd by slot), never loses.
                        let t0 = ctx.stage.stamp(&ctx.shared);
                        match storage.append(slot, &batch) {
                            Ok(bytes) => wal_appended.add(bytes as u64),
                            Err(e) => {
                                eprintln!("smr-core: replica {}: wal append failed: {e}", ctx.me.0);
                                return;
                            }
                        }
                        ctx.stage
                            .record_wal_append(t0, ctx.stage.stamp(&ctx.shared));
                        appended = true;
                    }
                    execute_batch(ctx, service.as_mut(), batch, &mut replies);
                    rig.watermark = slot.next();
                    let executed_ns = clock.map_or(0, |_| ctx.shared.now_ns());
                    if !route_replies(ctx, &handle, &mut replies, &mut outboxes) {
                        return;
                    }
                    if let Some(clock) = clock {
                        ctx.stage.record_executed(&clock, executed_ns);
                        ctx.stage
                            .record_replied(&clock, executed_ns, ctx.shared.now_ns());
                    }
                }
            }
        }
        if appended {
            if let Some(storage) = rig.storage.as_mut() {
                // Group commit (§V-D): one flush covers the whole burst.
                let t0 = ctx.stage.stamp(&ctx.shared);
                match storage.sync() {
                    Ok(bytes) => wal_synced.add(bytes),
                    Err(e) => {
                        eprintln!("smr-core: replica {}: wal sync failed: {e}", ctx.me.0);
                        return;
                    }
                }
                ctx.stage.record_wal_fsync(t0, ctx.stage.stamp(&ctx.shared));
            }
        }
        if rig.snapshot_due() {
            let blob = SnapshotBlob {
                applied_upto: rig.watermark,
                state_hash: service.state_hash(),
                state: service.snapshot(),
            };
            if !rig.commit_snapshot(ctx, blob) {
                return;
            }
        }
    }
}

/// The parallel-mode "Replica" thread: same inputs and outputs as
/// [`run_service_manager`], but decided commands are fed to a
/// [`ParallelExecutor`] that runs non-conflicting ones concurrently on a
/// worker pool. At-most-once bookkeeping moves into the workers (the
/// executor owns the reply-cache interaction), which is safe because the
/// executor chains same-client commands.
///
/// The loop alternates between two waits: empty executor → park on the
/// DecisionQueue exactly like the sequential path; work in flight →
/// drain the DecisionQueue without blocking and wait briefly for worker
/// completions instead, so new decisions keep feeding the DAG while
/// earlier commands are still executing.
pub(crate) fn run_parallel_service_manager(
    ctx: &Ctx,
    service: Arc<dyn ConflictAwareService>,
    workers: usize,
) {
    let handle = ctx.metrics.register_thread("Replica");
    let mut exec =
        ParallelExecutor::with_reply_cache(service, workers, Some(Arc::clone(&ctx.cache)));
    let mut decisions: Vec<Decision> = Vec::new();
    let mut replies: Vec<(RequestId, Option<Vec<u8>>)> = Vec::new();
    let mut outboxes: Vec<Vec<(u64, Reply)>> =
        (0..ctx.reply_qs.len()).map(|_| Vec::new()).collect();
    let mut clocks = PendingClocks::default();
    loop {
        if exec.pending() == 0 {
            // Idle: park until something is decided (or shutdown).
            match ctx.decision_q.pop_with(&handle) {
                Ok(first) => decisions.push(first),
                Err(_) => return,
            }
        }
        let _ = ctx.decision_q.try_pop_all(&mut decisions);
        for decision in decisions.drain(..) {
            let Decision::Apply(_slot, batch, clock) = decision else {
                continue; // gated out by the Protocol thread (see above)
            };
            clocks.track(&batch, clock);
            for request in batch.requests {
                exec.submit(request);
            }
        }
        if exec.poll_with(&mut replies, COMPLETION_POLL, &handle) > 0 {
            let executed_ns = clocks.note_executed(ctx, &replies);
            if !route_replies(ctx, &handle, &mut replies, &mut outboxes) {
                return;
            }
            clocks.note_replied(ctx, executed_ns);
        }
    }
}

/// The snapshot-capable parallel "Replica" thread: parallel execution
/// with the durability protocol of [`run_durable_service_manager`].
/// Snapshots are only taken (and peer snapshots only installed) at a
/// quiescent point — the executor drained — so the shared service state
/// is a consistent prefix of the decided log.
pub(crate) fn run_durable_parallel_service_manager(
    ctx: &Ctx,
    service: Arc<dyn ConflictAwareService>,
    workers: usize,
    ops: Box<dyn SharedSnapshotOps>,
    mut rig: SnapshotRig,
) {
    let handle = ctx.metrics.register_thread("Replica");
    let wal_appended = ctx.metrics.counter("wal.appended_bytes");
    let wal_synced = ctx.metrics.counter("wal.synced_bytes");
    let mut exec =
        ParallelExecutor::with_reply_cache(service, workers, Some(Arc::clone(&ctx.cache)));
    let mut decisions: Vec<Decision> = Vec::new();
    let mut replies: Vec<(RequestId, Option<Vec<u8>>)> = Vec::new();
    let mut outboxes: Vec<Vec<(u64, Reply)>> =
        (0..ctx.reply_qs.len()).map(|_| Vec::new()).collect();
    let mut clocks = PendingClocks::default();
    loop {
        if exec.pending() == 0 {
            match ctx.decision_q.pop_with(&handle) {
                Ok(first) => decisions.push(first),
                Err(_) => return,
            }
        }
        let _ = ctx.decision_q.try_pop_all(&mut decisions);
        let mut appended = false;
        for decision in decisions.drain(..) {
            match decision {
                Decision::Install(blob) => {
                    if blob.applied_upto <= rig.watermark {
                        continue;
                    }
                    // Quiesce: everything submitted so far must finish
                    // (and its replies flush) before state is replaced.
                    exec.wait_idle(&mut replies);
                    if !route_replies(ctx, &handle, &mut replies, &mut outboxes) {
                        return;
                    }
                    // Batches swallowed by the quiesce go unrecorded.
                    clocks.clear();
                    if let Err(e) = ops.restore(&blob.state) {
                        eprintln!("smr-core: replica {}: {e}", ctx.me.0);
                        return;
                    }
                    if ops.state_hash() != blob.state_hash {
                        eprintln!(
                            "smr-core: replica {}: snapshot hash mismatch after restore",
                            ctx.me.0
                        );
                        return;
                    }
                    rig.watermark = blob.applied_upto;
                    if !rig.commit_snapshot(ctx, blob) {
                        return;
                    }
                }
                Decision::Apply(slot, batch, clock) => {
                    if slot < rig.watermark {
                        continue;
                    }
                    if let Some(storage) = rig.storage.as_mut() {
                        let t0 = ctx.stage.stamp(&ctx.shared);
                        match storage.append(slot, &batch) {
                            Ok(bytes) => wal_appended.add(bytes as u64),
                            Err(e) => {
                                eprintln!("smr-core: replica {}: wal append failed: {e}", ctx.me.0);
                                return;
                            }
                        }
                        ctx.stage
                            .record_wal_append(t0, ctx.stage.stamp(&ctx.shared));
                        appended = true;
                    }
                    clocks.track(&batch, clock);
                    for request in batch.requests {
                        exec.submit(request);
                    }
                    rig.watermark = slot.next();
                }
            }
        }
        if appended {
            if let Some(storage) = rig.storage.as_mut() {
                let t0 = ctx.stage.stamp(&ctx.shared);
                match storage.sync() {
                    Ok(bytes) => wal_synced.add(bytes),
                    Err(e) => {
                        eprintln!("smr-core: replica {}: wal sync failed: {e}", ctx.me.0);
                        return;
                    }
                }
                ctx.stage.record_wal_fsync(t0, ctx.stage.stamp(&ctx.shared));
            }
        }
        if rig.snapshot_due() && exec.pending() == 0 {
            let blob = SnapshotBlob {
                applied_upto: rig.watermark,
                state_hash: ops.state_hash(),
                state: ops.snapshot(),
            };
            if !rig.commit_snapshot(ctx, blob) {
                return;
            }
        }
        if exec.poll_with(&mut replies, COMPLETION_POLL, &handle) > 0 {
            let executed_ns = clocks.note_executed(ctx, &replies);
            if !route_replies(ctx, &handle, &mut replies, &mut outboxes) {
                return;
            }
            clocks.note_replied(ctx, executed_ns);
        }
    }
}

/// Stage-clock bookkeeping for the parallel managers. A batch's clock is
/// keyed by its *last* request's id and recorded when that request's
/// reply surfaces from the worker pool: the closest parallel analogue of
/// "batch executed" (an approximation — workers may reorder
/// non-conflicting requests, so the keyed request is not always the
/// final one to finish; see ARCHITECTURE.md).
#[derive(Default)]
struct PendingClocks {
    by_last: HashMap<RequestId, StageClock>,
    /// Clocks whose batch finished this poll round, awaiting the
    /// reply-enqueue stamp.
    done: Vec<StageClock>,
}

impl PendingClocks {
    /// Starts tracking `batch`'s clock, if it carries one (leaders with
    /// stage metrics on; `None` otherwise, making every later probe a
    /// no-op on the empty map).
    fn track(&mut self, batch: &Batch, clock: Option<StageClock>) {
        if let Some(clock) = clock {
            if let Some(last) = batch.requests.last() {
                self.by_last.insert(last.id, clock);
            }
        }
    }

    /// Records decided → executed for every tracked batch whose keyed
    /// reply is in `replies`; returns the shared "executed" stamp taken
    /// once for the poll round (0 if nothing completed).
    fn note_executed(&mut self, ctx: &Ctx, replies: &[(RequestId, Option<Vec<u8>>)]) -> u64 {
        if self.by_last.is_empty() {
            return 0;
        }
        let mut executed_ns = 0;
        for (id, _) in replies {
            if let Some(clock) = self.by_last.remove(id) {
                if executed_ns == 0 {
                    executed_ns = ctx.shared.now_ns();
                }
                ctx.stage.record_executed(&clock, executed_ns);
                self.done.push(clock);
            }
        }
        executed_ns
    }

    /// Records executed → reply (and end-to-end) for the batches
    /// collected by [`PendingClocks::note_executed`], stamped after the
    /// replies were handed to the ClientIO queues.
    fn note_replied(&mut self, ctx: &Ctx, executed_ns: u64) {
        if self.done.is_empty() {
            return;
        }
        let replied_ns = ctx.shared.now_ns();
        for clock in self.done.drain(..) {
            ctx.stage.record_replied(&clock, executed_ns, replied_ns);
        }
    }

    /// Drops all tracked clocks (quiesce points flush replies without
    /// routing them through the usual probe).
    fn clear(&mut self) {
        self.by_last.clear();
        self.done.clear();
    }
}

/// Executes every request of one decided batch through the reply cache
/// (at-most-once), collecting the reply payloads.
fn execute_batch(
    ctx: &Ctx,
    service: &mut dyn Service,
    batch: Batch,
    replies: &mut Vec<(RequestId, Option<Vec<u8>>)>,
) {
    for request in batch.requests {
        let reply_payload = match ctx.cache.check_execute(request.id) {
            ExecuteOutcome::Fresh => {
                let reply = service.execute(&request.payload);
                ctx.cache.record(request.id, reply.clone());
                Some(reply)
            }
            // Ordered twice (client retry raced the pipeline):
            // do not re-execute; resend the cached reply.
            ExecuteOutcome::Duplicate(cached) => cached,
        };
        replies.push((request.id, reply_payload));
    }
}

/// Routes a burst of executed replies to the ClientIO threads owning the
/// clients' connections: `None` payloads (duplicates the reply cache
/// suppressed) and departed clients are skipped, the rest are grouped
/// per ClientIO thread and flushed with one bulk push each. Returns
/// `false` when a reply queue has closed (shutdown).
fn route_replies(
    ctx: &Ctx,
    handle: &ThreadHandle,
    replies: &mut Vec<(RequestId, Option<Vec<u8>>)>,
    outboxes: &mut [Vec<(u64, Reply)>],
) -> bool {
    for (id, payload) in replies.drain(..) {
        let Some(payload) = payload else {
            continue;
        };
        let Some((cio, conn)) = ctx.shared.client_route(id.client) else {
            continue; // client gone or connected elsewhere
        };
        outboxes[cio].push((conn, Reply::new(id, payload)));
    }
    for (cio, outbox) in outboxes.iter_mut().enumerate() {
        if !outbox.is_empty() {
            // Ring before a potentially blocking push: if the queue is
            // full, the drain this push waits for needs the evented
            // thread out of epoll_wait. (No-op in threaded mode.)
            ctx.io_wakers[cio].ring();
            if ctx.reply_qs[cio]
                .push_many_with(outbox.drain(..), handle)
                .is_err()
            {
                return false;
            }
            ctx.io_wakers[cio].ring();
        }
    }
    true
}
