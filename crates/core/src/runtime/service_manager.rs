//! The ServiceManager module (§V-D): the "Replica" thread of the paper's
//! per-thread profiles.

use smr_types::Slot;
use smr_wire::{Batch, Reply};

use crate::reply_cache::ExecuteOutcome;
use crate::service::Service;

use super::Ctx;

/// Executes decided batches in log order, updates the reply cache, and
/// hands replies to the ClientIO threads owning the clients' connections.
/// The thread parks on the first decision (so an idle replica costs
/// nothing; `close` wakes it for shutdown), then drains whatever else is
/// queued in one lock acquisition. Replies are grouped per ClientIO
/// thread and flushed after every decided batch, so reply latency is
/// bounded by one batch's execution no matter how deep the drained
/// backlog is.
pub(crate) fn run_service_manager(ctx: &Ctx, mut service: Box<dyn Service>) {
    let handle = ctx.metrics.register_thread("Replica");
    let mut decisions: Vec<(Slot, Batch)> = Vec::new();
    let mut outboxes: Vec<Vec<(u64, Reply)>> =
        (0..ctx.reply_qs.len()).map(|_| Vec::new()).collect();
    loop {
        match ctx.decision_q.pop_with(&handle) {
            Ok(first) => decisions.push(first),
            Err(_) => return,
        }
        // Batch up the backlog behind the first decision; an error here
        // (empty or closed) still leaves that decision to execute.
        let _ = ctx.decision_q.try_pop_all(&mut decisions);
        for (_slot, batch) in decisions.drain(..) {
            for request in batch.requests {
                let reply_payload = match ctx.cache.check_execute(request.id) {
                    ExecuteOutcome::Fresh => {
                        let reply = service.execute(&request.payload);
                        ctx.cache.record(request.id, reply.clone());
                        Some(reply)
                    }
                    // Ordered twice (client retry raced the pipeline):
                    // do not re-execute; resend the cached reply.
                    ExecuteOutcome::Duplicate(cached) => cached,
                };
                let Some(payload) = reply_payload else {
                    continue;
                };
                let Some((cio, conn)) = ctx.shared.client_route(request.id.client) else {
                    continue; // client gone or connected elsewhere
                };
                outboxes[cio].push((conn, Reply::new(request.id, payload)));
            }
            for (cio, outbox) in outboxes.iter_mut().enumerate() {
                if !outbox.is_empty()
                    && ctx.reply_qs[cio]
                        .push_many_with(outbox.drain(..), &handle)
                        .is_err()
                {
                    return;
                }
            }
        }
    }
}
