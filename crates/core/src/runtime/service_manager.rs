//! The ServiceManager module (§V-D): the "Replica" thread of the paper's
//! per-thread profiles, in both execution modes (sequential by default,
//! dependency-aware parallel opt-in).

use std::sync::Arc;
use std::time::Duration;

use smr_metrics::ThreadHandle;
use smr_types::{RequestId, Slot};
use smr_wire::{Batch, Reply};

use crate::exec::ParallelExecutor;
use crate::reply_cache::ExecuteOutcome;
use crate::service::{ConflictAwareService, Service};

use super::Ctx;

/// How long the parallel manager waits for worker completions before
/// re-checking the DecisionQueue for new work.
const COMPLETION_POLL: Duration = Duration::from_millis(1);

/// Executes decided batches in log order, updates the reply cache, and
/// hands replies to the ClientIO threads owning the clients' connections.
/// The thread parks on the first decision (so an idle replica costs
/// nothing; `close` wakes it for shutdown), then drains whatever else is
/// queued in one lock acquisition. Replies are grouped per ClientIO
/// thread and flushed after every decided batch, so reply latency is
/// bounded by one batch's execution no matter how deep the drained
/// backlog is.
pub(crate) fn run_service_manager(ctx: &Ctx, mut service: Box<dyn Service>) {
    let handle = ctx.metrics.register_thread("Replica");
    let mut decisions: Vec<(Slot, Batch)> = Vec::new();
    let mut replies: Vec<(RequestId, Option<Vec<u8>>)> = Vec::new();
    let mut outboxes: Vec<Vec<(u64, Reply)>> =
        (0..ctx.reply_qs.len()).map(|_| Vec::new()).collect();
    loop {
        match ctx.decision_q.pop_with(&handle) {
            Ok(first) => decisions.push(first),
            Err(_) => return,
        }
        // Batch up the backlog behind the first decision; an error here
        // (empty or closed) still leaves that decision to execute.
        let _ = ctx.decision_q.try_pop_all(&mut decisions);
        for (_slot, batch) in decisions.drain(..) {
            for request in batch.requests {
                let reply_payload = match ctx.cache.check_execute(request.id) {
                    ExecuteOutcome::Fresh => {
                        let reply = service.execute(&request.payload);
                        ctx.cache.record(request.id, reply.clone());
                        Some(reply)
                    }
                    // Ordered twice (client retry raced the pipeline):
                    // do not re-execute; resend the cached reply.
                    ExecuteOutcome::Duplicate(cached) => cached,
                };
                replies.push((request.id, reply_payload));
            }
            if !route_replies(ctx, &handle, &mut replies, &mut outboxes) {
                return;
            }
        }
    }
}

/// The parallel-mode "Replica" thread: same inputs and outputs as
/// [`run_service_manager`], but decided commands are fed to a
/// [`ParallelExecutor`] that runs non-conflicting ones concurrently on a
/// worker pool. At-most-once bookkeeping moves into the workers (the
/// executor owns the reply-cache interaction), which is safe because the
/// executor chains same-client commands.
///
/// The loop alternates between two waits: empty executor → park on the
/// DecisionQueue exactly like the sequential path; work in flight →
/// drain the DecisionQueue without blocking and wait briefly for worker
/// completions instead, so new decisions keep feeding the DAG while
/// earlier commands are still executing.
pub(crate) fn run_parallel_service_manager(
    ctx: &Ctx,
    service: Arc<dyn ConflictAwareService>,
    workers: usize,
) {
    let handle = ctx.metrics.register_thread("Replica");
    let mut exec =
        ParallelExecutor::with_reply_cache(service, workers, Some(Arc::clone(&ctx.cache)));
    let mut decisions: Vec<(Slot, Batch)> = Vec::new();
    let mut replies: Vec<(RequestId, Option<Vec<u8>>)> = Vec::new();
    let mut outboxes: Vec<Vec<(u64, Reply)>> =
        (0..ctx.reply_qs.len()).map(|_| Vec::new()).collect();
    loop {
        if exec.pending() == 0 {
            // Idle: park until something is decided (or shutdown).
            match ctx.decision_q.pop_with(&handle) {
                Ok(first) => decisions.push(first),
                Err(_) => return,
            }
        }
        let _ = ctx.decision_q.try_pop_all(&mut decisions);
        for (_slot, batch) in decisions.drain(..) {
            for request in batch.requests {
                exec.submit(request);
            }
        }
        if exec.poll_with(&mut replies, COMPLETION_POLL, &handle) > 0
            && !route_replies(ctx, &handle, &mut replies, &mut outboxes)
        {
            return;
        }
    }
}

/// Routes a burst of executed replies to the ClientIO threads owning the
/// clients' connections: `None` payloads (duplicates the reply cache
/// suppressed) and departed clients are skipped, the rest are grouped
/// per ClientIO thread and flushed with one bulk push each. Returns
/// `false` when a reply queue has closed (shutdown).
fn route_replies(
    ctx: &Ctx,
    handle: &ThreadHandle,
    replies: &mut Vec<(RequestId, Option<Vec<u8>>)>,
    outboxes: &mut [Vec<(u64, Reply)>],
) -> bool {
    for (id, payload) in replies.drain(..) {
        let Some(payload) = payload else {
            continue;
        };
        let Some((cio, conn)) = ctx.shared.client_route(id.client) else {
            continue; // client gone or connected elsewhere
        };
        outboxes[cio].push((conn, Reply::new(id, payload)));
    }
    for (cio, outbox) in outboxes.iter_mut().enumerate() {
        if !outbox.is_empty()
            && ctx.reply_qs[cio]
                .push_many_with(outbox.drain(..), handle)
                .is_err()
        {
            return false;
        }
    }
    true
}
