//! The ServiceManager module (§V-D): the "Replica" thread of the paper's
//! per-thread profiles.

use smr_wire::Reply;

use crate::reply_cache::ExecuteOutcome;
use crate::service::Service;

use super::Ctx;

/// Executes decided batches in log order, updates the reply cache, and
/// hands each reply to the ClientIO thread owning the client's
/// connection.
pub(crate) fn run_service_manager(ctx: &Ctx, mut service: Box<dyn Service>) {
    let handle = ctx.metrics.register_thread("Replica");
    loop {
        match ctx.decision_q.pop_with(&handle) {
            Ok((_slot, batch)) => {
                for request in batch.requests {
                    let reply_payload = match ctx.cache.check_execute(request.id) {
                        ExecuteOutcome::Fresh => {
                            let reply = service.execute(&request.payload);
                            ctx.cache.record(request.id, reply.clone());
                            Some(reply)
                        }
                        // Ordered twice (client retry raced the pipeline):
                        // do not re-execute; resend the cached reply.
                        ExecuteOutcome::Duplicate(cached) => cached,
                    };
                    let Some(payload) = reply_payload else {
                        continue;
                    };
                    let Some((cio, conn)) = ctx.shared.client_route(request.id.client) else {
                        continue; // client gone or connected elsewhere
                    };
                    let reply = Reply::new(request.id, payload);
                    if ctx.reply_qs[cio].push_with((conn, reply), &handle).is_err() {
                        return;
                    }
                }
            }
            Err(_) => return,
        }
    }
}
