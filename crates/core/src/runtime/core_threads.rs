//! ReplicationCore threads (§V-C): Batcher, Protocol, FailureDetector,
//! and Retransmitter.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use smr_metrics::ThreadState;
use smr_paxos::{Action, BatchBuilder, Event, PaxosReplica};
use smr_queue::PopError;
use smr_types::{RequestId, Slot, View};
use smr_wire::{Batch, ProtocolMsg, Request};

use super::stage::{batch_key, BatchStamp, StageClock};
use super::{Ctx, Decision, RetransmitEntry};

/// Most requests the Batcher moves out of the RequestQueue per lock
/// acquisition.
const REQUEST_BURST: usize = 1024;

/// Most events the Protocol thread drains from the DispatcherQueue
/// between pipelining-window checks.
const EVENT_BURST: usize = 256;

/// The Batcher thread (§V-C1): drains the RequestQueue into batches
/// according to the batching policy and feeds the ProposalQueue. Bursts
/// move under one RequestQueue lock acquisition, and every batch they
/// complete is handed to the ProposalQueue in one bulk push.
///
/// Each request arrives paired with its intake stamp; the stamp of the
/// request that *opens* a batch becomes the batch's intake time, and
/// sealing records the intake → sealed transition.
pub(crate) fn run_batcher(ctx: &Ctx) {
    let handle = ctx.metrics.register_thread("Batcher");
    let mut builder = BatchBuilder::new(ctx.config.batch());
    let mut burst: Vec<(Request, u64)> = Vec::new();
    let mut completed: Vec<(Batch, BatchStamp)> = Vec::new();
    // Intake stamp of the batch currently open in the builder.
    let mut open_intake = 0u64;
    loop {
        let now = ctx.shared.now_ns();
        // Wait at most until the open batch's deadline.
        let wait = match builder.next_deadline() {
            Some(deadline) => Duration::from_nanos(deadline.saturating_sub(now).max(1)),
            None => Duration::from_millis(10),
        };
        match ctx
            .request_q
            .pop_wait_all_with(&mut burst, REQUEST_BURST, wait, &handle)
        {
            Ok(_) => {
                let now = ctx.shared.now_ns();
                for (req, intake_ns) in burst.drain(..) {
                    if builder.pending_len() == 0 {
                        open_intake = intake_ns;
                    }
                    if let Some(batch) = builder.push(req, now) {
                        completed.push((
                            batch,
                            BatchStamp {
                                intake_ns: open_intake,
                                sealed_ns: now,
                            },
                        ));
                        if builder.pending_len() > 0 {
                            // The request overflowed the previous batch
                            // and opened the next one: it owns the new
                            // batch's intake stamp.
                            open_intake = intake_ns;
                        }
                    }
                }
                if !completed.is_empty() {
                    for (_, stamp) in &completed {
                        ctx.stage.record_sealed(*stamp);
                    }
                    if ctx
                        .proposal_q
                        .push_many_with(completed.drain(..), &handle)
                        .is_err()
                    {
                        return;
                    }
                }
            }
            Err(PopError::Empty) => {
                let now = ctx.shared.now_ns();
                if let Some(batch) = builder.poll_timeout(now) {
                    let stamp = BatchStamp {
                        intake_ns: open_intake,
                        sealed_ns: now,
                    };
                    ctx.stage.record_sealed(stamp);
                    if ctx.proposal_q.push_with((batch, stamp), &handle).is_err() {
                        return;
                    }
                }
            }
            Err(PopError::Closed) => return,
        }
    }
}

/// The Protocol thread (§V-C2): the single-threaded event loop around the
/// pure Paxos state machine. Owns the log; everything it publishes goes
/// through queues or the shared atomics.
pub(crate) fn run_protocol(ctx: &Ctx) {
    let handle = ctx.metrics.register_thread("Protocol");
    let mut core = PaxosReplica::new(ctx.me, ctx.config.clone());
    core.set_compaction(ctx.compaction);
    let mut actions = Vec::new();
    let mut deliveries: Vec<Decision> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    // Stage clocks of batches this replica proposed, keyed by the
    // batch's first request id and tagged with the slot the proposal
    // took; probed when the decision comes back as a `Deliver`. Cleared
    // on leader change (a dethroned leader's un-decided proposals would
    // otherwise linger) and swept against the applied watermark when it
    // advances — a batch whose delivery this replica observed via a
    // snapshot install or catch-up fast-forward never produces a
    // `Deliver` action, so without the sweep its entry would sit in the
    // map for the leader's whole lifetime.
    let mut pending_clocks: HashMap<RequestId, (Slot, StageClock)> = HashMap::new();
    core.handle(Event::Init, ctx.shared.now_ns(), &mut actions);
    if apply_actions(ctx, &mut actions, &mut deliveries, &mut pending_clocks).is_err() {
        return;
    }
    // The ServiceManager publishes snapshots through the SnapshotStore;
    // the watermark atomic is the Protocol thread's cue to fast-forward
    // past recovered state and compact the in-memory log.
    let mut seen_watermark = ctx.snapshots.watermark();
    if seen_watermark > Slot::ZERO {
        core.note_snapshot(seen_watermark);
        publish(ctx, &core);
    }
    let tick_every = Duration::from_millis(25);
    let mut last_tick = Instant::now();
    loop {
        if ctx.is_shutdown() {
            return;
        }
        let watermark = ctx.snapshots.watermark();
        if watermark > seen_watermark {
            seen_watermark = watermark;
            sweep_pending_clocks(&mut pending_clocks, watermark);
            core.note_snapshot(watermark);
            if apply_actions(ctx, &mut actions, &mut deliveries, &mut pending_clocks).is_err() {
                return;
            }
            publish(ctx, &core);
        }
        // Pull proposals whenever the pipelining window has room. The
        // Batcher prepares batches concurrently (§V-C1), so starting a new
        // ballot is one queue pop, not a batch construction. This stays a
        // per-item pop on purpose: the window check gates every proposal.
        while core.window_open() {
            match ctx.proposal_q.try_pop() {
                Ok((batch, stamp)) => {
                    let now = ctx.shared.now_ns();
                    if ctx.stage.enabled {
                        let clock = ctx.stage.record_proposed(stamp, now);
                        if let Some(key) = batch_key(&batch) {
                            // window_open() held above, so handle() will
                            // propose this batch immediately into
                            // exactly next_slot() — tag the entry with
                            // it so the watermark sweep can tell which
                            // proposals a snapshot has overtaken.
                            pending_clocks.insert(key, (core.next_slot(), clock));
                        }
                    }
                    core.handle(Event::Proposal(batch), now, &mut actions);
                    if apply_actions(ctx, &mut actions, &mut deliveries, &mut pending_clocks)
                        .is_err()
                    {
                        return;
                    }
                    publish(ctx, &core);
                }
                Err(PopError::Empty) => break,
                Err(PopError::Closed) => return,
            }
        }
        // Drain the DispatcherQueue in bulk between window checks: one
        // lock acquisition moves the whole burst of peer messages.
        match ctx.dispatcher_q.pop_wait_all_with(
            &mut events,
            EVENT_BURST,
            Duration::from_millis(1),
            &handle,
        ) {
            Ok(_) => {
                for event in events.drain(..) {
                    // A service that cannot restore a snapshot must not
                    // install one: drop peer snapshots on the floor and
                    // keep catching up slot by slot.
                    if !ctx.snapshot_capable
                        && matches!(
                            &event,
                            Event::Message {
                                msg: ProtocolMsg::Snapshot { .. },
                                ..
                            }
                        )
                    {
                        continue;
                    }
                    core.handle(event, ctx.shared.now_ns(), &mut actions);
                    if apply_actions(ctx, &mut actions, &mut deliveries, &mut pending_clocks)
                        .is_err()
                    {
                        return;
                    }
                }
                publish(ctx, &core);
            }
            Err(PopError::Empty) => {}
            Err(PopError::Closed) => return,
        }
        if last_tick.elapsed() >= tick_every {
            last_tick = Instant::now();
            core.handle(Event::Tick, ctx.shared.now_ns(), &mut actions);
            if apply_actions(ctx, &mut actions, &mut deliveries, &mut pending_clocks).is_err() {
                return;
            }
        }
    }
}

fn publish(ctx: &Ctx, core: &PaxosReplica) {
    ctx.shared.set_decided_upto(core.decided_upto());
}

/// Carries out the state machine's actions. `deliveries` is a reusable
/// scratch buffer: `Deliver` decisions and snapshot installs are staged
/// there (relative order preserved) and handed to the DecisionQueue in
/// one bulk push per action batch. `pending_clocks` tracks the stage
/// clocks of locally proposed batches; a delivery of one of them
/// records proposed → decided and forwards the clock with the decision.
/// Returns `Err(())` when the replica is shutting down.
fn apply_actions(
    ctx: &Ctx,
    actions: &mut Vec<Action>,
    deliveries: &mut Vec<Decision>,
    pending_clocks: &mut HashMap<RequestId, (Slot, StageClock)>,
) -> Result<(), ()> {
    for action in actions.drain(..) {
        match action {
            Action::Send { to, msg } => ctx.send(to, &msg),
            Action::Deliver { slot, batch } => {
                // Follower deliveries (and anything proposed before a
                // leader change) have no clock entry and ride as `None`.
                let clock = batch_key(&batch)
                    .and_then(|key| pending_clocks.remove(&key))
                    .map(|(_, clock)| ctx.stage.record_decided(clock, ctx.shared.now_ns()));
                deliveries.push(Decision::Apply(slot, batch, clock));
            }
            Action::SendSnapshot { to } => {
                // Materialize the newest published snapshot; nothing to
                // send if none exists yet (the peer falls back to slot
                // catch-up from other replicas).
                if let Some(blob) = ctx.snapshots.latest() {
                    ctx.send(
                        to,
                        &ProtocolMsg::Snapshot {
                            applied_upto: blob.applied_upto,
                            state_hash: blob.state_hash,
                            state: blob.state.clone(),
                        },
                    );
                }
            }
            Action::InstallSnapshot { snapshot } => {
                deliveries.push(Decision::Install(snapshot));
            }
            Action::ScheduleRetransmit { key, to, msg } => {
                let entry = RetransmitEntry {
                    key,
                    to,
                    msg,
                    attempt: 0,
                };
                let deadline = Instant::now() + ctx.config.retransmit().interval(0);
                let cancel = ctx.timers.schedule(deadline, entry);
                if let Some(old) = ctx.retransmits.lock().insert(key, cancel) {
                    old.cancel();
                }
            }
            Action::CancelRetransmit { key } => {
                if let Some(cancel) = ctx.retransmits.lock().remove(&key) {
                    cancel.cancel();
                }
            }
            Action::CancelAllRetransmits => {
                for (_, cancel) in ctx.retransmits.lock().drain() {
                    cancel.cancel();
                }
            }
            Action::LeaderChanged { view, leader } => {
                pending_clocks.clear();
                ctx.shared.set_view(view, leader, ctx.me);
            }
        }
    }
    if !deliveries.is_empty() && ctx.decision_q.push_many(deliveries.drain(..)).is_err() {
        return Err(());
    }
    Ok(())
}

/// Drops pending stage clocks for proposals the applied watermark has
/// overtaken. `applied_upto` is exclusive (the snapshot covers slots
/// `< applied_upto`): a proposal in a covered slot was delivered through
/// the snapshot-install or catch-up fast-forward path, which never emits
/// the `Action::Deliver` that would otherwise remove its entry — so on a
/// long-lived leader whose followers recover via snapshots, the map
/// would grow without bound.
fn sweep_pending_clocks(
    pending_clocks: &mut HashMap<RequestId, (Slot, StageClock)>,
    applied_upto: Slot,
) {
    pending_clocks.retain(|_, (slot, _)| *slot >= applied_upto);
}

/// The Retransmitter thread (§V-C4): re-sends messages whose timers
/// expire uncancelled, with exponential backoff.
pub(crate) fn run_retransmitter(ctx: &Ctx) {
    let handle = ctx.metrics.register_thread("Retransmitter");
    loop {
        if ctx.is_shutdown() {
            return;
        }
        let expired = {
            let _g = handle.enter(ThreadState::Waiting);
            ctx.timers.next_expired(Duration::from_millis(100))
        };
        let Some(fired) = expired else {
            if ctx.is_shutdown() {
                return;
            }
            continue;
        };
        let entry = fired.value;
        // Skip zombies: the Protocol thread may have cancelled between
        // expiry and now.
        {
            let mut map = ctx.retransmits.lock();
            if !map.contains_key(&entry.key) {
                continue;
            }
            let attempt = entry.attempt + 1;
            let next = RetransmitEntry {
                attempt,
                ..entry.clone()
            };
            let deadline = Instant::now() + ctx.config.retransmit().interval(attempt);
            let cancel = ctx.timers.schedule(deadline, next);
            if let Some(old) = map.insert(entry.key, cancel) {
                old.cancel();
            }
        }
        ctx.send(entry.to, &entry.msg);
    }
}

/// The FailureDetector thread (§V-C3): leader side sends heartbeats on
/// idle links; follower side suspects a silent leader. Reads the
/// ReplicaIO timestamps lock-free — timestamps only grow, so a delayed
/// re-check is always safe.
pub(crate) fn run_failure_detector(ctx: &Ctx) {
    let handle = ctx.metrics.register_thread("FailureDetector");
    let heartbeat = ctx.config.heartbeat_interval();
    let suspect_after = ctx.config.suspect_timeout().as_nanos() as u64;
    let mut observed_view = View::ZERO;
    let mut view_since = ctx.shared.now_ns();
    let mut suspected: Option<View> = None;
    loop {
        {
            let _g = handle.enter(ThreadState::Other); // sleeping
            std::thread::sleep(heartbeat / 2);
        }
        if ctx.is_shutdown() {
            return;
        }
        let now = ctx.shared.now_ns();
        let view = ctx.shared.view();
        if view != observed_view {
            observed_view = view;
            view_since = now;
            suspected = None;
        }
        if ctx.shared.is_leader() {
            // Keep every follower's link warm so their detectors stay
            // quiet, but only when the link has been idle (§V-C3: the
            // ReplicaIO threads update timestamps; no heartbeat needed on
            // busy links).
            let hb = ProtocolMsg::Heartbeat {
                view,
                decided_upto: ctx.shared.decided_upto(),
            };
            for peer in ctx.config.peers(ctx.me) {
                let idle_ns = now.saturating_sub(ctx.shared.last_send_ns(peer));
                if idle_ns >= heartbeat.as_nanos() as u64 {
                    ctx.send(smr_paxos::Target::One(peer), &hb);
                }
            }
        } else {
            let leader = ctx.shared.leader();
            let last = ctx.shared.last_recv_ns(leader).max(view_since);
            if now.saturating_sub(last) > suspect_after && suspected != Some(view) {
                suspected = Some(view);
                if ctx.dispatcher_q.push(Event::Suspect { view }).is_err() {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr_types::{ClientId, SeqNum};

    fn rid(n: u64) -> RequestId {
        RequestId::new(ClientId(n), SeqNum(0))
    }

    /// Regression for the pending-clocks leak: entries whose slot the
    /// applied watermark has overtaken (delivered via snapshot install
    /// or catch-up fast-forward, so no `Action::Deliver` ever removes
    /// them) must be swept when the watermark advances; in-flight
    /// proposals at or above the watermark must survive.
    #[test]
    fn watermark_sweep_drops_only_overtaken_clocks() {
        let mut pending: HashMap<RequestId, (Slot, StageClock)> = HashMap::new();
        for s in 0..10u64 {
            pending.insert(rid(s), (Slot(s), StageClock::default()));
        }
        // Watermark advanced to 7: slots 0..7 are covered by the
        // snapshot (exclusive bound), 7..10 are still in flight.
        sweep_pending_clocks(&mut pending, Slot(7));
        assert_eq!(pending.len(), 3);
        for s in 0..7u64 {
            assert!(!pending.contains_key(&rid(s)), "slot {s} swept");
        }
        for s in 7..10u64 {
            assert!(pending.contains_key(&rid(s)), "slot {s} retained");
        }
        // A stale (non-advancing) watermark sweeps nothing further.
        sweep_pending_clocks(&mut pending, Slot(7));
        assert_eq!(pending.len(), 3);
        // Repeated advances keep the map bounded by the window size, not
        // the leader's lifetime.
        sweep_pending_clocks(&mut pending, Slot(10));
        assert!(pending.is_empty());
    }
}
