//! The paper's contribution: a multi-core scalable threading architecture
//! for replicated state machines.
//!
//! A [`Replica`] is a set of cooperating threads wired by bounded,
//! instrumented queues, reproducing Fig. 3 of the paper:
//!
//! ```text
//! ClientIO-0..k ──RequestQueue──▶ Batcher ──ProposalQueue──▶ Protocol
//!      ▲                                                       │ ▲
//!      │ per-thread reply queues                               │ │ DispatcherQueue
//! ServiceManager ("Replica" thread) ◀──DecisionQueue───────────┘ │
//!                                                                │
//! ReplicaIORcv-p ────────────────────────────────────────────────┘
//! ReplicaIOSnd-p ◀──SendQueue-p── Protocol / Retransmitter
//! FailureDetector ──Suspect──▶ DispatcherQueue
//! Retransmitter   (TimerQueue; atomic cancel flags — §V-C4)
//! ```
//!
//! Module-by-module correspondence with the paper:
//!
//! * **ClientIO** (§V-A): a configurable pool of threads, each owning a
//!   subset of client connections (round-robin assignment), doing
//!   decode/encode, reply-cache probes, and redirects. Never blocks on a
//!   full RequestQueue — it pauses *reading* instead, which is what lets
//!   TCP backpressure propagate to clients (§V-E) without deadlock.
//! * **ReplicaIO** (§V-B): one sender + one receiver thread per peer,
//!   blocking I/O, dedicated SendQueues so the Protocol thread never
//!   blocks on a socket.
//! * **ReplicationCore** (§V-C): Batcher, Protocol, FailureDetector and
//!   Retransmitter threads around the pure [`smr_paxos::PaxosReplica`]
//!   state machine, under the no-lock rule (queues, atomics, and the
//!   volatile-flag retransmission cancel).
//! * **ServiceManager** (§V-D): the "Replica" thread executing decided
//!   batches against the [`Service`] and routing replies through the
//!   sharded [`ShardedReplyCache`].
//! * **Parallel execution** (beyond the paper): an opt-in
//!   [`ParallelExecutor`] behind the ServiceManager that runs
//!   non-conflicting decided commands concurrently on a worker pool,
//!   scheduling by the per-key footprints a [`ConflictAwareService`]
//!   declares. Enable it per replica with
//!   [`ReplicaBuilder::with_parallel_service`] or per cluster with
//!   [`InProcessCluster::start_parallel`]; the sequential path stays the
//!   default.
//! * **Durability & recovery** (beyond the paper): services implementing
//!   [`SnapshotService`] (or [`SharedSnapshotService`] in parallel mode)
//!   can persist a write-ahead log and periodic snapshots via
//!   [`ReplicaBuilder::with_durability`]; on restart the replica rebuilds
//!   its state from disk before serving. Snapshots also drive log
//!   compaction ([`smr_types::CompactionPolicy`]) and let lagging peers
//!   catch up by state transfer instead of slot-by-slot replay.
//!
//! # Examples
//!
//! ```
//! use smr_core::{InProcessCluster, KvService};
//! use smr_types::ClusterConfig;
//!
//! let cluster = InProcessCluster::start(ClusterConfig::new(3), |_id| {
//!     Box::new(KvService::new())
//! });
//! let mut client = cluster.client();
//! client.execute(&KvService::put(b"k", b"v")).unwrap();
//! let got = client.execute(&KvService::get(b"k")).unwrap();
//! assert_eq!(KvService::decode_value(&got), Some(b"v".to_vec()));
//! cluster.shutdown();
//! ```

mod client;
mod cluster;
mod exec;
mod reply_cache;
mod runtime;
mod service;
mod shared;

pub use client::{Connector, SmrClient};
pub use cluster::InProcessCluster;
pub use exec::ParallelExecutor;
pub use reply_cache::{
    CacheOutcome, CoarseReplyCache, ExecuteOutcome, ReplyCache, ShardedReplyCache,
};
pub use runtime::{EventedIoOptions, Replica, ReplicaBuilder};
pub use service::{
    ConcurrentKvService, ConflictAwareService, KvService, LockService, NullService,
    RecoverableService, SequencerService, Service, ServiceState, SharedSnapshotService,
    SnapshotService,
};
pub use shared::SharedState;
