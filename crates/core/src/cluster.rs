//! An in-process cluster: n replicas over the in-memory fabric.
//!
//! The one-call way to stand up a replicated service for tests, examples,
//! and benches. Replicas can be stopped and restarted in place
//! ([`InProcessCluster::stop_replica`],
//! [`InProcessCluster::restart_replica`]), which is how the crash-recovery
//! tests kill a replica mid-workload and bring it back from its durable
//! directory.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use smr_net::memory::MemoryHub;
use smr_types::{ClientId, ClusterConfig, ReplicaId};

use crate::client::SmrClient;
use crate::runtime::{Replica, ReplicaBuilder};
use crate::service::{ConflictAwareService, Service};

/// A fully wired in-process cluster.
///
/// # Examples
///
/// ```
/// use smr_core::{InProcessCluster, NullService};
/// use smr_types::ClusterConfig;
///
/// let cluster = InProcessCluster::start(ClusterConfig::new(3), |_| {
///     Box::new(NullService::default())
/// });
/// let mut client = cluster.client();
/// assert_eq!(client.execute(&[0u8; 128]).unwrap().len(), 8);
/// cluster.shutdown();
/// ```
pub struct InProcessCluster {
    hub: MemoryHub,
    /// `None` while a replica is stopped (between
    /// [`stop_replica`](InProcessCluster::stop_replica) and
    /// [`restart_replica`](InProcessCluster::restart_replica)).
    replicas: Vec<Option<Replica>>,
    config: ClusterConfig,
    next_client: AtomicU64,
}

impl std::fmt::Debug for InProcessCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InProcessCluster")
            .field("n", &self.config.n())
            .finish()
    }
}

impl InProcessCluster {
    /// Starts `config.n()` replicas, each running the service produced by
    /// `service_factory`.
    ///
    /// # Panics
    ///
    /// Panics if a replica fails to start (configuration is validated by
    /// [`ClusterConfig`], so this indicates a bug).
    pub fn start(
        config: ClusterConfig,
        service_factory: impl Fn(ReplicaId) -> Box<dyn Service>,
    ) -> Self {
        Self::start_with(config, move |id, builder| {
            builder.with_service(service_factory(id))
        })
    }

    /// Like [`InProcessCluster::start`], but every replica runs its
    /// service in dependency-aware parallel execution mode with a pool
    /// of `workers` threads (see
    /// [`crate::ReplicaBuilder::with_parallel_service`]). All replicas
    /// still converge to identical state: conflicting commands execute in
    /// decided order everywhere.
    ///
    /// # Panics
    ///
    /// Panics if a replica fails to start (configuration is validated by
    /// [`ClusterConfig`], so this indicates a bug).
    pub fn start_parallel(
        config: ClusterConfig,
        service_factory: impl Fn(ReplicaId) -> std::sync::Arc<dyn ConflictAwareService>,
        workers: usize,
    ) -> Self {
        Self::start_with(config, move |id, builder| {
            builder.with_parallel_service(service_factory(id), workers)
        })
    }

    /// The fully general entry point: starts `config.n()` replicas, each
    /// configured by `customize` on a builder that is already wired to
    /// the in-memory fabric. The customizer must set a service; it may
    /// also add durability, compaction, metrics, and so on.
    ///
    /// # Panics
    ///
    /// Panics if a replica fails to start — with a customizer this can
    /// be a real configuration error (say, durability without a
    /// snapshot-capable service), reported in the panic message.
    pub fn start_with(
        config: ClusterConfig,
        mut customize: impl FnMut(ReplicaId, ReplicaBuilder) -> ReplicaBuilder,
    ) -> Self {
        let hub = MemoryHub::new(config.n(), 0xC0FF_EE00);
        let replicas = config
            .replicas()
            .map(|id| {
                let builder = ReplicaBuilder::new(id, config.clone())
                    .with_network(std::sync::Arc::new(hub.replica_network(id)))
                    .with_client_listener(Box::new(hub.client_listener(id)));
                Some(
                    customize(id, builder)
                        .start()
                        .unwrap_or_else(|e| panic!("replica {id} failed to start: {e}")),
                )
            })
            .collect();
        InProcessCluster {
            hub,
            replicas,
            config,
            next_client: AtomicU64::new(1),
        }
    }

    /// The underlying fabric (fault injection lives here).
    pub fn hub(&self) -> &MemoryHub {
        &self.hub
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Access to a running replica.
    ///
    /// # Panics
    ///
    /// Panics if the replica is currently stopped.
    pub fn replica(&self, id: ReplicaId) -> &Replica {
        self.replicas[id.index()]
            .as_ref()
            .expect("replica is running")
    }

    /// A new client with an auto-assigned id and test-friendly timeouts.
    pub fn client(&self) -> SmrClient {
        let id = self.next_client.fetch_add(1, Ordering::Relaxed);
        self.client_with_id(ClientId(id))
    }

    /// A new client with an explicit id.
    pub fn client_with_id(&self, id: ClientId) -> SmrClient {
        let hub = self.hub.clone();
        SmrClient::new(
            id,
            self.config.n(),
            Box::new(move |replica| hub.connect_client(replica).map(|ep| Box::new(ep) as _)),
        )
        .with_timeouts(Duration::from_millis(250), Duration::from_secs(20))
    }

    /// Network-crashes a replica: every link to and from it goes dark.
    /// Its threads keep running, but the rest of the cluster must elect a
    /// new leader and keep going without it.
    pub fn crash(&self, replica: ReplicaId) {
        self.hub.isolate(replica, true);
    }

    /// Heals a previously crashed replica's links.
    pub fn heal(&self, replica: ReplicaId) {
        self.hub.isolate(replica, false);
    }

    /// Kills a replica outright: its threads stop and join, its network
    /// endpoint detaches (the fabric stays up for the others). Anything
    /// not persisted to a durable directory is gone — exactly the crash
    /// model the recovery tests need. No-op if already stopped.
    pub fn stop_replica(&mut self, id: ReplicaId) {
        if let Some(replica) = self.replicas[id.index()].take() {
            replica.shutdown();
        }
    }

    /// Brings a stopped replica back with a fresh network endpoint,
    /// configured by `customize` (typically the same closure the cluster
    /// was started with, pointing at the same durable directory so the
    /// replica recovers its pre-crash state).
    ///
    /// # Panics
    ///
    /// Panics if the replica is still running or fails to start.
    pub fn restart_replica(
        &mut self,
        id: ReplicaId,
        customize: impl FnOnce(ReplicaId, ReplicaBuilder) -> ReplicaBuilder,
    ) {
        assert!(
            self.replicas[id.index()].is_none(),
            "replica {id} is still running; stop_replica first"
        );
        let builder = ReplicaBuilder::new(id, self.config.clone())
            .with_network(std::sync::Arc::new(self.hub.replica_network(id)))
            .with_client_listener(Box::new(self.hub.client_listener(id)));
        self.replicas[id.index()] = Some(
            customize(id, builder)
                .start()
                .unwrap_or_else(|e| panic!("replica {id} failed to restart: {e}")),
        );
    }

    /// Shuts down every running replica and the fabric.
    pub fn shutdown(self) {
        for r in self.replicas.into_iter().flatten() {
            r.shutdown();
        }
        self.hub.shutdown();
    }
}
