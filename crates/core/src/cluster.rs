//! An in-process cluster: n replicas over the in-memory fabric.
//!
//! The one-call way to stand up a replicated service for tests, examples,
//! and benches.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use smr_net::memory::MemoryHub;
use smr_types::{ClientId, ClusterConfig, ReplicaId};

use crate::client::SmrClient;
use crate::runtime::{Replica, ReplicaBuilder};
use crate::service::{ConflictAwareService, Service};

/// A fully wired in-process cluster.
///
/// # Examples
///
/// ```
/// use smr_core::{InProcessCluster, NullService};
/// use smr_types::ClusterConfig;
///
/// let cluster = InProcessCluster::start(ClusterConfig::new(3), |_| {
///     Box::new(NullService::default())
/// });
/// let mut client = cluster.client();
/// assert_eq!(client.execute(&[0u8; 128]).unwrap().len(), 8);
/// cluster.shutdown();
/// ```
pub struct InProcessCluster {
    hub: MemoryHub,
    replicas: Vec<Replica>,
    config: ClusterConfig,
    next_client: AtomicU64,
}

impl std::fmt::Debug for InProcessCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InProcessCluster")
            .field("n", &self.config.n())
            .finish()
    }
}

impl InProcessCluster {
    /// Starts `config.n()` replicas, each running the service produced by
    /// `service_factory`.
    ///
    /// # Panics
    ///
    /// Panics if a replica fails to start (configuration is validated by
    /// [`ClusterConfig`], so this indicates a bug).
    pub fn start(
        config: ClusterConfig,
        service_factory: impl Fn(ReplicaId) -> Box<dyn Service>,
    ) -> Self {
        let hub = MemoryHub::new(config.n(), 0xC0FF_EE00);
        let replicas = config
            .replicas()
            .map(|id| {
                ReplicaBuilder::new(id, config.clone())
                    .service(service_factory(id))
                    .network(std::sync::Arc::new(hub.replica_network(id)))
                    .client_listener(Box::new(hub.client_listener(id)))
                    .start()
                    .expect("replica starts")
            })
            .collect();
        InProcessCluster {
            hub,
            replicas,
            config,
            next_client: AtomicU64::new(1),
        }
    }

    /// Like [`InProcessCluster::start`], but every replica runs its
    /// service in dependency-aware parallel execution mode with a pool
    /// of `workers` threads (see
    /// [`crate::ReplicaBuilder::parallel_service`]). All replicas still
    /// converge to identical state: conflicting commands execute in
    /// decided order everywhere.
    ///
    /// # Panics
    ///
    /// Panics if a replica fails to start (configuration is validated by
    /// [`ClusterConfig`], so this indicates a bug).
    pub fn start_parallel(
        config: ClusterConfig,
        service_factory: impl Fn(ReplicaId) -> std::sync::Arc<dyn ConflictAwareService>,
        workers: usize,
    ) -> Self {
        let hub = MemoryHub::new(config.n(), 0xC0FF_EE00);
        let replicas = config
            .replicas()
            .map(|id| {
                ReplicaBuilder::new(id, config.clone())
                    .parallel_service(service_factory(id), workers)
                    .network(std::sync::Arc::new(hub.replica_network(id)))
                    .client_listener(Box::new(hub.client_listener(id)))
                    .start()
                    .expect("replica starts")
            })
            .collect();
        InProcessCluster {
            hub,
            replicas,
            config,
            next_client: AtomicU64::new(1),
        }
    }

    /// The underlying fabric (fault injection lives here).
    pub fn hub(&self) -> &MemoryHub {
        &self.hub
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Access to a running replica.
    pub fn replica(&self, id: ReplicaId) -> &Replica {
        &self.replicas[id.index()]
    }

    /// A new client with an auto-assigned id and test-friendly timeouts.
    pub fn client(&self) -> SmrClient {
        let id = self.next_client.fetch_add(1, Ordering::Relaxed);
        self.client_with_id(ClientId(id))
    }

    /// A new client with an explicit id.
    pub fn client_with_id(&self, id: ClientId) -> SmrClient {
        let hub = self.hub.clone();
        SmrClient::new(
            id,
            self.config.n(),
            Box::new(move |replica| hub.connect_client(replica).map(|ep| Box::new(ep) as _)),
        )
        .with_timeouts(Duration::from_millis(250), Duration::from_secs(20))
    }

    /// Network-crashes a replica: every link to and from it goes dark.
    /// Its threads keep running, but the rest of the cluster must elect a
    /// new leader and keep going without it.
    pub fn crash(&self, replica: ReplicaId) {
        self.hub.isolate(replica, true);
    }

    /// Heals a previously crashed replica's links.
    pub fn heal(&self, replica: ReplicaId) {
        self.hub.isolate(replica, false);
    }

    /// Shuts down every replica and the fabric.
    pub fn shutdown(self) {
        for r in self.replicas {
            r.shutdown();
        }
        self.hub.shutdown();
    }
}
