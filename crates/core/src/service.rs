//! The replicated service abstraction and ready-made services.
//!
//! The paper evaluates with a *null service* ("discards the payload of the
//! request and sends back a byte array of the size required") to isolate
//! the ordering path; real deployments replicate things like lock servers
//! (Chubby [1]) and coordination kernels (ZooKeeper [2]) — small,
//! CPU-light services for which the replication layer is the bottleneck.
//! This module ships all of those shapes.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::BytesMut;
use parking_lot::Mutex;

use smr_types::{key_hash, KeySet, SnapshotError};
use smr_wire::{WireReader, WireWriter};

/// A deterministic state machine replicated by the cluster.
///
/// Implementations must be deterministic: the reply and the state change
/// may depend only on the current state and the request payload, never on
/// time, randomness, or thread identity — every replica executes the same
/// sequence and must stay identical.
pub trait Service: Send + 'static {
    /// Executes one request and returns the reply payload.
    fn execute(&mut self, request: &[u8]) -> Vec<u8>;
}

/// A service whose full state can be summarized as a digest.
///
/// This is the shared root of the service trait family: both execution
/// modes ([`Service`] via [`SnapshotService`], [`ConflictAwareService`]
/// directly) hang off it, so determinism tests and recovery verification
/// use one method regardless of mode.
pub trait ServiceState {
    /// A deterministic, iteration-order-independent digest of the full
    /// service state. Replicas that executed the same decided order must
    /// report identical digests regardless of execution mode — this is
    /// what the determinism tests assert, and what crash recovery checks
    /// after restoring a snapshot.
    fn state_hash(&self) -> u64;
}

/// A sequential service that can serialize and restore its full state —
/// the substrate for durability, log compaction, and snapshot transfer.
///
/// The format of the blob is service-defined; the only contract is
/// `restore(snapshot()) == identity` (including [`ServiceState::state_hash`]),
/// on any replica.
pub trait SnapshotService: ServiceState {
    /// Serializes the full service state.
    fn snapshot(&self) -> Vec<u8>;

    /// Replaces the service state with a previously captured snapshot.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when `bytes` is not a valid snapshot; the
    /// service state is unspecified afterwards and the replica must not
    /// continue executing.
    fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError>;
}

/// The shared-state counterpart of [`SnapshotService`], for services
/// executed through `Arc` handles (the parallel mode): restore takes
/// `&self` because the executor and the runtime share the service.
///
/// Every `Arc<impl SharedSnapshotService>` is automatically a
/// [`SnapshotService`] (see the blanket impl), so one implementation
/// serves both execution modes without duplicate impls.
///
/// Callers must quiesce execution (no in-flight commands) before calling
/// [`SharedSnapshotService::restore_shared`]; implementations are not
/// required to make restore atomic with respect to concurrent execution.
pub trait SharedSnapshotService: ServiceState + Sync {
    /// Serializes the full service state.
    fn snapshot(&self) -> Vec<u8>;

    /// Replaces the service state with a previously captured snapshot.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when `bytes` is not a valid snapshot.
    fn restore_shared(&self, bytes: &[u8]) -> Result<(), SnapshotError>;
}

/// The object-safe union the durable sequential runtime works with: a
/// service that both executes and snapshots. Blanket-implemented — never
/// implement it directly.
pub trait RecoverableService: Service + SnapshotService {}

impl<S: Service + SnapshotService> RecoverableService for S {}

impl<S: ServiceState + ?Sized> ServiceState for Arc<S> {
    fn state_hash(&self) -> u64 {
        (**self).state_hash()
    }
}

/// Object-safe snapshot operations over a shared service, used by the
/// parallel runtime (which executes through a separate
/// `Arc<dyn ConflictAwareService>` handle and cannot upcast it on this
/// toolchain).
pub(crate) trait SharedSnapshotOps: Send + Sync {
    /// Serializes the full service state.
    fn snapshot(&self) -> Vec<u8>;
    /// Restores the service from snapshot bytes (caller must quiesce).
    fn restore(&self, bytes: &[u8]) -> Result<(), SnapshotError>;
    /// The service's state digest.
    fn state_hash(&self) -> u64;
}

/// The one implementation of [`SharedSnapshotOps`]: a second `Arc` handle
/// on the same service instance the executor runs.
pub(crate) struct SharedOps<S: ?Sized>(pub Arc<S>);

impl<S: SharedSnapshotService + Send + Sync + ?Sized> SharedSnapshotOps for SharedOps<S> {
    fn snapshot(&self) -> Vec<u8> {
        SharedSnapshotService::snapshot(&*self.0)
    }

    fn restore(&self, bytes: &[u8]) -> Result<(), SnapshotError> {
        self.0.restore_shared(bytes)
    }

    fn state_hash(&self) -> u64 {
        self.0.state_hash()
    }
}

/// Sequential adapter: a shared snapshot service behind an `Arc` is also
/// a plain [`SnapshotService`] (restore delegates to the shared variant).
impl<S: SharedSnapshotService + ?Sized> SnapshotService for Arc<S> {
    fn snapshot(&self) -> Vec<u8> {
        SharedSnapshotService::snapshot(&**self)
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        (**self).restore_shared(bytes)
    }
}

/// A [`Service`] that additionally declares, per command, which keys the
/// command touches — enabling dependency-aware parallel execution.
///
/// The parallel executor ([`crate::ParallelExecutor`]) serializes
/// commands whose [`KeySet`]s conflict (read/write or write/write on a
/// common key, or either set global) in decided-log order and runs
/// everything else concurrently on a worker pool. That is only sound if
/// the implementation upholds two contracts:
///
/// 1. **Footprint honesty** ([`ConflictAwareService::conflict_keys`]):
///    executing a command must read or write *only* state covered by the
///    keys it declared. Declaring too much costs parallelism; declaring
///    too little silently breaks replica determinism. When the footprint
///    cannot be determined from the payload, return [`KeySet::global`].
/// 2. **Conflict-serialized determinism**
///    ([`ConflictAwareService::execute`]): `execute` takes `&self` and is
///    called from several worker threads at once, but never concurrently
///    for two *conflicting* commands. Given that guarantee, the reply and
///    the state change must depend only on the current state of the
///    declared keys and the payload — exactly the [`Service`] determinism
///    rule, per key instead of per machine.
///
/// Any `Arc<impl ConflictAwareService>` is also a plain sequential
/// [`Service`] (see the blanket impl), so one implementation can run in
/// both execution modes and be compared for bit-identical state. The
/// state digest lives on the [`ServiceState`] supertrait, shared with
/// the sequential family.
pub trait ConflictAwareService: ServiceState + Send + Sync + 'static {
    /// Classifies one command: the keys it reads/writes, as hashes
    /// (use [`smr_types::key_hash`]). Must be a pure function of the
    /// payload.
    fn conflict_keys(&self, request: &[u8]) -> KeySet;

    /// Executes one request and returns the reply payload. Called
    /// concurrently, but never for two conflicting commands at once.
    fn execute(&self, request: &[u8]) -> Vec<u8>;
}

/// Sequential adapter: a shared conflict-aware service is also a plain
/// [`Service`], executing on the calling thread. This is what lets the
/// determinism tests run one implementation in both execution modes.
impl<S: ConflictAwareService + ?Sized> Service for Arc<S> {
    fn execute(&mut self, request: &[u8]) -> Vec<u8> {
        ConflictAwareService::execute(&**self, request)
    }
}

/// Combines one key/value pair into the commutative state digest used by
/// [`ConflictAwareService::state_hash`] implementations. The per-entry
/// hashes are combined with `wrapping_add`, so the digest is independent
/// of map iteration order.
fn entry_hash(key: &[u8], value: &[u8]) -> u64 {
    key_hash(key)
        .rotate_left(17)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ key_hash(value)
}

/// A decoded snapshot entry list: `(key, value)` pairs.
type Entries = Vec<(Vec<u8>, Vec<u8>)>;

/// Serializes sorted `(key, value)` entries as a snapshot blob: `u32`
/// count, then a length-prefixed key and value per entry. Shared by
/// [`KvService`] and [`ConcurrentKvService`] so their snapshots are
/// interchangeable, and by the map-shaped demo services.
fn encode_entries(entries: &[(Vec<u8>, Vec<u8>)]) -> Vec<u8> {
    let mut buf = BytesMut::new();
    let mut w = WireWriter::new(&mut buf);
    w.u32(entries.len() as u32);
    for (k, v) in entries {
        w.bytes(k);
        w.bytes(v);
    }
    buf.to_vec()
}

/// Inverse of [`encode_entries`].
fn decode_entries(bytes: &[u8]) -> Result<Entries, SnapshotError> {
    let mut r = WireReader::new(bytes);
    let parse = (|| {
        let count = r.u32()? as usize;
        let mut entries = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let k = r.bytes()?;
            let v = r.bytes()?;
            entries.push((k, v));
        }
        r.finish("kv snapshot")?;
        Ok::<_, smr_wire::DecodeError>(entries)
    })();
    parse.map_err(|e| SnapshotError::new(e.to_string()))
}

impl<F> Service for F
where
    F: FnMut(&[u8]) -> Vec<u8> + Send + 'static,
{
    fn execute(&mut self, request: &[u8]) -> Vec<u8> {
        self(request)
    }
}

/// The paper's evaluation service: ignores the request, replies with a
/// fixed-size byte array (8 bytes in the paper's workload).
#[derive(Debug, Clone)]
pub struct NullService {
    reply: Vec<u8>,
}

impl NullService {
    /// Creates a null service replying with `reply_size` zero bytes.
    pub fn new(reply_size: usize) -> Self {
        NullService {
            reply: vec![0u8; reply_size],
        }
    }
}

impl Default for NullService {
    fn default() -> Self {
        NullService::new(8)
    }
}

impl Service for NullService {
    fn execute(&mut self, _request: &[u8]) -> Vec<u8> {
        self.reply.clone()
    }
}

impl ServiceState for NullService {
    fn state_hash(&self) -> u64 {
        // The reply template is the entire state.
        key_hash(&self.reply)
    }
}

impl SnapshotService for NullService {
    fn snapshot(&self) -> Vec<u8> {
        self.reply.clone()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        self.reply = bytes.to_vec();
        Ok(())
    }
}

/// A replicated key-value store with a tiny binary command format.
///
/// Commands: `P <klen u16> key value` (put, replies previous value or
/// empty), `G <klen u16> key` (get), `D <klen u16> key` (delete).
/// Replies: `1 value` when a value is present, `0` otherwise.
#[derive(Debug, Default)]
pub struct KvService {
    map: HashMap<Vec<u8>, Vec<u8>>,
}

impl KvService {
    /// Creates an empty store.
    pub fn new() -> Self {
        KvService::default()
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Encodes a put command.
    pub fn put(key: &[u8], value: &[u8]) -> Vec<u8> {
        let mut cmd = vec![b'P'];
        cmd.extend_from_slice(&(key.len() as u16).to_le_bytes());
        cmd.extend_from_slice(key);
        cmd.extend_from_slice(value);
        cmd
    }

    /// Encodes a get command.
    pub fn get(key: &[u8]) -> Vec<u8> {
        let mut cmd = vec![b'G'];
        cmd.extend_from_slice(&(key.len() as u16).to_le_bytes());
        cmd.extend_from_slice(key);
        cmd
    }

    /// Encodes a delete command.
    pub fn delete(key: &[u8]) -> Vec<u8> {
        let mut cmd = vec![b'D'];
        cmd.extend_from_slice(&(key.len() as u16).to_le_bytes());
        cmd.extend_from_slice(key);
        cmd
    }

    /// Decodes a reply into the value it carries, if any.
    pub fn decode_value(reply: &[u8]) -> Option<Vec<u8>> {
        match reply.first() {
            Some(1) => Some(reply[1..].to_vec()),
            _ => None,
        }
    }

    /// Classifies a KV command for parallel execution: gets read their
    /// key, puts and deletes write it; anything unparseable is global
    /// (conflicts with everything), the conservative safe default.
    pub fn conflict_keys(request: &[u8]) -> KeySet {
        match Self::parse(request) {
            Some((b'G', key, _)) => KeySet::read(key_hash(key)),
            Some((b'P' | b'D', key, _)) => KeySet::write(key_hash(key)),
            _ => KeySet::global(),
        }
    }

    /// Every key/value pair, sorted by key — for test comparisons.
    pub fn entries(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut all: Vec<_> = self
            .map
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        all.sort();
        all
    }

    fn parse(request: &[u8]) -> Option<(u8, &[u8], &[u8])> {
        if request.len() < 3 {
            return None;
        }
        let op = request[0];
        let klen = u16::from_le_bytes([request[1], request[2]]) as usize;
        if request.len() < 3 + klen {
            return None;
        }
        let key = &request[3..3 + klen];
        let rest = &request[3 + klen..];
        Some((op, key, rest))
    }

    fn found(value: &[u8]) -> Vec<u8> {
        let mut r = vec![1u8];
        r.extend_from_slice(value);
        r
    }
}

impl ServiceState for KvService {
    /// Same digest function as [`ConcurrentKvService`]'s, so the two
    /// implementations can be compared across execution modes.
    fn state_hash(&self) -> u64 {
        self.map.iter().fold(self.map.len() as u64, |acc, (k, v)| {
            acc.wrapping_add(entry_hash(k, v))
        })
    }
}

impl SnapshotService for KvService {
    /// Snapshots are byte-for-byte interchangeable with
    /// [`ConcurrentKvService`]'s: a sequential replica can restore a
    /// parallel peer's snapshot and vice versa.
    fn snapshot(&self) -> Vec<u8> {
        encode_entries(&self.entries())
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        self.map = decode_entries(bytes)?.into_iter().collect();
        Ok(())
    }
}

impl Service for KvService {
    fn execute(&mut self, request: &[u8]) -> Vec<u8> {
        match Self::parse(request) {
            Some((b'P', key, value)) => match self.map.insert(key.to_vec(), value.to_vec()) {
                Some(old) => Self::found(&old),
                None => vec![0u8],
            },
            Some((b'G', key, _)) => match self.map.get(key) {
                Some(v) => Self::found(v),
                None => vec![0u8],
            },
            Some((b'D', key, _)) => match self.map.remove(key) {
                Some(old) => Self::found(&old),
                None => vec![0u8],
            },
            _ => vec![0u8],
        }
    }
}

/// The replicated key-value store built for parallel execution: the same
/// command format and replies as [`KvService`], with the map sharded
/// under fine-grained locks so non-conflicting commands can execute
/// concurrently on the worker pool.
///
/// The per-shard locks are *not* what makes execution deterministic —
/// the parallel executor's dependency graph already serializes
/// conflicting commands in decided order. The locks only make concurrent
/// access to unrelated keys that share a shard memory-safe; which thread
/// wins such a race is irrelevant because racing commands never touch
/// the same key.
///
/// # Examples
///
/// ```
/// use smr_core::{ConcurrentKvService, KvService};
///
/// let kv = ConcurrentKvService::new(4);
/// use smr_core::ConflictAwareService;
/// assert_eq!(kv.execute(&KvService::put(b"k", b"v")), vec![0]);
/// assert_eq!(
///     KvService::decode_value(&kv.execute(&KvService::get(b"k"))),
///     Some(b"v".to_vec())
/// );
/// ```
#[derive(Debug)]
pub struct ConcurrentKvService {
    shards: Vec<Mutex<HashMap<Vec<u8>, Vec<u8>>>>,
}

impl Default for ConcurrentKvService {
    fn default() -> Self {
        ConcurrentKvService::new(16)
    }
}

impl ConcurrentKvService {
    /// Creates an empty store with `shards` independently locked shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ConcurrentKvService {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, key: &[u8]) -> &Mutex<HashMap<Vec<u8>, Vec<u8>>> {
        &self.shards[(key_hash(key) >> 32) as usize % self.shards.len()]
    }

    /// Number of keys stored, across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every key/value pair, sorted by key — for test comparisons
    /// against [`KvService::entries`].
    pub fn entries(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut all: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for shard in &self.shards {
            let map = shard.lock();
            all.extend(map.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        all.sort();
        all
    }
}

impl ConflictAwareService for ConcurrentKvService {
    fn conflict_keys(&self, request: &[u8]) -> KeySet {
        KvService::conflict_keys(request)
    }

    fn execute(&self, request: &[u8]) -> Vec<u8> {
        match KvService::parse(request) {
            Some((b'P', key, value)) => {
                let mut shard = self.shard(key).lock();
                match shard.insert(key.to_vec(), value.to_vec()) {
                    Some(old) => KvService::found(&old),
                    None => vec![0u8],
                }
            }
            Some((b'G', key, _)) => {
                let shard = self.shard(key).lock();
                match shard.get(key) {
                    Some(v) => KvService::found(v),
                    None => vec![0u8],
                }
            }
            Some((b'D', key, _)) => {
                let mut shard = self.shard(key).lock();
                match shard.remove(key) {
                    Some(old) => KvService::found(&old),
                    None => vec![0u8],
                }
            }
            _ => vec![0u8],
        }
    }
}

impl ServiceState for ConcurrentKvService {
    fn state_hash(&self) -> u64 {
        let mut acc = 0u64;
        let mut count = 0u64;
        for shard in &self.shards {
            let map = shard.lock();
            count += map.len() as u64;
            for (k, v) in map.iter() {
                acc = acc.wrapping_add(entry_hash(k, v));
            }
        }
        count.wrapping_add(acc)
    }
}

impl SharedSnapshotService for ConcurrentKvService {
    /// Snapshots are byte-for-byte interchangeable with [`KvService`]'s.
    fn snapshot(&self) -> Vec<u8> {
        encode_entries(&self.entries())
    }

    fn restore_shared(&self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let entries = decode_entries(bytes)?;
        for shard in &self.shards {
            shard.lock().clear();
        }
        for (k, v) in entries {
            self.shard(&k).lock().insert(k, v);
        }
        Ok(())
    }
}

/// A Chubby-style replicated lock service.
///
/// Commands: `A <name>` acquire, `R <name>` release, `Q <name>` query.
/// The owner is the requesting client id, embedded in the command by
/// [`LockService::acquire`]. Replies: `1` success / lock held by you,
/// `0` failure / free.
#[derive(Debug, Default)]
pub struct LockService {
    /// lock name → owner token.
    locks: HashMap<Vec<u8>, u64>,
}

impl LockService {
    /// Creates a lock service with no locks held.
    pub fn new() -> Self {
        LockService::default()
    }

    /// Encodes an acquire command for `owner`.
    pub fn acquire(name: &[u8], owner: u64) -> Vec<u8> {
        let mut cmd = vec![b'A'];
        cmd.extend_from_slice(&owner.to_le_bytes());
        cmd.extend_from_slice(name);
        cmd
    }

    /// Encodes a release command for `owner`.
    pub fn release(name: &[u8], owner: u64) -> Vec<u8> {
        let mut cmd = vec![b'R'];
        cmd.extend_from_slice(&owner.to_le_bytes());
        cmd.extend_from_slice(name);
        cmd
    }

    /// Encodes a query command.
    pub fn query(name: &[u8]) -> Vec<u8> {
        let mut cmd = vec![b'Q'];
        cmd.extend_from_slice(&0u64.to_le_bytes());
        cmd.extend_from_slice(name);
        cmd
    }

    /// Whether a reply indicates success.
    pub fn granted(reply: &[u8]) -> bool {
        reply.first() == Some(&1)
    }
}

impl Service for LockService {
    fn execute(&mut self, request: &[u8]) -> Vec<u8> {
        if request.len() < 9 {
            return vec![0u8];
        }
        let op = request[0];
        let owner = u64::from_le_bytes(request[1..9].try_into().expect("8 bytes"));
        let name = request[9..].to_vec();
        let ok = match op {
            b'A' => match self.locks.get(&name) {
                None => {
                    self.locks.insert(name, owner);
                    true
                }
                Some(current) => *current == owner, // re-entrant
            },
            b'R' => match self.locks.get(&name) {
                Some(current) if *current == owner => {
                    self.locks.remove(&name);
                    true
                }
                _ => false,
            },
            b'Q' => self.locks.contains_key(&name),
            _ => false,
        };
        vec![u8::from(ok)]
    }
}

impl ServiceState for LockService {
    fn state_hash(&self) -> u64 {
        self.locks
            .iter()
            .fold(self.locks.len() as u64, |acc, (name, owner)| {
                acc.wrapping_add(entry_hash(name, &owner.to_le_bytes()))
            })
    }
}

impl SnapshotService for LockService {
    fn snapshot(&self) -> Vec<u8> {
        let mut entries: Vec<(Vec<u8>, Vec<u8>)> = self
            .locks
            .iter()
            .map(|(name, owner)| (name.clone(), owner.to_le_bytes().to_vec()))
            .collect();
        entries.sort();
        encode_entries(&entries)
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut locks = HashMap::new();
        for (name, owner) in decode_entries(bytes)? {
            let owner: [u8; 8] = owner
                .as_slice()
                .try_into()
                .map_err(|_| SnapshotError::new("lock owner is not 8 bytes"))?;
            locks.insert(name, u64::from_le_bytes(owner));
        }
        self.locks = locks;
        Ok(())
    }
}

/// A coordination-kernel primitive: named monotone sequencers
/// (ZooKeeper's sequential znodes in miniature).
///
/// Command: the sequencer name; reply: the next value (u64 LE), unique
/// and gap-free per name across the whole cluster.
#[derive(Debug, Default)]
pub struct SequencerService {
    counters: HashMap<Vec<u8>, u64>,
}

impl SequencerService {
    /// Creates a sequencer service with all counters at zero.
    pub fn new() -> Self {
        SequencerService::default()
    }

    /// Decodes a reply into the assigned sequence number.
    pub fn decode(reply: &[u8]) -> Option<u64> {
        reply.try_into().ok().map(u64::from_le_bytes)
    }
}

impl Service for SequencerService {
    fn execute(&mut self, request: &[u8]) -> Vec<u8> {
        let counter = self.counters.entry(request.to_vec()).or_insert(0);
        let value = *counter;
        *counter += 1;
        value.to_le_bytes().to_vec()
    }
}

impl ServiceState for SequencerService {
    fn state_hash(&self) -> u64 {
        self.counters
            .iter()
            .fold(self.counters.len() as u64, |acc, (name, next)| {
                acc.wrapping_add(entry_hash(name, &next.to_le_bytes()))
            })
    }
}

impl SnapshotService for SequencerService {
    fn snapshot(&self) -> Vec<u8> {
        let mut entries: Vec<(Vec<u8>, Vec<u8>)> = self
            .counters
            .iter()
            .map(|(name, next)| (name.clone(), next.to_le_bytes().to_vec()))
            .collect();
        entries.sort();
        encode_entries(&entries)
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut counters = HashMap::new();
        for (name, next) in decode_entries(bytes)? {
            let next: [u8; 8] = next
                .as_slice()
                .try_into()
                .map_err(|_| SnapshotError::new("sequencer counter is not 8 bytes"))?;
            counters.insert(name, u64::from_le_bytes(next));
        }
        self.counters = counters;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_service_fixed_reply() {
        let mut s = NullService::new(8);
        assert_eq!(s.execute(b"whatever").len(), 8);
        assert_eq!(s.execute(b"").len(), 8);
    }

    #[test]
    fn closure_is_a_service() {
        let mut s = |req: &[u8]| req.to_vec();
        assert_eq!(Service::execute(&mut s, b"echo"), b"echo");
    }

    #[test]
    fn kv_put_get_delete() {
        let mut kv = KvService::new();
        assert_eq!(kv.execute(&KvService::put(b"k", b"v1")), vec![0]);
        assert_eq!(kv.execute(&KvService::get(b"k")), KvService::found(b"v1"));
        assert_eq!(
            kv.execute(&KvService::put(b"k", b"v2")),
            KvService::found(b"v1")
        );
        assert_eq!(
            kv.execute(&KvService::delete(b"k")),
            KvService::found(b"v2")
        );
        assert_eq!(kv.execute(&KvService::get(b"k")), vec![0]);
        assert!(kv.is_empty());
    }

    #[test]
    fn kv_decode_value() {
        assert_eq!(KvService::decode_value(&[1, b'x']), Some(vec![b'x']));
        assert_eq!(KvService::decode_value(&[0]), None);
        assert_eq!(KvService::decode_value(&[]), None);
    }

    #[test]
    fn kv_garbage_request_is_harmless() {
        let mut kv = KvService::new();
        assert_eq!(kv.execute(b""), vec![0]);
        assert_eq!(kv.execute(&[b'P', 255, 255, 0]), vec![0]);
    }

    #[test]
    fn lock_lifecycle() {
        let mut s = LockService::new();
        assert!(LockService::granted(
            &s.execute(&LockService::acquire(b"L", 1))
        ));
        assert!(
            LockService::granted(&s.execute(&LockService::acquire(b"L", 1))),
            "re-entrant"
        );
        assert!(!LockService::granted(
            &s.execute(&LockService::acquire(b"L", 2))
        ));
        assert!(!LockService::granted(
            &s.execute(&LockService::release(b"L", 2))
        ));
        assert!(LockService::granted(
            &s.execute(&LockService::release(b"L", 1))
        ));
        assert!(LockService::granted(
            &s.execute(&LockService::acquire(b"L", 2))
        ));
    }

    #[test]
    fn lock_query() {
        let mut s = LockService::new();
        assert!(!LockService::granted(&s.execute(&LockService::query(b"L"))));
        s.execute(&LockService::acquire(b"L", 7));
        assert!(LockService::granted(&s.execute(&LockService::query(b"L"))));
    }

    #[test]
    fn sequencer_is_gap_free_per_name() {
        let mut s = SequencerService::new();
        assert_eq!(SequencerService::decode(&s.execute(b"a")), Some(0));
        assert_eq!(SequencerService::decode(&s.execute(b"a")), Some(1));
        assert_eq!(SequencerService::decode(&s.execute(b"b")), Some(0));
        assert_eq!(SequencerService::decode(&s.execute(b"a")), Some(2));
    }

    #[test]
    fn kv_snapshot_restore_roundtrip() {
        let mut kv = KvService::new();
        for i in 0..20u64 {
            kv.execute(&KvService::put(&i.to_le_bytes(), &(i * i).to_le_bytes()));
        }
        let blob = kv.snapshot();
        let mut restored = KvService::new();
        restored.restore(&blob).unwrap();
        assert_eq!(restored.entries(), kv.entries());
        assert_eq!(restored.state_hash(), kv.state_hash());
    }

    #[test]
    fn kv_snapshots_interchange_across_modes() {
        let mut seq = KvService::new();
        let par = ConcurrentKvService::new(4);
        for i in 0..20u64 {
            let cmd = KvService::put(&i.to_le_bytes(), b"value");
            seq.execute(&cmd);
            ConflictAwareService::execute(&par, &cmd);
        }
        assert_eq!(seq.state_hash(), par.state_hash());
        // Sequential snapshot restores into the parallel store…
        let fresh = ConcurrentKvService::new(7);
        fresh.restore_shared(&seq.snapshot()).unwrap();
        assert_eq!(fresh.state_hash(), seq.state_hash());
        assert_eq!(fresh.entries(), seq.entries());
        // …and the parallel snapshot restores into the sequential one.
        let mut back = KvService::new();
        back.restore(&SharedSnapshotService::snapshot(&par))
            .unwrap();
        assert_eq!(back.state_hash(), par.state_hash());
    }

    #[test]
    fn restore_replaces_existing_state() {
        let mut kv = KvService::new();
        kv.execute(&KvService::put(b"stale", b"state"));
        let mut reference = KvService::new();
        reference.execute(&KvService::put(b"k", b"v"));
        kv.restore(&reference.snapshot()).unwrap();
        assert_eq!(kv.entries(), reference.entries());
    }

    #[test]
    fn garbage_snapshot_rejected() {
        let mut kv = KvService::new();
        assert!(kv.restore(&[1, 2, 3]).is_err());
        let fresh = ConcurrentKvService::new(2);
        assert!(fresh.restore_shared(&[9, 9]).is_err());
    }

    #[test]
    fn arc_adapter_snapshots_shared_service() {
        let mut arc: Arc<ConcurrentKvService> = Arc::new(ConcurrentKvService::new(2));
        Service::execute(&mut arc, &KvService::put(b"k", b"v"));
        let blob = SnapshotService::snapshot(&arc);
        let mut restored = KvService::new();
        restored.restore(&blob).unwrap();
        assert_eq!(restored.state_hash(), arc.state_hash());
    }

    #[test]
    fn lock_snapshot_roundtrip() {
        let mut s = LockService::new();
        s.execute(&LockService::acquire(b"a", 1));
        s.execute(&LockService::acquire(b"b", 2));
        let mut restored = LockService::new();
        restored.restore(&s.snapshot()).unwrap();
        assert_eq!(restored.state_hash(), s.state_hash());
        assert!(LockService::granted(
            &restored.execute(&LockService::query(b"a"))
        ));
    }

    #[test]
    fn sequencer_snapshot_roundtrip() {
        let mut s = SequencerService::new();
        s.execute(b"a");
        s.execute(b"a");
        s.execute(b"b");
        let mut restored = SequencerService::new();
        restored.restore(&s.snapshot()).unwrap();
        assert_eq!(restored.state_hash(), s.state_hash());
        // The restored counter continues where the original left off.
        assert_eq!(SequencerService::decode(&restored.execute(b"a")), Some(2));
    }

    #[test]
    fn null_service_snapshot_roundtrip() {
        let s = NullService::new(16);
        let mut restored = NullService::new(1);
        restored.restore(&s.snapshot()).unwrap();
        assert_eq!(restored.state_hash(), s.state_hash());
        assert_eq!(restored.execute(b"x").len(), 16);
    }
}
