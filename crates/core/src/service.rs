//! The replicated service abstraction and ready-made services.
//!
//! The paper evaluates with a *null service* ("discards the payload of the
//! request and sends back a byte array of the size required") to isolate
//! the ordering path; real deployments replicate things like lock servers
//! (Chubby [1]) and coordination kernels (ZooKeeper [2]) — small,
//! CPU-light services for which the replication layer is the bottleneck.
//! This module ships all of those shapes.

use std::collections::HashMap;

/// A deterministic state machine replicated by the cluster.
///
/// Implementations must be deterministic: the reply and the state change
/// may depend only on the current state and the request payload, never on
/// time, randomness, or thread identity — every replica executes the same
/// sequence and must stay identical.
pub trait Service: Send + 'static {
    /// Executes one request and returns the reply payload.
    fn execute(&mut self, request: &[u8]) -> Vec<u8>;
}

impl<F> Service for F
where
    F: FnMut(&[u8]) -> Vec<u8> + Send + 'static,
{
    fn execute(&mut self, request: &[u8]) -> Vec<u8> {
        self(request)
    }
}

/// The paper's evaluation service: ignores the request, replies with a
/// fixed-size byte array (8 bytes in the paper's workload).
#[derive(Debug, Clone)]
pub struct NullService {
    reply: Vec<u8>,
}

impl NullService {
    /// Creates a null service replying with `reply_size` zero bytes.
    pub fn new(reply_size: usize) -> Self {
        NullService {
            reply: vec![0u8; reply_size],
        }
    }
}

impl Default for NullService {
    fn default() -> Self {
        NullService::new(8)
    }
}

impl Service for NullService {
    fn execute(&mut self, _request: &[u8]) -> Vec<u8> {
        self.reply.clone()
    }
}

/// A replicated key-value store with a tiny binary command format.
///
/// Commands: `P <klen u16> key value` (put, replies previous value or
/// empty), `G <klen u16> key` (get), `D <klen u16> key` (delete).
/// Replies: `1 value` when a value is present, `0` otherwise.
#[derive(Debug, Default)]
pub struct KvService {
    map: HashMap<Vec<u8>, Vec<u8>>,
}

impl KvService {
    /// Creates an empty store.
    pub fn new() -> Self {
        KvService::default()
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Encodes a put command.
    pub fn put(key: &[u8], value: &[u8]) -> Vec<u8> {
        let mut cmd = vec![b'P'];
        cmd.extend_from_slice(&(key.len() as u16).to_le_bytes());
        cmd.extend_from_slice(key);
        cmd.extend_from_slice(value);
        cmd
    }

    /// Encodes a get command.
    pub fn get(key: &[u8]) -> Vec<u8> {
        let mut cmd = vec![b'G'];
        cmd.extend_from_slice(&(key.len() as u16).to_le_bytes());
        cmd.extend_from_slice(key);
        cmd
    }

    /// Encodes a delete command.
    pub fn delete(key: &[u8]) -> Vec<u8> {
        let mut cmd = vec![b'D'];
        cmd.extend_from_slice(&(key.len() as u16).to_le_bytes());
        cmd.extend_from_slice(key);
        cmd
    }

    /// Decodes a reply into the value it carries, if any.
    pub fn decode_value(reply: &[u8]) -> Option<Vec<u8>> {
        match reply.first() {
            Some(1) => Some(reply[1..].to_vec()),
            _ => None,
        }
    }

    fn parse(request: &[u8]) -> Option<(u8, &[u8], &[u8])> {
        if request.len() < 3 {
            return None;
        }
        let op = request[0];
        let klen = u16::from_le_bytes([request[1], request[2]]) as usize;
        if request.len() < 3 + klen {
            return None;
        }
        let key = &request[3..3 + klen];
        let rest = &request[3 + klen..];
        Some((op, key, rest))
    }

    fn found(value: &[u8]) -> Vec<u8> {
        let mut r = vec![1u8];
        r.extend_from_slice(value);
        r
    }
}

impl Service for KvService {
    fn execute(&mut self, request: &[u8]) -> Vec<u8> {
        match Self::parse(request) {
            Some((b'P', key, value)) => match self.map.insert(key.to_vec(), value.to_vec()) {
                Some(old) => Self::found(&old),
                None => vec![0u8],
            },
            Some((b'G', key, _)) => match self.map.get(key) {
                Some(v) => Self::found(v),
                None => vec![0u8],
            },
            Some((b'D', key, _)) => match self.map.remove(key) {
                Some(old) => Self::found(&old),
                None => vec![0u8],
            },
            _ => vec![0u8],
        }
    }
}

/// A Chubby-style replicated lock service.
///
/// Commands: `A <name>` acquire, `R <name>` release, `Q <name>` query.
/// The owner is the requesting client id, embedded in the command by
/// [`LockService::acquire`]. Replies: `1` success / lock held by you,
/// `0` failure / free.
#[derive(Debug, Default)]
pub struct LockService {
    /// lock name → owner token.
    locks: HashMap<Vec<u8>, u64>,
}

impl LockService {
    /// Creates a lock service with no locks held.
    pub fn new() -> Self {
        LockService::default()
    }

    /// Encodes an acquire command for `owner`.
    pub fn acquire(name: &[u8], owner: u64) -> Vec<u8> {
        let mut cmd = vec![b'A'];
        cmd.extend_from_slice(&owner.to_le_bytes());
        cmd.extend_from_slice(name);
        cmd
    }

    /// Encodes a release command for `owner`.
    pub fn release(name: &[u8], owner: u64) -> Vec<u8> {
        let mut cmd = vec![b'R'];
        cmd.extend_from_slice(&owner.to_le_bytes());
        cmd.extend_from_slice(name);
        cmd
    }

    /// Encodes a query command.
    pub fn query(name: &[u8]) -> Vec<u8> {
        let mut cmd = vec![b'Q'];
        cmd.extend_from_slice(&0u64.to_le_bytes());
        cmd.extend_from_slice(name);
        cmd
    }

    /// Whether a reply indicates success.
    pub fn granted(reply: &[u8]) -> bool {
        reply.first() == Some(&1)
    }
}

impl Service for LockService {
    fn execute(&mut self, request: &[u8]) -> Vec<u8> {
        if request.len() < 9 {
            return vec![0u8];
        }
        let op = request[0];
        let owner = u64::from_le_bytes(request[1..9].try_into().expect("8 bytes"));
        let name = request[9..].to_vec();
        let ok = match op {
            b'A' => match self.locks.get(&name) {
                None => {
                    self.locks.insert(name, owner);
                    true
                }
                Some(current) => *current == owner, // re-entrant
            },
            b'R' => match self.locks.get(&name) {
                Some(current) if *current == owner => {
                    self.locks.remove(&name);
                    true
                }
                _ => false,
            },
            b'Q' => self.locks.contains_key(&name),
            _ => false,
        };
        vec![u8::from(ok)]
    }
}

/// A coordination-kernel primitive: named monotone sequencers
/// (ZooKeeper's sequential znodes in miniature).
///
/// Command: the sequencer name; reply: the next value (u64 LE), unique
/// and gap-free per name across the whole cluster.
#[derive(Debug, Default)]
pub struct SequencerService {
    counters: HashMap<Vec<u8>, u64>,
}

impl SequencerService {
    /// Creates a sequencer service with all counters at zero.
    pub fn new() -> Self {
        SequencerService::default()
    }

    /// Decodes a reply into the assigned sequence number.
    pub fn decode(reply: &[u8]) -> Option<u64> {
        reply.try_into().ok().map(u64::from_le_bytes)
    }
}

impl Service for SequencerService {
    fn execute(&mut self, request: &[u8]) -> Vec<u8> {
        let counter = self.counters.entry(request.to_vec()).or_insert(0);
        let value = *counter;
        *counter += 1;
        value.to_le_bytes().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_service_fixed_reply() {
        let mut s = NullService::new(8);
        assert_eq!(s.execute(b"whatever").len(), 8);
        assert_eq!(s.execute(b"").len(), 8);
    }

    #[test]
    fn closure_is_a_service() {
        let mut s = |req: &[u8]| req.to_vec();
        assert_eq!(Service::execute(&mut s, b"echo"), b"echo");
    }

    #[test]
    fn kv_put_get_delete() {
        let mut kv = KvService::new();
        assert_eq!(kv.execute(&KvService::put(b"k", b"v1")), vec![0]);
        assert_eq!(kv.execute(&KvService::get(b"k")), KvService::found(b"v1"));
        assert_eq!(
            kv.execute(&KvService::put(b"k", b"v2")),
            KvService::found(b"v1")
        );
        assert_eq!(
            kv.execute(&KvService::delete(b"k")),
            KvService::found(b"v2")
        );
        assert_eq!(kv.execute(&KvService::get(b"k")), vec![0]);
        assert!(kv.is_empty());
    }

    #[test]
    fn kv_decode_value() {
        assert_eq!(KvService::decode_value(&[1, b'x']), Some(vec![b'x']));
        assert_eq!(KvService::decode_value(&[0]), None);
        assert_eq!(KvService::decode_value(&[]), None);
    }

    #[test]
    fn kv_garbage_request_is_harmless() {
        let mut kv = KvService::new();
        assert_eq!(kv.execute(b""), vec![0]);
        assert_eq!(kv.execute(&[b'P', 255, 255, 0]), vec![0]);
    }

    #[test]
    fn lock_lifecycle() {
        let mut s = LockService::new();
        assert!(LockService::granted(
            &s.execute(&LockService::acquire(b"L", 1))
        ));
        assert!(
            LockService::granted(&s.execute(&LockService::acquire(b"L", 1))),
            "re-entrant"
        );
        assert!(!LockService::granted(
            &s.execute(&LockService::acquire(b"L", 2))
        ));
        assert!(!LockService::granted(
            &s.execute(&LockService::release(b"L", 2))
        ));
        assert!(LockService::granted(
            &s.execute(&LockService::release(b"L", 1))
        ));
        assert!(LockService::granted(
            &s.execute(&LockService::acquire(b"L", 2))
        ));
    }

    #[test]
    fn lock_query() {
        let mut s = LockService::new();
        assert!(!LockService::granted(&s.execute(&LockService::query(b"L"))));
        s.execute(&LockService::acquire(b"L", 7));
        assert!(LockService::granted(&s.execute(&LockService::query(b"L"))));
    }

    #[test]
    fn sequencer_is_gap_free_per_name() {
        let mut s = SequencerService::new();
        assert_eq!(SequencerService::decode(&s.execute(b"a")), Some(0));
        assert_eq!(SequencerService::decode(&s.execute(b"a")), Some(1));
        assert_eq!(SequencerService::decode(&s.execute(b"b")), Some(0));
        assert_eq!(SequencerService::decode(&s.execute(b"a")), Some(2));
    }
}
