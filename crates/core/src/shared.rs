//! Lock-free state shared between modules.
//!
//! The paper's no-lock rule (§V-C): cross-module coordination happens
//! through queues, or through shared variables only when they can be read
//! and written atomically without exposing inconsistent state. This
//! module collects exactly those variables:
//!
//! * the current view / leader / leadership flag, written by the Protocol
//!   thread, read by ClientIO (redirects) and the FailureDetector;
//! * the decided frontier, written by the Protocol thread, read by the
//!   FailureDetector (to stamp heartbeats);
//! * per-peer last-send / last-receive timestamps, written by ReplicaIO
//!   threads, read by the FailureDetector (§V-C3: timestamps only grow,
//!   so the detector can re-check after the original delay without locks
//!   or wakeups);
//! * the client connection table, written by ClientIO threads, read by
//!   the ServiceManager to route replies (sharded like the reply cache).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU16, AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use smr_types::{ClientId, ReplicaId, Slot, View};

/// Atomically readable replica state.
#[derive(Debug)]
pub struct SharedState {
    view: AtomicU64,
    leader: AtomicU16,
    is_leader: AtomicBool,
    decided_upto: AtomicU64,
    last_recv_ns: Vec<AtomicU64>,
    last_send_ns: Vec<AtomicU64>,
    start: Instant,
    client_table: Vec<Mutex<HashMap<u64, (usize, u64)>>>,
}

impl SharedState {
    /// Creates shared state for a cluster of `n` replicas.
    pub fn new(n: usize) -> Self {
        SharedState {
            view: AtomicU64::new(0),
            leader: AtomicU16::new(0),
            is_leader: AtomicBool::new(false),
            decided_upto: AtomicU64::new(0),
            last_recv_ns: (0..n).map(|_| AtomicU64::new(0)).collect(),
            last_send_ns: (0..n).map(|_| AtomicU64::new(0)).collect(),
            start: Instant::now(),
            client_table: (0..64).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    /// Monotonic nanoseconds since this replica started.
    pub fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Publishes a view change (Protocol thread only).
    pub fn set_view(&self, view: View, leader: ReplicaId, me: ReplicaId) {
        self.view.store(view.0, Ordering::Release);
        self.leader.store(leader.0, Ordering::Release);
        self.is_leader.store(leader == me, Ordering::Release);
    }

    /// Current view.
    pub fn view(&self) -> View {
        View(self.view.load(Ordering::Acquire))
    }

    /// Best-known leader.
    pub fn leader(&self) -> ReplicaId {
        ReplicaId(self.leader.load(Ordering::Acquire))
    }

    /// Whether this replica currently leads.
    pub fn is_leader(&self) -> bool {
        self.is_leader.load(Ordering::Acquire)
    }

    /// Publishes the decided frontier (Protocol thread only).
    pub fn set_decided_upto(&self, slot: Slot) {
        self.decided_upto.store(slot.0, Ordering::Release);
    }

    /// The decided frontier.
    pub fn decided_upto(&self) -> Slot {
        Slot(self.decided_upto.load(Ordering::Acquire))
    }

    /// Stamps a receive from `peer` (ReplicaIORcv threads).
    pub fn note_recv(&self, peer: ReplicaId) {
        self.last_recv_ns[peer.index()].store(self.now_ns().max(1), Ordering::Release);
    }

    /// Stamps a send to `peer` (ReplicaIOSnd threads).
    pub fn note_send(&self, peer: ReplicaId) {
        self.last_send_ns[peer.index()].store(self.now_ns().max(1), Ordering::Release);
    }

    /// Last receive timestamp from `peer` (0 = never).
    pub fn last_recv_ns(&self, peer: ReplicaId) -> u64 {
        self.last_recv_ns[peer.index()].load(Ordering::Acquire)
    }

    /// Last send timestamp to `peer` (0 = never).
    pub fn last_send_ns(&self, peer: ReplicaId) -> u64 {
        self.last_send_ns[peer.index()].load(Ordering::Acquire)
    }

    /// Records that `client` is served by ClientIO thread `cio` over
    /// connection `conn` (ClientIO threads).
    pub fn bind_client(&self, client: ClientId, cio: usize, conn: u64) {
        let shard = client.0 as usize % self.client_table.len();
        self.client_table[shard]
            .lock()
            .insert(client.0, (cio, conn));
    }

    /// Looks up the route to `client` (ServiceManager thread).
    pub fn client_route(&self, client: ClientId) -> Option<(usize, u64)> {
        let shard = client.0 as usize % self.client_table.len();
        self.client_table[shard].lock().get(&client.0).copied()
    }

    /// Forgets a client route (on disconnect).
    pub fn unbind_client(&self, client: ClientId) {
        let shard = client.0 as usize % self.client_table.len();
        self.client_table[shard].lock().remove(&client.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_roundtrip() {
        let s = SharedState::new(3);
        s.set_view(View(4), ReplicaId(1), ReplicaId(1));
        assert_eq!(s.view(), View(4));
        assert_eq!(s.leader(), ReplicaId(1));
        assert!(s.is_leader());
        s.set_view(View(5), ReplicaId(2), ReplicaId(1));
        assert!(!s.is_leader());
    }

    #[test]
    fn timestamps_grow() {
        let s = SharedState::new(2);
        assert_eq!(s.last_recv_ns(ReplicaId(1)), 0, "never heard from peer");
        s.note_recv(ReplicaId(1));
        let t1 = s.last_recv_ns(ReplicaId(1));
        assert!(t1 > 0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        s.note_recv(ReplicaId(1));
        assert!(s.last_recv_ns(ReplicaId(1)) >= t1);
    }

    #[test]
    fn client_routes() {
        let s = SharedState::new(1);
        assert_eq!(s.client_route(ClientId(9)), None);
        s.bind_client(ClientId(9), 2, 77);
        assert_eq!(s.client_route(ClientId(9)), Some((2, 77)));
        s.unbind_client(ClientId(9));
        assert_eq!(s.client_route(ClientId(9)), None);
    }

    #[test]
    fn decided_upto_roundtrip() {
        let s = SharedState::new(1);
        s.set_decided_upto(Slot(42));
        assert_eq!(s.decided_upto(), Slot(42));
    }
}
