//! The synchronous client library.
//!
//! Clients follow the paper's workload model: persistent connections, one
//! outstanding request at a time, retransmission on timeout. At-most-once
//! execution is guaranteed by the replicas' reply cache, so retrying is
//! always safe.

use std::time::{Duration, Instant};

use smr_net::{ClientEndpoint, NetError};
use smr_types::{ClientId, ReplicaId, RequestId, SeqNum, SmrError};
use smr_wire::{ClientMsg, Codec, Request};

/// Factory producing a fresh connection to a given replica.
pub type Connector = Box<dyn FnMut(ReplicaId) -> Result<Box<dyn ClientEndpoint>, NetError> + Send>;

/// A synchronous replicated-service client.
///
/// Issues one request at a time (closed loop), transparently following
/// leader redirects and retransmitting on timeouts.
pub struct SmrClient {
    id: ClientId,
    seq: u64,
    n: usize,
    connector: Connector,
    endpoints: Vec<Option<Box<dyn ClientEndpoint>>>,
    current: usize,
    per_try: Duration,
    overall: Duration,
}

impl std::fmt::Debug for SmrClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmrClient")
            .field("id", &self.id)
            .field("seq", &self.seq)
            .finish()
    }
}

impl SmrClient {
    /// Creates a client for a cluster of `n` replicas.
    ///
    /// `connector` opens a connection to a replica on demand; connections
    /// are cached and re-opened when broken.
    pub fn new(id: ClientId, n: usize, connector: Connector) -> Self {
        SmrClient {
            id,
            seq: 0,
            n,
            connector,
            endpoints: (0..n).map(|_| None).collect(),
            current: 0,
            per_try: Duration::from_millis(500),
            overall: Duration::from_secs(30),
        }
    }

    /// Overrides the per-attempt and overall timeouts.
    #[must_use]
    pub fn with_timeouts(mut self, per_try: Duration, overall: Duration) -> Self {
        self.per_try = per_try;
        self.overall = overall;
        self
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Number of requests issued so far.
    pub fn requests_sent(&self) -> u64 {
        self.seq
    }

    fn rotate(&mut self) {
        self.current = (self.current + 1) % self.n;
    }

    /// Executes `payload` on the replicated service and returns the reply.
    ///
    /// Retries transparently across timeouts, broken connections, and
    /// leader changes; the reply cache on the replicas makes retries safe.
    ///
    /// # Errors
    ///
    /// [`SmrError::Timeout`] when the overall deadline expires without a
    /// reply (e.g. no majority of replicas is reachable).
    pub fn execute(&mut self, payload: &[u8]) -> Result<Vec<u8>, SmrError> {
        let request = Request::new(RequestId::new(self.id, SeqNum(self.seq)), payload.to_vec());
        self.seq += 1;
        let deadline = Instant::now() + self.overall;
        let frame = ClientMsg::Request(request.clone()).encode_to_vec();
        let mut tries = 0u32;
        loop {
            if Instant::now() >= deadline {
                return Err(SmrError::Timeout);
            }
            let idx = self.current;
            // Take the endpoint out so we can borrow self mutably later.
            let mut ep = match self.endpoints[idx].take() {
                Some(ep) => ep,
                None => match (self.connector)(ReplicaId(idx as u16)) {
                    Ok(ep) => ep,
                    Err(_) => {
                        self.rotate();
                        std::thread::sleep(Duration::from_millis(10));
                        continue;
                    }
                },
            };
            if ep.send(frame.clone()).is_err() {
                self.rotate();
                continue; // endpoint dropped; reconnect on next loop
            }
            match self.await_reply(&mut ep, &request, deadline) {
                AwaitOutcome::Reply(reply) => {
                    self.endpoints[idx] = Some(ep);
                    return Ok(reply);
                }
                AwaitOutcome::Redirect(Some(leader)) => {
                    self.endpoints[idx] = Some(ep);
                    self.current = leader.index() % self.n;
                    // Give a freshly elected leader a moment to settle.
                    std::thread::sleep(Duration::from_millis(2));
                }
                AwaitOutcome::Redirect(None) => {
                    self.endpoints[idx] = Some(ep);
                    self.rotate();
                    std::thread::sleep(Duration::from_millis(10));
                }
                AwaitOutcome::Timeout => {
                    self.endpoints[idx] = Some(ep);
                    tries += 1;
                    // Periodically try another replica in case the leader
                    // moved without telling us.
                    if tries % 2 == 0 {
                        self.rotate();
                    }
                }
                AwaitOutcome::Broken => {
                    self.rotate();
                }
            }
        }
    }

    fn await_reply(
        &mut self,
        ep: &mut Box<dyn ClientEndpoint>,
        request: &Request,
        deadline: Instant,
    ) -> AwaitOutcome {
        let try_deadline = (Instant::now() + self.per_try).min(deadline);
        loop {
            let remaining = try_deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return AwaitOutcome::Timeout;
            }
            match ep.recv_timeout(remaining) {
                Ok(Some(frame)) => match ClientMsg::decode(&frame) {
                    Ok(ClientMsg::Reply(reply)) if reply.id == request.id => {
                        return AwaitOutcome::Reply(reply.payload)
                    }
                    Ok(ClientMsg::Reply(_)) => continue, // stale reply
                    Ok(ClientMsg::Redirect { leader }) => return AwaitOutcome::Redirect(leader),
                    _ => continue,
                },
                Ok(None) => return AwaitOutcome::Timeout,
                Err(_) => return AwaitOutcome::Broken,
            }
        }
    }
}

enum AwaitOutcome {
    Reply(Vec<u8>),
    Redirect(Option<ReplicaId>),
    Timeout,
    Broken,
}
