//! Property tests for the reply cache: both implementations agree with a
//! sequential model, and at-most-once semantics hold under arbitrary
//! interleavings of lookups, executions, and retries.

use proptest::prelude::*;

use smr_core::{CacheOutcome, CoarseReplyCache, ExecuteOutcome, ReplyCache, ShardedReplyCache};
use smr_types::{ClientId, RequestId, SeqNum};

#[derive(Debug, Clone)]
enum Op {
    Lookup { client: u8, seq: u8 },
    Execute { client: u8, seq: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 0u8..16).prop_map(|(c, s)| Op::Lookup {
            client: c % 4,
            seq: s
        }),
        (any::<u8>(), 0u8..16).prop_map(|(c, s)| Op::Execute {
            client: c % 4,
            seq: s
        }),
    ]
}

/// Reference model: per client, the highest executed seq and its reply.
#[derive(Default)]
struct Model {
    last: std::collections::HashMap<u64, (u64, Vec<u8>)>,
}

impl Model {
    fn lookup(&self, client: u64, seq: u64) -> CacheOutcome {
        match self.last.get(&client) {
            Some((l, r)) if seq == *l => CacheOutcome::Hit(r.clone()),
            Some((l, _)) if seq < *l => CacheOutcome::Stale,
            _ => CacheOutcome::Miss,
        }
    }

    fn execute(&mut self, client: u64, seq: u64) -> ExecuteOutcome {
        match self.last.get(&client) {
            Some((l, r)) if seq == *l => ExecuteOutcome::Duplicate(Some(r.clone())),
            Some((l, _)) if seq < *l => ExecuteOutcome::Duplicate(None),
            _ => {
                let reply = vec![client as u8, seq as u8];
                self.last.insert(client, (seq, reply));
                ExecuteOutcome::Fresh
            }
        }
    }
}

fn check_against_model(cache: &dyn ReplyCache, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut model = Model::default();
    for op in ops {
        match op {
            Op::Lookup { client, seq } => {
                let id = RequestId::new(ClientId(*client as u64), SeqNum(*seq as u64));
                prop_assert_eq!(
                    cache.lookup(id),
                    model.lookup(*client as u64, *seq as u64),
                    "lookup {:?}",
                    op
                );
            }
            Op::Execute { client, seq } => {
                let id = RequestId::new(ClientId(*client as u64), SeqNum(*seq as u64));
                let expected = model.execute(*client as u64, *seq as u64);
                let actual = cache.check_execute(id);
                prop_assert_eq!(&actual, &expected, "execute {:?}", op);
                if matches!(actual, ExecuteOutcome::Fresh) {
                    cache.record(id, vec![*client, *seq]);
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sharded_matches_model(ops in proptest::collection::vec(arb_op(), 0..200)) {
        check_against_model(&ShardedReplyCache::new(8), &ops)?;
    }

    #[test]
    fn coarse_matches_model(ops in proptest::collection::vec(arb_op(), 0..200)) {
        check_against_model(&CoarseReplyCache::new(), &ops)?;
    }

    #[test]
    fn implementations_agree(ops in proptest::collection::vec(arb_op(), 0..200)) {
        let sharded = ShardedReplyCache::new(4);
        let coarse = CoarseReplyCache::new();
        for op in &ops {
            match op {
                Op::Lookup { client, seq } => {
                    let id = RequestId::new(ClientId(*client as u64), SeqNum(*seq as u64));
                    prop_assert_eq!(sharded.lookup(id), coarse.lookup(id));
                }
                Op::Execute { client, seq } => {
                    let id = RequestId::new(ClientId(*client as u64), SeqNum(*seq as u64));
                    let a = sharded.check_execute(id);
                    let b = coarse.check_execute(id);
                    prop_assert_eq!(&a, &b);
                    if matches!(a, ExecuteOutcome::Fresh) {
                        sharded.record(id, vec![1]);
                        coarse.record(id, vec![1]);
                    }
                }
            }
        }
    }
}
