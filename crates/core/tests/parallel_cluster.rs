//! End-to-end tests of the opt-in parallel execution mode inside the
//! full replica runtime: a cluster whose ServiceManagers schedule
//! decided commands onto worker pools must be indistinguishable — to
//! clients and across replicas — from the default sequential cluster.

use std::sync::Arc;
use std::time::{Duration, Instant};

use smr_core::{ConcurrentKvService, InProcessCluster, KvService, ServiceState};
use smr_types::{ClusterConfig, ReplicaId};

fn small_config(n: usize) -> ClusterConfig {
    ClusterConfig::builder(n)
        .heartbeat_interval(Duration::from_millis(40))
        .suspect_timeout(Duration::from_millis(200))
        .build()
        .unwrap()
}

/// Runs `ops` through a fresh cluster and returns the replies.
fn run_workload(cluster: &InProcessCluster, ops: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let mut client = cluster.client();
    ops.iter().map(|op| client.execute(op).unwrap()).collect()
}

fn workload() -> Vec<Vec<u8>> {
    // Conflict-heavy: 8 keys, interleaved puts/gets/deletes.
    let mut ops = Vec::new();
    for round in 0..30u8 {
        for key in 0..8u8 {
            let k = [b'k', key];
            ops.push(match (round + key) % 4 {
                0 | 1 => KvService::put(&k, &[round, key]),
                2 => KvService::get(&k),
                _ => KvService::delete(&k),
            });
        }
    }
    ops
}

/// Waits until every replica's service has converged to one state hash
/// (followers apply decisions asynchronously) and returns it.
fn converged_hash(services: &[Arc<ConcurrentKvService>]) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let hashes: Vec<u64> = services.iter().map(|s| s.state_hash()).collect();
        if hashes.windows(2).all(|w| w[0] == w[1]) {
            return hashes[0];
        }
        assert!(
            Instant::now() < deadline,
            "replicas did not converge: {hashes:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn parallel_cluster_serves_the_kv_contract() {
    let cluster = InProcessCluster::start_parallel(
        small_config(3),
        |_| Arc::new(ConcurrentKvService::default()) as _,
        4,
    );
    let mut client = cluster.client();
    for i in 0..50u32 {
        let key = format!("key-{}", i % 10);
        let value = format!("value-{i}");
        client
            .execute(&KvService::put(key.as_bytes(), value.as_bytes()))
            .unwrap();
    }
    for i in 40..50u32 {
        let key = format!("key-{}", i % 10);
        let got = client.execute(&KvService::get(key.as_bytes())).unwrap();
        assert_eq!(
            KvService::decode_value(&got),
            Some(format!("value-{i}").into_bytes())
        );
    }
    cluster.shutdown();
}

#[test]
fn sequential_and_parallel_modes_produce_identical_state_and_replies() {
    let ops = workload();

    // Sequential mode, plain KvService.
    let seq_services: Vec<Arc<ConcurrentKvService>> = (0..3)
        .map(|_| Arc::new(ConcurrentKvService::default()))
        .collect();
    let seq_cluster = {
        let services = seq_services.clone();
        // The sequential cluster runs the *same* service type through the
        // blanket `Service for Arc<S: ConflictAwareService>` adapter, so
        // the comparison isolates the execution mode.
        InProcessCluster::start(small_config(3), move |id: ReplicaId| {
            Box::new(Arc::clone(&services[id.index()]))
        })
    };
    let seq_replies = run_workload(&seq_cluster, &ops);
    let seq_hash = converged_hash(&seq_services);
    seq_cluster.shutdown();

    // Parallel mode, 4 workers.
    let par_services: Vec<Arc<ConcurrentKvService>> = (0..3)
        .map(|_| Arc::new(ConcurrentKvService::default()))
        .collect();
    let par_cluster = {
        let services = par_services.clone();
        InProcessCluster::start_parallel(
            small_config(3),
            move |id: ReplicaId| Arc::clone(&services[id.index()]) as _,
            4,
        )
    };
    let par_replies = run_workload(&par_cluster, &ops);
    let par_hash = converged_hash(&par_services);
    par_cluster.shutdown();

    assert_eq!(seq_replies, par_replies, "same replies in both modes");
    assert_eq!(seq_hash, par_hash, "same final state in both modes");
    assert_eq!(
        seq_services[0].entries(),
        par_services[0].entries(),
        "bit-identical entries"
    );
}

#[test]
fn parallel_replicas_agree_under_concurrent_clients() {
    let services: Vec<Arc<ConcurrentKvService>> = (0..3)
        .map(|_| Arc::new(ConcurrentKvService::default()))
        .collect();
    let cluster = {
        let services = services.clone();
        Arc::new(InProcessCluster::start_parallel(
            small_config(3),
            move |id: ReplicaId| Arc::clone(&services[id.index()]) as _,
            4,
        ))
    };
    // Several clients race on an overlapping key space.
    let threads: Vec<_> = (0..6u8)
        .map(|c| {
            let cluster = Arc::clone(&cluster);
            std::thread::spawn(move || {
                let mut client = cluster.client();
                for i in 0..40u8 {
                    let key = [b'k', i % 5];
                    let op = if i % 3 == 0 {
                        KvService::get(&key)
                    } else {
                        KvService::put(&key, &[c, i])
                    };
                    client.execute(&op).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    converged_hash(&services); // asserts agreement
    Arc::try_unwrap(cluster).unwrap().shutdown();
}
