//! End-to-end tests of the evented ClientIO mode: the readiness-loop
//! client path must be indistinguishable from the thread-per-connection
//! default (same replies, same state), must isolate slow readers behind
//! per-connection outbound buffering, and must tolerate large numbers of
//! idle connections.

use std::sync::Arc;
use std::time::{Duration, Instant};

use smr_core::{ConcurrentKvService, EventedIoOptions, InProcessCluster, KvService, ServiceState};
use smr_types::{ClientId, ClusterConfig, ReplicaId, RequestId, SeqNum};
use smr_wire::{ClientMsg, Codec, Request};

fn small_config(n: usize) -> ClusterConfig {
    ClusterConfig::builder(n)
        .heartbeat_interval(Duration::from_millis(40))
        .suspect_timeout(Duration::from_millis(200))
        .build()
        .unwrap()
}

/// Runs `ops` through a fresh cluster and returns the replies.
fn run_workload(cluster: &InProcessCluster, ops: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let mut client = cluster.client();
    ops.iter().map(|op| client.execute(op).unwrap()).collect()
}

fn workload() -> Vec<Vec<u8>> {
    // Conflict-heavy: 8 keys, interleaved puts/gets/deletes.
    let mut ops = Vec::new();
    for round in 0..30u8 {
        for key in 0..8u8 {
            let k = [b'k', key];
            ops.push(match (round + key) % 4 {
                0 | 1 => KvService::put(&k, &[round, key]),
                2 => KvService::get(&k),
                _ => KvService::delete(&k),
            });
        }
    }
    ops
}

/// Waits until every replica's service has converged to one state hash
/// (followers apply decisions asynchronously) and returns it.
fn converged_hash(services: &[Arc<ConcurrentKvService>]) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let hashes: Vec<u64> = services.iter().map(|s| s.state_hash()).collect();
        if hashes.windows(2).all(|w| w[0] == w[1]) {
            return hashes[0];
        }
        assert!(
            Instant::now() < deadline,
            "replicas did not converge: {hashes:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn evented_and_threaded_modes_produce_identical_state_and_replies() {
    let ops = workload();

    // Thread-per-connection mode (the compat default).
    let thr_services: Vec<Arc<ConcurrentKvService>> = (0..3)
        .map(|_| Arc::new(ConcurrentKvService::default()))
        .collect();
    let thr_cluster = {
        let services = thr_services.clone();
        InProcessCluster::start(small_config(3), move |id: ReplicaId| {
            Box::new(Arc::clone(&services[id.index()]))
        })
    };
    let thr_replies = run_workload(&thr_cluster, &ops);
    let thr_hash = converged_hash(&thr_services);
    thr_cluster.shutdown();

    // Evented mode: same service type, same workload, readiness-loop
    // ClientIO with a 2-thread pool.
    let ev_services: Vec<Arc<ConcurrentKvService>> = (0..3)
        .map(|_| Arc::new(ConcurrentKvService::default()))
        .collect();
    let ev_cluster = {
        let services = ev_services.clone();
        InProcessCluster::start_with(small_config(3), move |id, builder| {
            builder
                .with_service(Box::new(Arc::clone(&services[id.index()])))
                .with_evented_client_io(2, EventedIoOptions::default())
        })
    };
    let ev_replies = run_workload(&ev_cluster, &ops);
    let ev_hash = converged_hash(&ev_services);
    ev_cluster.shutdown();

    assert_eq!(thr_replies, ev_replies, "same replies in both modes");
    assert_eq!(thr_hash, ev_hash, "same final state in both modes");
    assert_eq!(
        thr_services[0].entries(),
        ev_services[0].entries(),
        "bit-identical entries"
    );
}

#[test]
fn slow_reader_does_not_stall_other_clients() {
    // Single replica, single evented ClientIO thread: the slow reader and
    // the healthy client share one loop, so any blocking send to the slow
    // reader would stall the healthy client's replies.
    let cluster = InProcessCluster::start_with(small_config(1), |_, builder| {
        builder
            .with_service(Box::new(KvService::new()))
            .with_evented_client_io(1, EventedIoOptions::default())
    });

    // Establish leadership first: a raw connection gets a Redirect (not a
    // Reply) for anything sent before the election settles, and unlike a
    // real client it never retries.
    let mut client = cluster.client();
    client
        .execute(&KvService::put(b"warmup", b"1"))
        .expect("warm-up op");

    // A raw connection that sends requests but never reads replies. The
    // in-memory outbound queue holds 64 frames; past that, `try_send`
    // refuses and the evented loop must park replies in the connection's
    // overflow buffer instead of blocking.
    const SLOW_REQUESTS: u64 = 120;
    let mut slow = cluster
        .hub()
        .connect_client(ReplicaId(0))
        .expect("connect raw client");
    for seq in 0..SLOW_REQUESTS {
        let request = Request::new(
            RequestId::new(ClientId(7777), SeqNum(seq)),
            KvService::put(b"slow", &seq.to_le_bytes()),
        );
        use smr_net::ClientEndpoint;
        slow.send(ClientMsg::Request(request).encode_to_vec())
            .expect("slow client send");
    }

    // While the slow reader's replies pile up, a normal client must keep
    // making progress on the same ClientIO thread.
    for i in 0..40u32 {
        client
            .execute(&KvService::put(b"healthy", &i.to_le_bytes()))
            .expect("healthy client must not be stalled by the slow reader");
    }

    // Once the slow reader finally drains, every buffered reply must
    // arrive: nothing was dropped while it overflowed the transport.
    let mut got = 0u64;
    let deadline = Instant::now() + Duration::from_secs(10);
    while got < SLOW_REQUESTS {
        use smr_net::ClientEndpoint;
        match slow.recv_timeout(Duration::from_millis(500)) {
            Ok(Some(frame)) => {
                if let Ok(ClientMsg::Reply(_)) = ClientMsg::decode(&frame) {
                    got += 1;
                }
            }
            Ok(None) => {}
            Err(e) => panic!("slow client connection died: {e}"),
        }
        assert!(
            Instant::now() < deadline,
            "slow reader only recovered {got}/{SLOW_REQUESTS} replies"
        );
    }

    cluster.shutdown();
}

#[test]
fn many_idle_connections_do_not_stall_active_clients() {
    const IDLE_CONNS: usize = 500;
    const OPS: u32 = 60;

    fn start_evented() -> InProcessCluster {
        InProcessCluster::start_with(small_config(1), |_, builder| {
            builder
                .with_service(Box::new(KvService::new()))
                .with_evented_client_io(2, EventedIoOptions::default())
        })
    }

    fn timed_ops(cluster: &InProcessCluster) -> Duration {
        let mut client = cluster.client();
        let start = Instant::now();
        for i in 0..OPS {
            client
                .execute(&KvService::put(b"active", &i.to_le_bytes()))
                .unwrap();
        }
        start.elapsed()
    }

    // Baseline: no idle connections.
    let cluster = start_evented();
    let baseline = timed_ops(&cluster);
    cluster.shutdown();

    // Same cluster shape with 500 connected-but-silent clients adopted
    // into the evented loops before the workload starts.
    let cluster = start_evented();
    let idle: Vec<_> = (0..IDLE_CONNS)
        .map(|_| cluster.hub().connect_client(ReplicaId(0)).unwrap())
        .collect();
    // Give the acceptor a moment to fan all of them into the pool.
    std::thread::sleep(Duration::from_millis(200));
    let with_idle = timed_ops(&cluster);
    drop(idle);
    cluster.shutdown();

    // Idle connections cost at most a readiness check each; allow a
    // generous noise factor for a loaded single-core CI host.
    assert!(
        with_idle <= baseline * 4 + Duration::from_secs(2),
        "500 idle connections degraded throughput: baseline {baseline:?}, with idle {with_idle:?}"
    );
}
