//! Property: dependency-aware parallel execution is indistinguishable
//! from sequential execution. For random conflict-heavy KV workloads
//! (many clients hammering a small key space, so write/write and
//! read/write dependencies are dense), the [`smr_core::ParallelExecutor`]
//! must produce
//!
//! 1. a bit-identical final service state,
//! 2. bit-identical replies per request, and
//! 3. each client's replies in that client's issue order,
//!
//! for any worker count. This is the replicated-determinism contract
//! that lets different replicas use different pool sizes (or mix
//! sequential and parallel modes) and still agree.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::collection;
use proptest::prelude::*;
use smr_core::{ConcurrentKvService, KvService, ParallelExecutor, Service, ServiceState};
use smr_types::{ClientId, RequestId, SeqNum};
use smr_wire::Request;

/// One generated operation: `(kind, client, key, value-tag)`.
type Op = (u8, u8, u8, u8);

fn command(op: &Op) -> Vec<u8> {
    let (kind, _client, key, tag) = *op;
    let key = [b'k', key];
    match kind % 4 {
        // Writes dominate so the dependency graph stays dense.
        0 | 1 => KvService::put(&key, &[b'v', tag]),
        2 => KvService::get(&key),
        _ => KvService::delete(&key),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_execution_is_bit_identical_to_sequential(
        ops in collection::vec((0u8..4, 0u8..6, 0u8..5, 0u8..16), 1..160),
        workers in 1usize..5,
    ) {
        // Sequential reference: one KvService in generated order.
        let mut reference = KvService::new();
        let mut expected_replies: Vec<Vec<u8>> = Vec::new();
        for op in &ops {
            expected_replies.push(reference.execute(&command(op)));
        }

        // Parallel run: same commands, same decided order, each client's
        // sequence numbers increasing in issue order.
        let service = Arc::new(ConcurrentKvService::new(4));
        let mut exec = ParallelExecutor::new(service.clone(), workers);
        let mut next_seq: HashMap<u8, u64> = HashMap::new();
        let mut ids: Vec<RequestId> = Vec::new();
        for op in &ops {
            let seq = next_seq.entry(op.1).or_insert(0);
            let id = RequestId::new(ClientId(u64::from(op.1)), SeqNum(*seq));
            *seq += 1;
            ids.push(id);
            exec.submit(Request::new(id, command(op)));
        }
        let mut replies: Vec<(RequestId, Option<Vec<u8>>)> = Vec::new();
        exec.wait_idle(&mut replies);
        exec.shutdown();

        // (1) Bit-identical final state.
        prop_assert_eq!(service.entries(), reference.entries());
        prop_assert_eq!(service.state_hash(), reference.state_hash());

        // (2) Bit-identical reply per request.
        prop_assert_eq!(replies.len(), ops.len());
        let by_id: HashMap<RequestId, &Option<Vec<u8>>> =
            replies.iter().map(|(id, r)| (*id, r)).collect();
        for (id, expected) in ids.iter().zip(&expected_replies) {
            let got = by_id.get(id).expect("every request replied");
            prop_assert_eq!(got.as_ref(), Some(expected));
        }

        // (3) Per-client completion order is issue order.
        let mut last_seen: HashMap<ClientId, u64> = HashMap::new();
        for (id, _) in &replies {
            if let Some(prev) = last_seen.insert(id.client, id.seq.0) {
                prop_assert!(
                    id.seq.0 > prev,
                    "client {:?} replied out of order: {} after {}",
                    id.client, id.seq.0, prev
                );
            }
        }
    }
}
