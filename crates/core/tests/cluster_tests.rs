//! End-to-end integration tests of the threaded replica runtime over the
//! in-memory fabric: ordering, concurrency, failover, catch-up, and
//! at-most-once semantics.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use smr_core::{InProcessCluster, KvService, NullService, SequencerService};
use smr_types::{ClusterConfig, ReplicaId};

fn small_config(n: usize) -> ClusterConfig {
    ClusterConfig::builder(n)
        .heartbeat_interval(Duration::from_millis(40))
        .suspect_timeout(Duration::from_millis(200))
        .build()
        .unwrap()
}

#[test]
fn null_service_roundtrip() {
    let cluster = InProcessCluster::start(small_config(3), |_| Box::new(NullService::new(8)));
    let mut client = cluster.client();
    for _ in 0..20 {
        let reply = client.execute(&[7u8; 128]).unwrap();
        assert_eq!(reply.len(), 8);
    }
    cluster.shutdown();
}

#[test]
fn kv_state_is_replicated_consistently() {
    let cluster = InProcessCluster::start(small_config(3), |_| Box::new(KvService::new()));
    let mut client = cluster.client();
    for i in 0..50u32 {
        let key = format!("key-{}", i % 10);
        let value = format!("value-{i}");
        client
            .execute(&KvService::put(key.as_bytes(), value.as_bytes()))
            .unwrap();
    }
    for i in 40..50u32 {
        let key = format!("key-{}", i % 10);
        let got = client.execute(&KvService::get(key.as_bytes())).unwrap();
        assert_eq!(
            KvService::decode_value(&got),
            Some(format!("value-{i}").into_bytes())
        );
    }
    cluster.shutdown();
}

#[test]
fn many_concurrent_clients_get_unique_sequence_numbers() {
    // The sequencer service hands out gap-free unique numbers only if
    // every replica executes the same total order exactly once.
    let cluster = Arc::new(InProcessCluster::start(small_config(3), |_| {
        Box::new(SequencerService::new())
    }));
    let clients = 16;
    let per_client = 25;
    let seen: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let threads: Vec<_> = (0..clients)
        .map(|_| {
            let cluster = Arc::clone(&cluster);
            let seen = Arc::clone(&seen);
            std::thread::spawn(move || {
                let mut client = cluster.client();
                for _ in 0..per_client {
                    let reply = client.execute(b"ticket").unwrap();
                    let n = SequencerService::decode(&reply).unwrap();
                    seen.lock().unwrap().push(n);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let mut values = seen.lock().unwrap().clone();
    values.sort_unstable();
    let unique: HashSet<u64> = values.iter().copied().collect();
    assert_eq!(unique.len(), clients * per_client, "every ticket unique");
    assert_eq!(
        *values.last().unwrap(),
        (clients * per_client - 1) as u64,
        "gap-free"
    );
    Arc::into_inner(cluster)
        .expect("all clients done")
        .shutdown();
}

#[test]
fn leader_crash_elects_new_leader_and_keeps_serving() {
    let cluster = InProcessCluster::start(small_config(3), |_| Box::new(KvService::new()));
    let mut client = cluster.client();
    client
        .execute(&KvService::put(b"before", b"crash"))
        .unwrap();
    // Kill the leader (replica 0 leads view 0) at the network level.
    cluster.crash(ReplicaId(0));
    // The cluster must recover: new leader elected, old data preserved.
    let got = client.execute(&KvService::get(b"before")).unwrap();
    assert_eq!(KvService::decode_value(&got), Some(b"crash".to_vec()));
    client.execute(&KvService::put(b"after", b"crash")).unwrap();
    let got = client.execute(&KvService::get(b"after")).unwrap();
    assert_eq!(KvService::decode_value(&got), Some(b"crash".to_vec()));
    // A new leader is in place on the survivors.
    let v1 = cluster.replica(ReplicaId(1)).shared().view();
    let v2 = cluster.replica(ReplicaId(2)).shared().view();
    assert!(
        v1.0 > 0 || v2.0 > 0,
        "view advanced past the crashed leader"
    );
    cluster.shutdown();
}

#[test]
fn minority_crash_does_not_block_n5() {
    let cluster = InProcessCluster::start(small_config(5), |_| Box::new(NullService::new(8)));
    let mut client = cluster.client();
    client.execute(b"warmup").unwrap();
    cluster.crash(ReplicaId(3));
    cluster.crash(ReplicaId(4));
    for _ in 0..10 {
        client.execute(&[1u8; 64]).unwrap();
    }
    cluster.shutdown();
}

#[test]
fn healed_replica_catches_up() {
    let cluster = InProcessCluster::start(small_config(3), |_| Box::new(NullService::new(8)));
    let mut client = cluster.client();
    client.execute(b"w").unwrap();
    // Partition replica 2 away, then push traffic through the other two.
    cluster.crash(ReplicaId(2));
    for _ in 0..30 {
        client.execute(&[2u8; 64]).unwrap();
    }
    let frontier_leader = cluster.replica(ReplicaId(0)).shared().decided_upto();
    assert!(frontier_leader.0 > 0);
    // Heal and wait for catch-up (driven by heartbeats + catch-up query).
    cluster.heal(ReplicaId(2));
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let behind = cluster.replica(ReplicaId(2)).shared().decided_upto();
        if behind >= frontier_leader {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "replica 2 stuck at {behind} < {frontier_leader}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    cluster.shutdown();
}

#[test]
fn lossy_network_still_makes_progress() {
    let cluster = InProcessCluster::start(small_config(3), |_| Box::new(NullService::new(8)));
    cluster.hub().set_loss(0.05); // 5% frame loss on replica links
    let mut client = cluster.client();
    for _ in 0..30 {
        client.execute(&[3u8; 64]).unwrap();
    }
    cluster.shutdown();
}

#[test]
fn per_thread_profiles_are_collected() {
    let cluster = InProcessCluster::start(small_config(3), |_| Box::new(NullService::new(8)));
    let mut client = cluster.client();
    for _ in 0..50 {
        client.execute(&[0u8; 128]).unwrap();
    }
    let snapshot = cluster.replica(ReplicaId(0)).metrics().snapshot();
    let names: Vec<&str> = snapshot.threads.iter().map(|t| t.name.as_str()).collect();
    for expected in [
        "ClientIO-0",
        "Batcher",
        "Protocol",
        "Replica",
        "FailureDetector",
        "Retransmitter",
    ] {
        assert!(
            names.contains(&expected),
            "profile for {expected} missing: {names:?}"
        );
    }
    // The paper's key property: time is overwhelmingly waiting, not
    // blocked, at low load.
    let table = snapshot.render_table();
    assert!(table.contains("busy%"));
    cluster.shutdown();
}

#[test]
fn duplicate_requests_execute_once() {
    // A sequencer makes duplicate execution visible: re-executing would
    // burn a ticket.
    let cluster = InProcessCluster::start(small_config(3), |_| Box::new(SequencerService::new()));
    let mut c1 = cluster.client();
    let first = SequencerService::decode(&c1.execute(b"t").unwrap()).unwrap();
    let second = SequencerService::decode(&c1.execute(b"t").unwrap()).unwrap();
    assert_eq!((first, second), (0, 1));
    // A fresh client continues the sequence: still no gaps.
    let mut c2 = cluster.client();
    let third = SequencerService::decode(&c2.execute(b"t").unwrap()).unwrap();
    assert_eq!(third, 2);
    cluster.shutdown();
}

#[test]
fn queue_lengths_observable() {
    let cluster = InProcessCluster::start(small_config(3), |_| Box::new(NullService::new(8)));
    let (rq, pq, dq) = cluster.replica(ReplicaId(0)).queue_lengths();
    assert!(rq <= 1000 && pq <= 20 && dq <= 4096);
    cluster.shutdown();
}
