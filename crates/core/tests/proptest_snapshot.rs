//! Property: snapshot → restore is state-identical in both execution
//! modes. For random KV workloads, snapshotting a service and restoring
//! the bytes into a fresh instance must reproduce the exact state digest
//! — whether the source is the sequential [`KvService`], the sharded
//! [`ConcurrentKvService`], or one restored from the *other*
//! implementation's snapshot (the wire format is shared, so snapshots
//! can cross execution modes, e.g. a sequential replica installing a
//! parallel peer's snapshot during catch-up).

use proptest::collection;
use proptest::prelude::*;
use smr_core::{
    ConcurrentKvService, ConflictAwareService, KvService, Service, ServiceState,
    SharedSnapshotService, SnapshotService,
};

/// One generated operation: `(kind, key, value-tag)`.
type Op = (u8, u8, u8);

fn command(op: &Op) -> Vec<u8> {
    let (kind, key, tag) = *op;
    let key = [b'k', key];
    match kind % 4 {
        0 | 1 => KvService::put(&key, &[b'v', tag]),
        2 => KvService::get(&key),
        _ => KvService::delete(&key),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn snapshot_restore_is_state_identical_in_both_modes(
        ops in collection::vec((0u8..4, 0u8..24, 0u8..16), 0..120),
    ) {
        // Build the same state in both implementations.
        let mut sequential = KvService::new();
        let concurrent = ConcurrentKvService::new(4);
        for op in &ops {
            let cmd = command(op);
            sequential.execute(&cmd);
            concurrent.execute(&cmd);
        }
        prop_assert_eq!(sequential.state_hash(), concurrent.state_hash());

        // Sequential snapshot → fresh sequential service.
        let snap_seq = SnapshotService::snapshot(&sequential);
        let mut restored_seq = KvService::new();
        restored_seq.restore(&snap_seq).unwrap();
        prop_assert_eq!(restored_seq.state_hash(), sequential.state_hash());

        // Parallel snapshot → fresh parallel service.
        let snap_par = SharedSnapshotService::snapshot(&concurrent);
        let restored_par = ConcurrentKvService::new(4);
        restored_par.restore_shared(&snap_par).unwrap();
        prop_assert_eq!(restored_par.state_hash(), concurrent.state_hash());

        // Cross-mode: each implementation restores the other's bytes.
        let mut cross_seq = KvService::new();
        cross_seq.restore(&snap_par).unwrap();
        prop_assert_eq!(cross_seq.state_hash(), sequential.state_hash());
        let cross_par = ConcurrentKvService::new(4);
        cross_par.restore_shared(&snap_seq).unwrap();
        prop_assert_eq!(cross_par.state_hash(), concurrent.state_hash());
    }
}
