//! End-to-end smoke test of the observability surface (ISSUE 8): a
//! 3-replica in-process cluster under load must export parseable JSON
//! with every expected top-level key, live stage histograms, queue
//! statistics from the depth sampler, and a metrics dump file on disk.

use std::time::Duration;

use smr_core::{InProcessCluster, NullService};
use smr_metrics::json::JsonValue;
use smr_types::{ClusterConfig, ReplicaId};

const TOP_LEVEL_KEYS: [&str; 6] = [
    "replica",
    "uptime_ns",
    "threads",
    "counters",
    "histograms",
    "queues",
];

fn leader(cluster: &InProcessCluster) -> ReplicaId {
    cluster
        .config()
        .replicas()
        .find(|id| cluster.replica(*id).shared().is_leader())
        .expect("a leader is elected")
}

#[test]
fn cluster_exports_parseable_metrics_json() {
    let dump_root = std::env::temp_dir().join(format!(
        "metrics-smoke-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dump_root).unwrap();
    let cluster = InProcessCluster::start_with(ClusterConfig::new(3), |id, builder| {
        builder
            .with_service(Box::new(NullService::default()))
            .with_queue_sampler(Duration::from_millis(1))
            .with_metrics_dump(
                dump_root.join(format!("replica-{}.json", id.0)),
                Duration::from_millis(20),
            )
    });
    let mut client = cluster.client();
    for _ in 0..200 {
        client.execute(&[0u8; 64]).expect("request executes");
    }

    let doc = cluster.replica(leader(&cluster)).metrics_json();
    let v = JsonValue::parse(&doc).expect("metrics JSON parses");
    for key in TOP_LEVEL_KEYS {
        assert!(v.get(key).is_some(), "missing top-level key {key}");
    }

    // The leader ordered every request, so all six stage transitions
    // must have live histograms.
    let hists = v.get("histograms").and_then(JsonValue::as_array).unwrap();
    let names: Vec<&str> = hists
        .iter()
        .filter_map(|h| h.get("name").and_then(JsonValue::as_str))
        .collect();
    for stage in [
        "stage.intake_to_sealed",
        "stage.sealed_to_proposed",
        "stage.proposed_to_decided",
        "stage.decided_to_executed",
        "stage.executed_to_reply",
        "stage.intake_to_reply",
    ] {
        assert!(names.contains(&stage), "leader missing {stage}: {names:?}");
    }
    for h in hists {
        let count = h.get("count").and_then(JsonValue::as_f64).unwrap();
        let p50 = h.get("p50_ns").and_then(JsonValue::as_f64).unwrap();
        let p99 = h.get("p99_ns").and_then(JsonValue::as_f64).unwrap();
        let max = h.get("max_ns").and_then(JsonValue::as_f64).unwrap();
        assert!(count > 0.0, "exported histograms are non-empty");
        assert!(p50 <= p99 && p99 <= max * 1.0001, "percentiles ordered");
    }

    // Queue statistics: the RequestQueue moved every request, and the
    // 1ms sampler had time to take depth samples.
    let queues = v.get("queues").and_then(JsonValue::as_array).unwrap();
    let rq = queues
        .iter()
        .find(|q| q.get("name").and_then(JsonValue::as_str) == Some("RequestQueue"))
        .expect("RequestQueue registered");
    assert!(rq.get("pushed").and_then(JsonValue::as_f64).unwrap() >= 200.0);
    assert!(
        rq.get("depth_samples").and_then(JsonValue::as_f64).unwrap() > 0.0,
        "depth sampler ran"
    );

    cluster.shutdown();

    // Shutdown writes one final dump per replica; each must parse with
    // the full schema.
    for id in 0..3u16 {
        let path = dump_root.join(format!("replica-{id}.json"));
        let doc = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("dump file {} missing: {e}", path.display()));
        let v = JsonValue::parse(&doc).expect("dump file parses");
        for key in TOP_LEVEL_KEYS {
            assert!(v.get(key).is_some(), "dump missing top-level key {key}");
        }
        assert_eq!(
            v.get("replica").and_then(JsonValue::as_f64),
            Some(f64::from(id)),
            "dump carries its replica id"
        );
    }
    std::fs::remove_dir_all(&dump_root).unwrap();
}

#[test]
fn stage_metrics_off_exports_no_stage_histograms() {
    let cluster = InProcessCluster::start_with(ClusterConfig::new(3), |_, builder| {
        builder
            .with_service(Box::new(NullService::default()))
            .with_stage_metrics(false)
    });
    let mut client = cluster.client();
    for _ in 0..50 {
        client.execute(&[0u8; 64]).expect("request executes");
    }
    let snap = cluster.replica(leader(&cluster)).metrics_snapshot();
    assert!(
        snap.histograms
            .iter()
            .all(|h| !h.name.starts_with("stage.")),
        "stage histograms stay empty (and unexported) when disabled: {:?}",
        snap.histograms
    );
    // The rest of the surface still works.
    assert!(!snap.threads.is_empty());
    assert!(snap.queue("RequestQueue").is_some());
    cluster.shutdown();
}
