//! Microbench + ablation: sharded vs coarse-locked reply cache under
//! concurrent access.
//!
//! §V-D: the reply cache is "queried by each ClientIO thread when a
//! client request is received, and updated by the ServiceManager thread
//! when a request is executed … a conventional hash table based on
//! coarse-grained locking performs poorly in this situation". This bench
//! is the ablation: same workload, fine-grained vs coarse locking.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use smr_core::{CoarseReplyCache, ReplyCache, ShardedReplyCache};
use smr_types::{ClientId, RequestId, SeqNum};

fn hammer(cache: Arc<dyn ReplyCache>, threads: usize, ops_per_thread: u64) {
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                for i in 0..ops_per_thread {
                    let id = RequestId::new(ClientId(((t as u64) << 32) | (i % 512)), SeqNum(i));
                    // ClientIO-style probe + ServiceManager-style update.
                    let _ = cache.lookup(id);
                    cache.record(id, vec![0u8; 8]);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

fn bench_reply_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("reply_cache");
    group.sample_size(20);

    for threads in [1usize, 4, 8] {
        group.bench_function(format!("sharded_16_{threads}_threads"), |b| {
            b.iter(|| hammer(Arc::new(ShardedReplyCache::new(16)), threads, 2_000));
        });
        group.bench_function(format!("coarse_{threads}_threads"), |b| {
            b.iter(|| hammer(Arc::new(CoarseReplyCache::new()), threads, 2_000));
        });
    }

    group.finish();
}

criterion_group!(benches, bench_reply_cache);
criterion_main!(benches);
