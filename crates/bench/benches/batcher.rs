//! Microbench: batch formation throughput (the Batcher thread's inner
//! loop, §V-C1).
//!
//! The paper justifies a dedicated Batcher thread by its measured load:
//! "the total execution time of the Batcher thread can exceed 50% of a
//! CPU". This bench measures the pure batching cost per request at the
//! paper's parameters (BSZ=1300, 128-byte requests).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use smr_paxos::BatchBuilder;
use smr_types::{BatchPolicy, ClientId, RequestId, SeqNum};
use smr_wire::Request;

fn bench_batcher(c: &mut Criterion) {
    let mut group = c.benchmark_group("batcher");
    group.sample_size(40);

    let requests: Vec<Request> = (0..1024)
        .map(|i| Request::new(RequestId::new(ClientId(i), SeqNum(1)), vec![0u8; 128]))
        .collect();

    for bsz in [650usize, 1300, 5200] {
        group.throughput(Throughput::Elements(requests.len() as u64));
        group.bench_function(format!("fill_batches_bsz{bsz}"), |b| {
            let policy = BatchPolicy {
                max_bytes: bsz,
                ..BatchPolicy::default()
            };
            b.iter(|| {
                let mut builder = BatchBuilder::new(policy);
                let mut batches = 0;
                for req in &requests {
                    if builder.push(req.clone(), 0).is_some() {
                        batches += 1;
                    }
                }
                std::hint::black_box(batches)
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_batcher);
criterion_main!(benches);
