//! Microbench: wire codec throughput.
//!
//! §VI-B: "reading and writing requests represent a significant fraction
//! of the CPU utilization in state machine replication" — the codec's
//! per-message cost is exactly what the ClientIO/ReplicaIO cost-model
//! entries stand for.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use smr_types::{ClientId, RequestId, SeqNum, Slot, View};
use smr_wire::{Batch, Codec, ProtocolMsg, Request};

fn paper_batch() -> ProtocolMsg {
    // The paper's steady-state unit: a BSZ=1300 batch of 8 x 128-byte
    // requests proposed for one slot.
    let reqs: Vec<Request> = (0..8)
        .map(|i| Request::new(RequestId::new(ClientId(i), SeqNum(1)), vec![7u8; 128]))
        .collect();
    ProtocolMsg::Propose {
        view: View(3),
        slot: Slot(1000),
        batch: Batch::new(reqs),
    }
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    group.sample_size(40);

    let request = Request::new(RequestId::new(ClientId(9), SeqNum(77)), vec![0u8; 128]);
    group.throughput(Throughput::Bytes(request.encoded_len() as u64));
    group.bench_function("encode_request_128B", |b| {
        b.iter(|| std::hint::black_box(&request).encode_to_vec());
    });
    let bytes = request.encode_to_vec();
    group.bench_function("decode_request_128B", |b| {
        b.iter(|| Request::decode(std::hint::black_box(&bytes)).unwrap());
    });

    let propose = paper_batch();
    group.throughput(Throughput::Bytes(propose.encoded_len() as u64));
    group.bench_function("encode_propose_bsz1300", |b| {
        b.iter(|| std::hint::black_box(&propose).encode_to_vec());
    });
    let bytes = propose.encode_to_vec();
    group.bench_function("decode_propose_bsz1300", |b| {
        b.iter(|| ProtocolMsg::decode(std::hint::black_box(&bytes)).unwrap());
    });

    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
