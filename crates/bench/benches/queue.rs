//! Microbench: the instrumented BoundedQueue vs a plain channel baseline.
//!
//! The inter-module queues are on the per-request critical path (a
//! request crosses at least four of them), so their overhead bounds the
//! whole architecture's throughput.

use criterion::{criterion_group, criterion_main, Criterion};

use smr_queue::BoundedQueue;

fn bench_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue");
    group.sample_size(30);

    group.bench_function("bounded_push_pop_uncontended", |b| {
        let q = BoundedQueue::new("bench", 1024);
        b.iter(|| {
            q.push(std::hint::black_box(42u64)).unwrap();
            std::hint::black_box(q.pop().unwrap());
        });
    });

    // With the vendored crossbeam shim this is std::sync::mpsc under the
    // hood, so it is labelled as a generic channel baseline rather than
    // claiming real crossbeam numbers.
    group.bench_function("channel_baseline_push_pop_uncontended", |b| {
        let (tx, rx) = crossbeam::channel::bounded(1024);
        b.iter(|| {
            tx.send(std::hint::black_box(42u64)).unwrap();
            std::hint::black_box(rx.recv().unwrap());
        });
    });

    group.bench_function("bounded_mpsc_4_producers", |b| {
        b.iter_custom(|iters| {
            let q = BoundedQueue::new("bench", 1024);
            let per = iters / 4 + 1;
            let start = std::time::Instant::now();
            let producers: Vec<_> = (0..4)
                .map(|_| {
                    let q = q.clone();
                    std::thread::spawn(move || {
                        for i in 0..per {
                            q.push(i).unwrap();
                        }
                    })
                })
                .collect();
            let mut received = 0;
            while received < per * 4 {
                if q.pop().is_ok() {
                    received += 1;
                }
            }
            for p in producers {
                p.join().unwrap();
            }
            start.elapsed()
        });
    });

    group.finish();
}

criterion_group!(benches, bench_queue);
criterion_main!(benches);
