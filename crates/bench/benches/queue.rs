//! Microbench: the instrumented BoundedQueue vs a plain channel baseline.
//!
//! The inter-module queues are on the per-request critical path (a
//! request crosses at least four of them), so their overhead bounds the
//! whole architecture's throughput. The bulk-op and contended-MPMC cases
//! measure the batch fast path: a burst moves under one lock acquisition
//! with one condvar notification, instead of paying both per item.

use criterion::{criterion_group, criterion_main, Criterion};

use smr_queue::BoundedQueue;

/// Items per bulk burst in the bulk-op benches.
const BURST: u64 = 64;

fn bench_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue");
    group.sample_size(30);

    group.bench_function("bounded_push_pop_uncontended", |b| {
        b.iter_custom(|iters| smr_bench::queue_uncontended_scalar(iters).1);
    });

    // With the vendored crossbeam shim this is std::sync::mpsc under the
    // hood, so it is labelled as a generic channel baseline rather than
    // claiming real crossbeam numbers.
    group.bench_function("channel_baseline_push_pop_uncontended", |b| {
        let (tx, rx) = crossbeam::channel::bounded(1024);
        b.iter(|| {
            tx.send(std::hint::black_box(42u64)).unwrap();
            std::hint::black_box(rx.recv().unwrap());
        });
    });

    // ns/iter here is per item, not per burst: the shared harness moves
    // `iters` items in bursts of 64.
    group.bench_function("bounded_bulk_push_pop_batch64", |b| {
        b.iter_custom(|iters| smr_bench::queue_uncontended_bulk(iters, BURST).1);
    });

    group.bench_function("bounded_mpmc_4x4_scalar", |b| {
        b.iter_custom(|iters| smr_bench::mpmc_4x4_scalar(iters).1);
    });

    group.bench_function("bounded_mpmc_4x4_bulk", |b| {
        b.iter_custom(|iters| smr_bench::mpmc_4x4_bulk(iters, BURST).1);
    });

    // The retained mutex reference core on the identical contended
    // workloads: the ring-vs-mutex comparison inside one bench run.
    group.bench_function("mutex_core_mpmc_4x4_scalar", |b| {
        b.iter_custom(|iters| smr_bench::mpmc_4x4_scalar_mutex(iters).1);
    });

    group.bench_function("mutex_core_mpmc_4x4_bulk", |b| {
        b.iter_custom(|iters| smr_bench::mpmc_4x4_bulk_mutex(iters, BURST).1);
    });

    group.bench_function("bounded_mpsc_4_producers", |b| {
        b.iter_custom(|iters| {
            let q = BoundedQueue::new("bench", 1024);
            let per = iters / 4 + 1;
            let start = std::time::Instant::now();
            let producers: Vec<_> = (0..4)
                .map(|_| {
                    let q = q.clone();
                    std::thread::spawn(move || {
                        for i in 0..per {
                            q.push(i).unwrap();
                        }
                    })
                })
                .collect();
            let mut received = 0;
            while received < per * 4 {
                if q.pop().is_ok() {
                    received += 1;
                }
            }
            for p in producers {
                p.join().unwrap();
            }
            start.elapsed()
        });
    });

    group.finish();
}

criterion_group!(benches, bench_queue);
criterion_main!(benches);
