//! Figures 6 & 7: JPaxos on the 8-core edel cluster.
//!
//! Paper reference points: near-linear speedup reaching ~7 at 8 cores,
//! throughput just above 80K requests/s, the network subsystem *not*
//! saturated (the curve still rising), CPU utilization ~300–350% at the
//! leader, total blocked time under ~20%.

use smr_sim_jpaxos::{run_experiment, ExperimentConfig};

fn main() {
    let cores_axis: Vec<usize> = if std::env::args().any(|a| a == "--quick") {
        vec![1, 4, 8]
    } else {
        vec![1, 2, 3, 4, 5, 6, 7, 8]
    };
    for n in [3usize, 5] {
        smr_bench::banner(
            &format!("Fig 6/7 (edel, n={n})"),
            "throughput + speedup + CPU + blocked time vs cores (8-core nodes)",
        );
        let mut rows = Vec::new();
        let mut base = None;
        for &cores in &cores_axis {
            let r = run_experiment(&ExperimentConfig::edel(n, cores));
            let base_tput = *base.get_or_insert(r.throughput_rps);
            let leader = r.replicas.last().unwrap();
            let follower = &r.replicas[0];
            rows.push(vec![
                cores.to_string(),
                smr_bench::kreq(r.throughput_rps),
                smr_bench::fmt(r.throughput_rps / base_tput, 2),
                smr_bench::fmt(leader.cpu_util_pct, 0),
                smr_bench::fmt(follower.cpu_util_pct, 0),
                smr_bench::fmt(leader.blocked_pct, 1),
                smr_bench::fmt(r.leader_tx_pps / 1000.0, 0),
            ]);
        }
        println!(
            "{}",
            smr_bench::render_table(
                &[
                    "cores",
                    "req/s(x1000)",
                    "speedup",
                    "leaderCPU%",
                    "followerCPU%",
                    "leaderBlk%",
                    "tx(Kpps)"
                ],
                &rows,
            )
        );
    }
}
