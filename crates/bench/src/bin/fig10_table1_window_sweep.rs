//! Figure 10 + Table I: performance as a function of the pipelining
//! window `WND` (parapluie, 24 cores, n=3, BSZ=1300).
//!
//! Paper reference points: throughput rises from ~100K requests/s at
//! WND=10 to a peak of ~120K at WND=35, then falls back to ~110K at
//! WND=50; instance latency grows steadily ~1→3.5ms; batches stay full;
//! the average number of parallel ballots tracks WND closely until ~45.
//! Table I: RequestQueue average occupancy falls 630→256 as WND grows,
//! ProposalQueue stays ~15/20, DispatcherQueue stays nearly empty.

use smr_sim_jpaxos::{run_experiment, ExperimentConfig};

fn main() {
    let wnds: Vec<usize> = if std::env::args().any(|a| a == "--quick") {
        vec![10, 35, 50]
    } else {
        vec![10, 15, 20, 25, 30, 35, 40, 45, 50]
    };
    smr_bench::banner(
        "Fig 10 + Table I (parapluie, 24 cores, n=3, BSZ=1300)",
        "throughput, instance latency, batch size, window occupancy, queue sizes vs WND",
    );
    let mut rows = Vec::new();
    for &wnd in &wnds {
        let mut cfg = ExperimentConfig::parapluie(3, 24);
        cfg.wnd = wnd;
        let r = run_experiment(&cfg);
        rows.push(vec![
            wnd.to_string(),
            smr_bench::kreq(r.throughput_rps),
            smr_bench::fmt(r.instance_latency_ms, 2),
            smr_bench::fmt(r.avg_batch_requests, 1),
            smr_bench::fmt(r.avg_window, 2),
            format!("{:.1}±{:.1}", r.request_queue.0, r.request_queue.1),
            format!("{:.2}±{:.2}", r.proposal_queue.0, r.proposal_queue.1),
            format!("{:.2}±{:.2}", r.dispatcher_queue.0, r.dispatcher_queue.1),
            smr_bench::fmt(r.leader_tx_pps / 1000.0, 0),
            smr_bench::fmt(r.leader_rx_pps / 1000.0, 0),
        ]);
    }
    println!(
        "{}",
        smr_bench::render_table(
            &[
                "WND",
                "req/s(x1000)",
                "inst.lat(ms)",
                "batch(reqs)",
                "avg ballots",
                "RequestQueue",
                "ProposalQueue",
                "DispatcherQueue",
                "tx(Kpps)",
                "rx(Kpps)",
            ],
            &rows,
        )
    );
}
