//! Ablations of the design choices DESIGN.md calls out (§V of the
//! paper), all at parapluie/24 cores/n=3:
//!
//! * **Batcher offload** (§V-C1): fold batch construction into the
//!   Protocol thread's critical path instead of the dedicated Batcher
//!   thread. The Protocol thread's load rises by the full batching cost
//!   and peak throughput falls.
//! * **Dedicated sender threads** (§V-B): make the Protocol thread
//!   serialize and write replica messages itself instead of handing them
//!   to ReplicaIOSnd threads.
//! * **RSS/RPS** (§VI-D footnote 5): distribute NIC interrupt processing
//!   over four cores. The paper observed roughly doubled throughput.

use smr_sim_jpaxos::{run_experiment, ExperimentConfig};

fn report(label: &str, cfg: &ExperimentConfig, rows: &mut Vec<Vec<String>>) {
    let r = run_experiment(cfg);
    let leader = r.replicas.last().unwrap();
    let protocol_busy = leader
        .threads
        .iter()
        .find(|t| t.name == "Protocol")
        .map(|t| 100.0 * t.busy)
        .unwrap_or(0.0);
    rows.push(vec![
        label.to_string(),
        smr_bench::kreq(r.throughput_rps),
        smr_bench::fmt(leader.cpu_util_pct, 0),
        smr_bench::fmt(protocol_busy, 1),
        smr_bench::fmt(r.instance_latency_ms, 2),
    ]);
}

fn main() {
    smr_bench::banner(
        "Ablations (parapluie, 24 cores, n=3)",
        "each design choice of §V removed in turn",
    );
    let mut rows = Vec::new();

    let baseline = ExperimentConfig::parapluie(3, 24);
    report("baseline (paper architecture)", &baseline, &mut rows);

    // Batcher on the critical path: the Protocol thread pays the whole
    // batch-construction cost per batch (8 requests worth), the Batcher
    // thread becomes a pass-through.
    let mut inline_batcher = baseline.clone();
    inline_batcher.costs.protocol_per_batch_ns +=
        inline_batcher.costs.batcher_per_batch_ns + 8 * inline_batcher.costs.batcher_per_request_ns;
    inline_batcher.costs.batcher_per_batch_ns = 0;
    inline_batcher.costs.batcher_per_request_ns = 0;
    report(
        "no Batcher thread (batching inline)",
        &inline_batcher,
        &mut rows,
    );

    // No dedicated senders: serialization + socket writes move onto the
    // Protocol thread (two peer messages per batch at n=3).
    let mut inline_send = baseline.clone();
    inline_send.costs.protocol_per_batch_ns += 2 * inline_send.costs.replica_io_snd_ns;
    inline_send.costs.replica_io_snd_ns = 0;
    report(
        "no ReplicaIOSnd threads (sends inline)",
        &inline_send,
        &mut rows,
    );

    // Both removed: the single-event-loop shape of traditional RSMs.
    let mut monolith = baseline.clone();
    monolith.costs.protocol_per_batch_ns += monolith.costs.batcher_per_batch_ns
        + 8 * monolith.costs.batcher_per_request_ns
        + 2 * monolith.costs.replica_io_snd_ns;
    monolith.costs.batcher_per_batch_ns = 0;
    monolith.costs.batcher_per_request_ns = 0;
    monolith.costs.replica_io_snd_ns = 0;
    report("event-loop style (both inline)", &monolith, &mut rows);

    // RSS/RPS enabled (footnote 5): kernel packet work spread over 4
    // cores; the packet ceiling roughly doubles.
    let mut rss = baseline.clone();
    rss.rss_channels = 4;
    report("RSS/RPS enabled (4 softirq channels)", &rss, &mut rows);

    // RSS plus a wider window: with the packet ceiling lifted, check
    // where the next bottleneck sits.
    let mut rss_wnd = rss.clone();
    rss_wnd.wnd = 35;
    report("RSS/RPS + WND=35", &rss_wnd, &mut rows);

    println!(
        "{}",
        smr_bench::render_table(
            &[
                "configuration",
                "req/s(x1000)",
                "leaderCPU%",
                "Protocol busy%",
                "inst.lat(ms)"
            ],
            &rows,
        )
    );
}
