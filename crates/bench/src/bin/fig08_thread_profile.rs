//! Figure 8: per-thread CPU utilization of the leader process at 1 core
//! and at the maximum core count, on both clusters — plus a live
//! durable-cluster run with the slot-lifecycle latency breakdown and
//! WAL group-commit timing.
//!
//! Paper reference points: at 1 core the ClientIO and Batcher threads
//! account for most of the busy time (~80% combined) and JPaxos is
//! CPU-bound; at full core count every thread sits between ~30 and ~60%
//! busy (well balanced, no single-thread bottleneck), the Batcher shows
//! ~15% blocked (it contends on both of its queues), and the "Replica"
//! (ServiceManager) thread is the busiest.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use smr_core::{InProcessCluster, NullService};
use smr_metrics::MetricsSnapshot;
use smr_sim_jpaxos::{run_experiment, ExperimentConfig, ThreadReport};
use smr_types::ClusterConfig;

/// Closed-loop clients driving the live cluster.
const LIVE_CLIENTS: usize = 8;
/// Measurement window for the live cluster.
const LIVE_WINDOW: Duration = Duration::from_millis(1500);
/// Depth-sampling period for the live cluster's queue statistics.
const SAMPLE_PERIOD: Duration = Duration::from_millis(1);

const HELP: &str = "\
fig08_thread_profile: per-thread profile of the leader (Fig. 8)

usage: fig08_thread_profile [--help]

Sections and columns:

  Fig 8a-8d (simulator): leader per-thread state profile.
    thread    thread name (paper Fig. 3; 'Replica' = ServiceManager)
    busy%     share of the run spent executing on-CPU work
    blocked%  share spent contending on a queue's internal lock
    waiting%  share parked on an empty/full queue (no work available)
    other%    everything else (syscalls, sleeps, accept loops)

  Live durable cluster: a real in-process 3-replica cluster with a
  write-ahead log, driven by closed-loop clients. Prints the same
  thread table measured on the real pipeline, then:

    stage latency breakdown (one row per pipeline transition):
      stage         intake>sealed, sealed>proposed, proposed>decided,
                    decided>executed, executed>reply, intake>reply
                    (end-to-end replica residence time)
      count         batches measured
      p50/p95/p99us percentiles, microseconds (power-of-two bucketed
                    histograms: values are bucket midpoints, max exact)
      max_us        largest observed value, exact

    WAL / group commit (leader, per drained decision burst):
      wal.append    buffered append of one decided batch (same
                    percentile columns)
      wal.fsync     flush covering the whole burst -- the group-commit
                    sync whose cost is amortized across the burst
      plus appended/synced byte totals from the named counters

    queue depths (Table I methodology):
      queue         registered queue name
      depth/hwm     instantaneous depth and exact high watermark
      mean+-stddev  sampled depth statistics (1ms sampler)
";

fn show(title: &str, threads: &[ThreadReport]) {
    smr_bench::banner(
        title,
        "leader per-thread busy/blocked/waiting/other (% of run)",
    );
    let mut rows = Vec::new();
    for t in threads {
        rows.push(vec![
            t.name.clone(),
            smr_bench::fmt(100.0 * t.busy, 1),
            smr_bench::fmt(100.0 * t.blocked, 1),
            smr_bench::fmt(100.0 * t.waiting, 1),
            smr_bench::fmt(100.0 * t.other, 1),
        ]);
    }
    println!(
        "{}",
        smr_bench::render_table(
            &["thread", "busy%", "blocked%", "waiting%", "other%"],
            &rows
        )
    );
}

/// Runs a 3-replica durable in-process cluster under closed-loop load
/// and returns the leader's metrics snapshot plus measured throughput.
fn live_durable_snapshot() -> (MetricsSnapshot, f64) {
    let wal_root = std::env::temp_dir().join(format!("fig08-wal-{}", std::process::id()));
    let cluster = InProcessCluster::start_with(ClusterConfig::new(3), |id, builder| {
        builder
            .with_snapshot_service(Box::new(NullService::default()))
            .with_durability(wal_root.join(format!("replica-{}", id.0)))
            .with_queue_sampler(SAMPLE_PERIOD)
    });
    let mut warm = cluster.client();
    for _ in 0..50 {
        warm.execute(&[0u8; 128]).expect("warm-up request");
    }
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..LIVE_CLIENTS)
        .map(|_| {
            let mut client = cluster.client();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let payload = [0u8; 128];
                let mut done = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if client.execute(&payload).is_err() {
                        break;
                    }
                    done += 1;
                }
                done
            })
        })
        .collect();
    let start = std::time::Instant::now();
    std::thread::sleep(LIVE_WINDOW);
    stop.store(true, Ordering::Relaxed);
    let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    let rps = total as f64 / start.elapsed().as_secs_f64();
    let leader = cluster
        .config()
        .replicas()
        .find(|id| cluster.replica(*id).shared().is_leader())
        .expect("a leader is elected");
    let snapshot = cluster.replica(leader).metrics_snapshot();
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&wal_root);
    (snapshot, rps)
}

fn us(ns: f64) -> String {
    smr_bench::fmt(ns / 1_000.0, 1)
}

fn show_live(snap: &MetricsSnapshot, rps: f64) {
    smr_bench::banner(
        &format!(
            "Live durable cluster, n=3 ({} req/s x1000)",
            smr_bench::kreq(rps)
        ),
        "real pipeline: thread profile, stage latency, WAL group commit",
    );

    let mut rows = Vec::new();
    for t in &snap.threads {
        let wall = t.wall_ns.max(1) as f64;
        rows.push(vec![
            t.name.clone(),
            smr_bench::fmt(100.0 * t.busy_ns as f64 / wall, 1),
            smr_bench::fmt(100.0 * t.blocked_ns as f64 / wall, 1),
            smr_bench::fmt(100.0 * t.waiting_ns as f64 / wall, 1),
            smr_bench::fmt(100.0 * t.other_ns as f64 / wall, 1),
        ]);
    }
    println!(
        "{}",
        smr_bench::render_table(
            &["thread", "busy%", "blocked%", "waiting%", "other%"],
            &rows
        )
    );

    let mut rows = Vec::new();
    for name in [
        "stage.intake_to_sealed",
        "stage.sealed_to_proposed",
        "stage.proposed_to_decided",
        "stage.decided_to_executed",
        "stage.executed_to_reply",
        "stage.intake_to_reply",
        "wal.append",
        "wal.fsync",
    ] {
        let Some(h) = snap.histogram(name) else {
            continue;
        };
        rows.push(vec![
            name.into(),
            h.count.to_string(),
            us(h.p50_ns),
            us(h.p95_ns),
            us(h.p99_ns),
            us(h.max_ns as f64),
        ]);
    }
    println!(
        "{}",
        smr_bench::render_table(
            &["stage", "count", "p50us", "p95us", "p99us", "max_us"],
            &rows
        )
    );
    println!(
        "wal bytes: appended {} / synced {} (group commit amortizes one fsync per burst)",
        snap.counter("wal.appended_bytes").unwrap_or(0),
        snap.counter("wal.synced_bytes").unwrap_or(0),
    );

    let mut rows = Vec::new();
    for q in &snap.queues {
        rows.push(vec![
            q.name.clone(),
            q.depth.to_string(),
            q.high_watermark.to_string(),
            format!(
                "{} +- {}",
                smr_bench::fmt(q.depth_mean, 2),
                smr_bench::fmt(q.depth_stddev, 2)
            ),
        ]);
    }
    println!(
        "{}",
        smr_bench::render_table(&["queue", "depth", "hwm", "mean+-stddev"], &rows)
    );
}

fn main() {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        print!("{HELP}");
        return;
    }
    let cases: Vec<(&str, ExperimentConfig)> = vec![
        (
            "Fig 8a: parapluie, 1 core",
            ExperimentConfig::parapluie(3, 1),
        ),
        (
            "Fig 8b: parapluie, 24 cores",
            ExperimentConfig::parapluie(3, 24),
        ),
        ("Fig 8c: edel, 1 core", ExperimentConfig::edel(3, 1)),
        ("Fig 8d: edel, 8 cores", ExperimentConfig::edel(3, 8)),
    ];
    for (title, cfg) in cases {
        let r = run_experiment(&cfg);
        let leader = r.replicas.last().unwrap();
        show(
            &format!(
                "{title} ({} req/s x1000)",
                smr_bench::kreq(r.throughput_rps)
            ),
            &leader.threads,
        );
    }
    let (snap, rps) = live_durable_snapshot();
    show_live(&snap, rps);
}
