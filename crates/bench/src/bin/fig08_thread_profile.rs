//! Figure 8: per-thread CPU utilization of the leader process at 1 core
//! and at the maximum core count, on both clusters.
//!
//! Paper reference points: at 1 core the ClientIO and Batcher threads
//! account for most of the busy time (~80% combined) and JPaxos is
//! CPU-bound; at full core count every thread sits between ~30 and ~60%
//! busy (well balanced, no single-thread bottleneck), the Batcher shows
//! ~15% blocked (it contends on both of its queues), and the "Replica"
//! (ServiceManager) thread is the busiest.

use smr_sim_jpaxos::{run_experiment, ExperimentConfig, ThreadReport};

fn show(title: &str, threads: &[ThreadReport]) {
    smr_bench::banner(
        title,
        "leader per-thread busy/blocked/waiting/other (% of run)",
    );
    let mut rows = Vec::new();
    for t in threads {
        rows.push(vec![
            t.name.clone(),
            smr_bench::fmt(100.0 * t.busy, 1),
            smr_bench::fmt(100.0 * t.blocked, 1),
            smr_bench::fmt(100.0 * t.waiting, 1),
            smr_bench::fmt(100.0 * t.other, 1),
        ]);
    }
    println!(
        "{}",
        smr_bench::render_table(
            &["thread", "busy%", "blocked%", "waiting%", "other%"],
            &rows
        )
    );
}

fn main() {
    let cases: Vec<(&str, ExperimentConfig)> = vec![
        (
            "Fig 8a: parapluie, 1 core",
            ExperimentConfig::parapluie(3, 1),
        ),
        (
            "Fig 8b: parapluie, 24 cores",
            ExperimentConfig::parapluie(3, 24),
        ),
        ("Fig 8c: edel, 1 core", ExperimentConfig::edel(3, 1)),
        ("Fig 8d: edel, 8 cores", ExperimentConfig::edel(3, 8)),
    ];
    for (title, cfg) in cases {
        let r = run_experiment(&cfg);
        let leader = r.replicas.last().unwrap();
        show(
            &format!(
                "{title} ({} req/s x1000)",
                smr_bench::kreq(r.throughput_rps)
            ),
            &leader.threads,
        );
    }
}
