//! Figure 9: the ClientIO axis — first the paper's simulated curve
//! (throughput and leader CPU vs number of ClientIO threads on
//! parapluie), then a *real* sweep of this repo's client path over TCP:
//! I/O mode (thread-pool scanning vs evented readiness loop) × pool
//! size × idle-connection count × reply-queue capacity.
//!
//! Paper reference points: ~40K requests/s with one ClientIO thread,
//! \>100K with four (a 2.5x gain from three added threads), then a slight
//! degradation beyond ~8 threads, down to ~80K at 24 — caused not by JVM
//! lock contention (blocked time stays under 10%) but by the pre-2.6.35
//! kernel's socket structures bouncing between cores (Boyd-Wickizer et
//! al., ref. \[14\]). Leader CPU peaks ~550% at 4 threads and mirrors the
//! throughput curve.
//!
//! The real sweep extends the axis the paper could not vary: connection
//! count. The threaded mode scans every owned connection per wakeup
//! (O(connections) per iteration); the evented mode pays one
//! `epoll_wait` (O(ready)). Pass `--quick` for a small smoke
//! configuration.

use std::time::Duration;

use smr_bench::{clientio_tcp_run, ClientIoCell, IoMode};
use smr_sim_jpaxos::{run_experiment, ExperimentConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    // Part 1: the paper's simulated ClientIO-thread curve.
    let cio_axis: Vec<usize> = if quick {
        vec![1, 4, 8, 24]
    } else {
        vec![1, 2, 3, 4, 6, 8, 12, 16, 20, 24]
    };
    smr_bench::banner(
        "Fig 9 (parapluie, 24 cores, n=3)",
        "throughput + leader CPU vs number of ClientIO threads",
    );
    let mut rows = Vec::new();
    for &cio in &cio_axis {
        let mut cfg = ExperimentConfig::parapluie(3, 24);
        cfg.cio_threads = cio;
        let r = run_experiment(&cfg);
        let leader = r.replicas.last().unwrap();
        rows.push(vec![
            cio.to_string(),
            smr_bench::kreq(r.throughput_rps),
            smr_bench::fmt(leader.cpu_util_pct, 0),
            smr_bench::fmt(leader.blocked_pct, 1),
        ]);
    }
    println!(
        "{}",
        smr_bench::render_table(
            &[
                "ClientIO threads",
                "req/s(x1000)",
                "leaderCPU%",
                "leaderBlocked%"
            ],
            &rows
        )
    );

    // Part 2: the real TCP sweep over this repo's client path.
    let (pools, conns, caps, window): (Vec<usize>, Vec<usize>, Vec<usize>, Duration) = if quick {
        (
            vec![1, 2],
            vec![0, 256],
            vec![4096],
            Duration::from_millis(400),
        )
    } else {
        (
            vec![1, 2, 4],
            vec![0, 64, 256, 1024],
            vec![1024, 4096],
            Duration::from_secs(1),
        )
    };
    smr_bench::banner(
        "ClientIO connection scaling (this host, n=1, TCP loopback)",
        "mode x pool x idle connections x reply-queue capacity, 4 closed-loop clients",
    );
    let mut rows = Vec::new();
    for &pool in &pools {
        for &cap in &caps {
            for &idle in &conns {
                let cell = ClientIoCell {
                    pool,
                    idle_conns: idle,
                    reply_capacity: cap,
                    active_clients: 4,
                    window,
                };
                let thr = clientio_tcp_run(IoMode::Threaded, cell);
                let ev = clientio_tcp_run(IoMode::Evented, cell);
                rows.push(vec![
                    pool.to_string(),
                    cap.to_string(),
                    idle.to_string(),
                    smr_bench::fmt(thr, 0),
                    smr_bench::fmt(ev, 0),
                    smr_bench::fmt(ev / thr, 2),
                ]);
            }
        }
    }
    println!(
        "{}",
        smr_bench::render_table(
            &[
                "pool",
                "reply-cap",
                "idle conns",
                "threaded req/s",
                "evented req/s",
                "evented/threaded"
            ],
            &rows
        )
    );
}
