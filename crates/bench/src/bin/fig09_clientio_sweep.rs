//! Figure 9: throughput and leader CPU as a function of the number of
//! ClientIO threads (parapluie, 24 cores, n=3).
//!
//! Paper reference points: ~40K requests/s with one ClientIO thread,
//! \>100K with four (a 2.5x gain from three added threads), then a slight
//! degradation beyond ~8 threads, down to ~80K at 24 — caused not by JVM
//! lock contention (blocked time stays under 10%) but by the pre-2.6.35
//! kernel's socket structures bouncing between cores (Boyd-Wickizer et al., ref. \[14\]). Leader CPU
//! peaks ~550% at 4 threads and mirrors the throughput curve.

use smr_sim_jpaxos::{run_experiment, ExperimentConfig};

fn main() {
    let cio_axis: Vec<usize> = if std::env::args().any(|a| a == "--quick") {
        vec![1, 4, 8, 24]
    } else {
        vec![1, 2, 3, 4, 6, 8, 12, 16, 20, 24]
    };
    smr_bench::banner(
        "Fig 9 (parapluie, 24 cores, n=3)",
        "throughput + leader CPU vs number of ClientIO threads",
    );
    let mut rows = Vec::new();
    for &cio in &cio_axis {
        let mut cfg = ExperimentConfig::parapluie(3, 24);
        cfg.cio_threads = cio;
        let r = run_experiment(&cfg);
        let leader = r.replicas.last().unwrap();
        rows.push(vec![
            cio.to_string(),
            smr_bench::kreq(r.throughput_rps),
            smr_bench::fmt(leader.cpu_util_pct, 0),
            smr_bench::fmt(leader.blocked_pct, 1),
        ]);
    }
    println!(
        "{}",
        smr_bench::render_table(
            &[
                "ClientIO threads",
                "req/s(x1000)",
                "leaderCPU%",
                "leaderBlocked%"
            ],
            &rows
        )
    );
}
