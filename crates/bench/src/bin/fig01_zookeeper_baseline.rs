//! Figure 1: ZooKeeper throughput vs. cores (a) and the leader's
//! per-thread profile at 24 cores (b) — the motivating measurement.
//!
//! Paper reference points: throughput peaks around ~50K requests/s at 4
//! cores and *degrades* below 30K with all 24 cores; at 24 cores several
//! threads are busy-or-blocked ~100% of the time and the CommitProcessor
//! spends ~40% of its time blocked.

use smr_sim_zab::{run_zab_experiment, ZabConfig};

fn main() {
    let cores_axis: Vec<usize> = if std::env::args().any(|a| a == "--quick") {
        vec![1, 4, 8, 24]
    } else {
        vec![1, 2, 4, 6, 8, 10, 12, 16, 20, 24]
    };
    smr_bench::banner(
        "Fig 1a (ZooKeeper, parapluie-class, n=3)",
        "throughput vs cores: rises to ~4 cores, then collapses under lock contention",
    );
    let mut rows = Vec::new();
    let mut profile_at_24 = None;
    for &cores in &cores_axis {
        let r = run_zab_experiment(&ZabConfig::new(3, cores));
        let leader = r.replicas.last().unwrap().clone();
        rows.push(vec![
            cores.to_string(),
            smr_bench::kreq(r.throughput_rps),
            smr_bench::fmt(leader.cpu_util_pct, 0),
            smr_bench::fmt(leader.blocked_pct, 1),
        ]);
        if cores == *cores_axis.last().unwrap() {
            profile_at_24 = Some(leader);
        }
    }
    println!(
        "{}",
        smr_bench::render_table(
            &["cores", "req/s(x1000)", "leaderCPU%", "leaderBlocked%"],
            &rows
        )
    );
    if let Some(leader) = profile_at_24 {
        smr_bench::banner(
            "Fig 1b (ZooKeeper leader per-thread profile, max cores)",
            "busy/blocked/waiting/other — compare with the paper's stacked bars",
        );
        let interesting: Vec<_> = leader
            .threads
            .iter()
            .filter(|t| !t.name.starts_with("zk-client"))
            .cloned()
            .collect();
        println!("{}", smr_sim::render_breakdown(&interesting));
    }
}
