//! Table II: kernel-level ping RTT between cluster nodes, idle and
//! during an experiment (WND=35, BSZ=1300, n=3).
//!
//! Paper reference points: idle RTT is ~0.06ms everywhere; during the
//! experiment the RTT between *followers* stays ~0.06–0.08ms, but any
//! path through the *leader* inflates to ~2.5ms — matching the instance
//! latency and pinning the bottleneck on the leader's kernel network
//! subsystem (ping bypasses the JVM and TCP entirely).

use smr_sim_jpaxos::{run_experiment, ExperimentConfig};

fn main() {
    smr_bench::banner(
        "Table II (parapluie, 24 cores, n=3, WND=35)",
        "ping RTT idle vs during the experiment",
    );
    // Idle: ping through an unloaded fabric.
    let idle_ms = {
        let sim = smr_sim::Sim::new(7);
        let a = sim.add_node("a", 1, 1.0);
        let b = sim.add_node("b", 1, 1.0);
        let net: smr_sim::SimNet<u8> =
            smr_sim::SimNet::new(&sim.ctx(), vec![smr_sim::NetConfig::default(); 2]);
        let rtt = net.ping(a, b);
        sim.run_until(100_000_000);
        rtt.get().expect("idle echo") as f64 / 1e6
    };
    // Loaded: probes injected during a WND=35 run.
    let mut cfg = ExperimentConfig::parapluie(3, 24);
    cfg.wnd = 35;
    cfg.ping_probes = true;
    let r = run_experiment(&cfg);
    let rows = vec![
        vec!["idle any <-> any".to_string(), smr_bench::fmt(idle_ms, 3)],
        vec![
            "experiment follower <-> follower".to_string(),
            r.ping_followers_ms
                .map(|v| smr_bench::fmt(v, 3))
                .unwrap_or_else(|| "-".into()),
        ],
        vec![
            "experiment leader <-> any".to_string(),
            r.ping_leader_ms
                .map(|v| smr_bench::fmt(v, 3))
                .unwrap_or_else(|| "-".into()),
        ],
        vec![
            "(instance latency, for comparison)".to_string(),
            smr_bench::fmt(r.instance_latency_ms, 3),
        ],
    ];
    println!("{}", smr_bench::render_table(&["path", "RTT (ms)"], &rows));
}
