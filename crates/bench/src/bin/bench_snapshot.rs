//! Perf-trajectory snapshot: runs the queue, codec, and CRC microbenches
//! plus the in-memory cluster throughput loop, and writes the results as
//! JSON to the path given as the first argument (e.g. `BENCH_PR5.json`).
//!
//! The committed snapshot starts the repo's perf trajectory: each perf
//! PR re-runs this tool and commits a new `BENCH_PRn.json`, so numbers
//! are always comparisons within one run on one machine, never across
//! machines or commits.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use smr_core::{InProcessCluster, NullService};
use smr_metrics::MetricsSnapshot;
use smr_types::{ClientId, ClusterConfig, RequestId, SeqNum};
use smr_wire::{crc32, crc32_bytewise, Batch, Codec, Request};

/// Items moved per contended MPMC measurement.
const MPMC_ITEMS: u64 = 400_000;
/// Items per bulk burst.
const BURST: u64 = 64;
/// Hash-chain iterations per command in the CPU-heavy executor case.
const EXEC_ROUNDS: u32 = 2_000;
/// Worker pool for the CPU-heavy parallel case.
const EXEC_WORKERS: usize = 4;
/// Modeled per-command I/O stall in the stall-heavy executor case.
const STALL: Duration = Duration::from_micros(150);
const STALL_NONE: Duration = Duration::ZERO;
/// Worker pool for the stall-heavy parallel case.
const STALL_WORKERS: usize = 8;
/// KV entries in the snapshot write/restore measurements.
const SNAP_KEYS: u64 = 10_000;
/// WAL batches (8 requests each) in the recovery-replay measurement.
const REPLAY_BATCHES: u64 = 4_000;

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    samples[samples.len() / 2]
}

/// Runs `f` `samples` times; returns the median throughput in
/// items/second from the `(items_moved, elapsed)` pairs it reports.
fn measure_throughput(samples: usize, mut f: impl FnMut() -> (u64, Duration)) -> f64 {
    let rates: Vec<f64> = (0..samples)
        .map(|_| {
            let (items, elapsed) = f();
            items as f64 / elapsed.as_secs_f64()
        })
        .collect();
    median(rates)
}

/// Batch-of-8 encode+decode round trips; returns ns per round trip.
fn codec_roundtrip_ns() -> f64 {
    let batch = Batch::new(
        (0..8u64)
            .map(|i| Request::new(RequestId::new(ClientId(1), SeqNum(i)), vec![0xA5; 128]))
            .collect(),
    );
    let iters = 50_000u32;
    let start = Instant::now();
    for _ in 0..iters {
        let bytes = batch.encode_to_vec();
        let decoded = Batch::decode(&bytes).expect("roundtrip");
        std::hint::black_box(decoded);
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

/// CRC over a 4 KiB buffer; returns GiB/s.
fn crc_gibps(f: impl Fn(&[u8]) -> u32) -> f64 {
    let buf: Vec<u8> = (0..4096u32).map(|i| (i * 31 % 251) as u8).collect();
    let iters = 100_000u64;
    let start = Instant::now();
    let mut acc = 0u32;
    for _ in 0..iters {
        acc ^= f(std::hint::black_box(&buf));
    }
    std::hint::black_box(acc);
    (iters * buf.len() as u64) as f64 / start.elapsed().as_secs_f64() / (1u64 << 30) as f64
}

/// Drives an already-started cluster with closed-loop clients for
/// `window`; returns requests/second.
fn drive(cluster: &InProcessCluster, clients: usize, window: Duration) -> f64 {
    // Warm-up: let the leader settle before the timed window.
    let mut warm = cluster.client();
    for _ in 0..50 {
        warm.execute(&[0u8; 128]).expect("warm-up request");
    }
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..clients)
        .map(|_| {
            let mut client = cluster.client();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let payload = [0u8; 128];
                let mut done = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if client.execute(&payload).is_err() {
                        break;
                    }
                    done += 1;
                }
                done
            })
        })
        .collect();
    let start = Instant::now();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    total as f64 / start.elapsed().as_secs_f64()
}

/// The leader's metrics snapshot (whichever replica holds the lease).
fn leader_snapshot(cluster: &InProcessCluster) -> MetricsSnapshot {
    let leader = cluster
        .config()
        .replicas()
        .find(|id| cluster.replica(*id).shared().is_leader())
        .expect("a leader is elected");
    cluster.replica(leader).metrics_snapshot()
}

/// In-memory 3-replica cluster with the paper's null service; returns
/// throughput plus the leader's metrics snapshot (which carries the
/// per-stage latency breakdown when `stage_metrics` is on).
fn cluster_run(clients: usize, window: Duration, stage_metrics: bool) -> (f64, MetricsSnapshot) {
    let cluster = InProcessCluster::start_with(ClusterConfig::new(3), |_, builder| {
        builder
            .with_service(Box::new(NullService::default()))
            .with_stage_metrics(stage_metrics)
    });
    let rps = drive(&cluster, clients, window);
    let snap = leader_snapshot(&cluster);
    cluster.shutdown();
    (rps, snap)
}

/// Same cluster with a write-ahead log per replica, for the WAL
/// append/fsync (group-commit) latency fields.
fn durable_cluster_run(clients: usize, window: Duration) -> (f64, MetricsSnapshot) {
    let wal_root = std::env::temp_dir().join(format!("bench-snap-wal-{}", std::process::id()));
    let cluster = InProcessCluster::start_with(ClusterConfig::new(3), |id, builder| {
        builder
            .with_snapshot_service(Box::new(NullService::default()))
            .with_durability(wal_root.join(format!("replica-{}", id.0)))
    });
    let rps = drive(&cluster, clients, window);
    let snap = leader_snapshot(&cluster);
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&wal_root);
    (rps, snap)
}

fn json_number(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

fn main() {
    // The path is required rather than defaulted so a later PR re-running
    // the tool can't silently clobber an earlier trajectory file.
    let Some(out_path) = std::env::args().nth(1) else {
        eprintln!("usage: bench_snapshot <out-path>   (e.g. BENCH_PR5.json at the repo root)");
        std::process::exit(2);
    };
    smr_bench::banner(
        "bench_snapshot",
        "queue/codec/crc microbenches + in-memory cluster throughput",
    );

    let scalar_unc = {
        let (n, t) = smr_bench::queue_uncontended_scalar(2_000_000);
        n as f64 / t.as_secs_f64()
    };
    println!("queue uncontended scalar      {:>12.0} ops/s", scalar_unc);
    let bulk_unc = {
        let (n, t) = smr_bench::queue_uncontended_bulk(2_000_000, BURST);
        n as f64 / t.as_secs_f64()
    };
    println!("queue uncontended bulk(64)    {:>12.0} items/s", bulk_unc);
    let scalar_mpmc = measure_throughput(5, || smr_bench::mpmc_4x4_scalar(MPMC_ITEMS));
    println!(
        "queue 4x4 MPMC scalar         {:>12.0} items/s",
        scalar_mpmc
    );
    let bulk_mpmc = measure_throughput(5, || smr_bench::mpmc_4x4_bulk(MPMC_ITEMS, BURST));
    println!("queue 4x4 MPMC bulk(64)       {:>12.0} items/s", bulk_mpmc);
    let mpmc_ratio = bulk_mpmc / scalar_mpmc;
    println!("queue 4x4 MPMC bulk/scalar    {:>12.2} x", mpmc_ratio);
    // The retained mutex core, measured in the same run: the ring/mutex
    // ratios below are same-machine same-binary comparisons, which is
    // the only apples-to-apples speedup a shared-runner snapshot can
    // honestly claim.
    let scalar_mpmc_mutex = measure_throughput(5, || smr_bench::mpmc_4x4_scalar_mutex(MPMC_ITEMS));
    println!(
        "queue 4x4 MPMC scalar (mutex) {:>12.0} items/s",
        scalar_mpmc_mutex
    );
    let bulk_mpmc_mutex =
        measure_throughput(5, || smr_bench::mpmc_4x4_bulk_mutex(MPMC_ITEMS, BURST));
    println!(
        "queue 4x4 MPMC bulk64 (mutex) {:>12.0} items/s",
        bulk_mpmc_mutex
    );
    let ring_over_mutex_bulk = bulk_mpmc / bulk_mpmc_mutex;
    println!(
        "queue 4x4 bulk ring/mutex     {:>12.2} x",
        ring_over_mutex_bulk
    );
    let ring_over_mutex_scalar = scalar_mpmc / scalar_mpmc_mutex;
    println!(
        "queue 4x4 scalar ring/mutex   {:>12.2} x",
        ring_over_mutex_scalar
    );

    let codec_ns = codec_roundtrip_ns();
    println!("codec batch8x128B roundtrip   {:>12.0} ns", codec_ns);
    let crc_fast = crc_gibps(crc32);
    println!("crc32 slice-by-8 (4KiB)       {:>12.2} GiB/s", crc_fast);
    let crc_slow = crc_gibps(crc32_bytewise);
    println!("crc32 bytewise   (4KiB)       {:>12.2} GiB/s", crc_slow);

    let (cluster_rps, stage_snap) = cluster_run(8, Duration::from_secs(2), true);
    println!("cluster n=3 null-service      {:>12.0} req/s", cluster_rps);
    let stage_us = |name: &str, pick: fn(&smr_metrics::HistogramSummary) -> f64| {
        stage_snap
            .histogram(name)
            .map_or(0.0, |h| pick(h) / 1_000.0)
    };
    for name in ["stage.proposed_to_decided", "stage.intake_to_reply"] {
        println!(
            "{name:<22} p50/p95/p99   {:>8.1}/{:.1}/{:.1} us",
            stage_us(name, |h| h.p50_ns),
            stage_us(name, |h| h.p95_ns),
            stage_us(name, |h| h.p99_ns),
        );
    }
    // The same cluster with stage stamping compiled in but switched off:
    // the difference is the observability overhead on the hot path.
    let (cluster_rps_off, _) = cluster_run(8, Duration::from_secs(2), false);
    println!(
        "cluster n=3 metrics-off       {:>12.0} req/s",
        cluster_rps_off
    );
    let metrics_ratio = cluster_rps_off / cluster_rps;
    println!("cluster metrics-off/on        {:>12.2} x", metrics_ratio);
    let (durable_rps, wal_snap) = durable_cluster_run(8, Duration::from_secs(2));
    println!("cluster n=3 durable (WAL)     {:>12.0} req/s", durable_rps);
    let wal_us = |name: &str, pick: fn(&smr_metrics::HistogramSummary) -> f64| {
        wal_snap.histogram(name).map_or(0.0, |h| pick(h) / 1_000.0)
    };
    for name in ["wal.append", "wal.fsync"] {
        println!(
            "{name:<22} p50/p99       {:>8.1}/{:.1} us",
            wal_us(name, |h| h.p50_ns),
            wal_us(name, |h| h.p99_ns),
        );
    }

    // Sequential vs dependency-aware parallel execution of a heavyweight
    // service on a conflict-free decided order. Two regimes: pure CPU
    // (only wins with real cores — on a single-core host this records
    // scheduler overhead) and modeled I/O stalls (overlaps on the worker
    // pool regardless of core count).
    let cpu_seq = measure_throughput(5, || {
        smr_bench::exec_sequential(EXEC_ROUNDS, STALL_NONE, 2_000)
    });
    println!("exec cpu-heavy sequential     {:>12.0} cmds/s", cpu_seq);
    let cpu_par = measure_throughput(5, || {
        smr_bench::exec_parallel(EXEC_ROUNDS, STALL_NONE, 2_000, EXEC_WORKERS)
    });
    println!("exec cpu-heavy parallel(4)    {:>12.0} cmds/s", cpu_par);
    let cpu_ratio = cpu_par / cpu_seq;
    println!("exec cpu parallel/sequential  {:>12.2} x", cpu_ratio);
    let stall_seq = measure_throughput(5, || smr_bench::exec_sequential(0, STALL, 512));
    println!("exec stall-heavy sequential   {:>12.0} cmds/s", stall_seq);
    let stall_par =
        measure_throughput(5, || smr_bench::exec_parallel(0, STALL, 512, STALL_WORKERS));
    println!("exec stall-heavy parallel(8)  {:>12.0} cmds/s", stall_par);
    let stall_ratio = stall_par / stall_seq;
    println!("exec stall parallel/sequential{:>12.2} x", stall_ratio);

    // Client-path connection scaling over real TCP loopback: the
    // threaded mode scans every owned connection per wakeup, the evented
    // mode pays one epoll_wait. The headline ratio holds the evented
    // mode at 4x the threaded idle-connection count — the acceptance
    // shape for the readiness-loop ClientIO ("evented sustains >= 4x the
    // connections at equal-or-better throughput, same run, same host").
    let cio_cell = |idle| smr_bench::ClientIoCell {
        pool: 2,
        idle_conns: idle,
        reply_capacity: 4096,
        active_clients: 4,
        window: Duration::from_millis(1500),
    };
    let cio = |mode, idle| smr_bench::clientio_tcp_run(mode, cio_cell(idle));
    let thr_idle128 = cio(smr_bench::IoMode::Threaded, 128);
    println!("clientio tcp threaded 128idle {:>12.0} req/s", thr_idle128);
    let thr_idle512 = cio(smr_bench::IoMode::Threaded, 512);
    println!("clientio tcp threaded 512idle {:>12.0} req/s", thr_idle512);
    let ev_idle128 = cio(smr_bench::IoMode::Evented, 128);
    println!("clientio tcp evented  128idle {:>12.0} req/s", ev_idle128);
    let ev_idle512 = cio(smr_bench::IoMode::Evented, 512);
    println!("clientio tcp evented  512idle {:>12.0} req/s", ev_idle512);
    let ev4x_over_thr = ev_idle512 / thr_idle128;
    println!("clientio evented@512/threaded@128 {:>8.2} x", ev4x_over_thr);
    let ev_over_thr_512 = ev_idle512 / thr_idle512;
    println!(
        "clientio evented/threaded @512    {:>8.2} x",
        ev_over_thr_512
    );

    // Durability path: snapshot serialization/deserialization over a
    // populated KV state, and cold-start WAL recovery (open + CRC scan +
    // replay), the crash-recovery critical path.
    let snap_write = measure_throughput(5, || smr_bench::snapshot_write(SNAP_KEYS, 20));
    println!(
        "snapshot write 10k entries    {:>12.0} entries/s",
        snap_write
    );
    let snap_restore = measure_throughput(5, || smr_bench::snapshot_restore(SNAP_KEYS, 20));
    println!(
        "snapshot restore 10k entries  {:>12.0} entries/s",
        snap_restore
    );
    let replay = measure_throughput(5, || smr_bench::recovery_replay(REPLAY_BATCHES, 8));
    println!("recovery replay wal 8/batch   {:>12.0} reqs/s", replay);

    let mut json = String::from("{\n");
    let mut field = |name: &str, value: f64| {
        let _ = writeln!(json, "  \"{}\": {},", name, json_number(value));
    };
    field("queue_uncontended_scalar_ops_per_s", scalar_unc);
    field("queue_uncontended_bulk64_items_per_s", bulk_unc);
    field("queue_mpmc_4x4_scalar_items_per_s", scalar_mpmc);
    field("queue_mpmc_4x4_bulk64_items_per_s", bulk_mpmc);
    field("queue_mpmc_4x4_bulk_over_scalar", mpmc_ratio);
    field("queue_mpmc_4x4_scalar_mutex_items_per_s", scalar_mpmc_mutex);
    field("queue_mpmc_4x4_bulk64_mutex_items_per_s", bulk_mpmc_mutex);
    field("queue_mpmc_4x4_bulk_ring_over_mutex", ring_over_mutex_bulk);
    field(
        "queue_mpmc_4x4_scalar_ring_over_mutex",
        ring_over_mutex_scalar,
    );
    field("codec_batch8_128b_roundtrip_ns", codec_ns);
    field("crc32_slice8_4kib_gib_per_s", crc_fast);
    field("crc32_bytewise_4kib_gib_per_s", crc_slow);
    field("cluster_n3_null_rps", cluster_rps);
    field("cluster_n3_null_metrics_off_rps", cluster_rps_off);
    field("cluster_metrics_off_over_on", metrics_ratio);
    field("cluster_n3_durable_rps", durable_rps);
    field(
        "stage_proposed_to_decided_p50_us",
        stage_us("stage.proposed_to_decided", |h| h.p50_ns),
    );
    field(
        "stage_proposed_to_decided_p95_us",
        stage_us("stage.proposed_to_decided", |h| h.p95_ns),
    );
    field(
        "stage_proposed_to_decided_p99_us",
        stage_us("stage.proposed_to_decided", |h| h.p99_ns),
    );
    field(
        "stage_intake_to_reply_p50_us",
        stage_us("stage.intake_to_reply", |h| h.p50_ns),
    );
    field(
        "stage_intake_to_reply_p95_us",
        stage_us("stage.intake_to_reply", |h| h.p95_ns),
    );
    field(
        "stage_intake_to_reply_p99_us",
        stage_us("stage.intake_to_reply", |h| h.p99_ns),
    );
    field("wal_append_p50_us", wal_us("wal.append", |h| h.p50_ns));
    field("wal_append_p99_us", wal_us("wal.append", |h| h.p99_ns));
    field("wal_fsync_p50_us", wal_us("wal.fsync", |h| h.p50_ns));
    field("wal_fsync_p99_us", wal_us("wal.fsync", |h| h.p99_ns));
    field("exec_cpu_sequential_cmds_per_s", cpu_seq);
    field("exec_cpu_parallel4_cmds_per_s", cpu_par);
    field("exec_cpu_parallel_over_sequential", cpu_ratio);
    field("exec_stall_sequential_cmds_per_s", stall_seq);
    field("exec_stall_parallel8_cmds_per_s", stall_par);
    field("exec_stall_parallel_over_sequential", stall_ratio);
    field("clientio_tcp_threaded_idle128_rps", thr_idle128);
    field("clientio_tcp_threaded_idle512_rps", thr_idle512);
    field("clientio_tcp_evented_idle128_rps", ev_idle128);
    field("clientio_tcp_evented_idle512_rps", ev_idle512);
    field("clientio_evented512_over_threaded128", ev4x_over_thr);
    field("clientio_evented_over_threaded_at512", ev_over_thr_512);
    field("snapshot_write_10k_entries_per_s", snap_write);
    field("snapshot_restore_10k_entries_per_s", snap_restore);
    field("recovery_replay_wal_reqs_per_s", replay);
    json.push_str("  \"workload\": \"4x4 MPMC, burst 64, batch 8x128B, crc 4KiB, 8 closed-loop clients x 2s, clientio tcp n=1 pool=2 4 clients x 1.5s at 128/512 idle conns, exec 2000 cmds x 2000 hash rounds + 512 cmds x 150us stall, snapshot 10k entries x 20, replay 4000 wal batches x 8\"\n}\n");
    std::fs::write(&out_path, json).expect("write snapshot");
    println!("wrote {out_path}");
}
