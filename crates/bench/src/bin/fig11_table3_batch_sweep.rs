//! Figure 11 + Table III: performance as a function of the maximum batch
//! size `BSZ` (parapluie, 24 cores, n=3, WND=35).
//!
//! Paper reference points: BSZ=650 only reaches ~83K requests/s (two
//! frames per batch of ~4-5 requests is frame-inefficient); from
//! BSZ=1300 on, throughput sits at ~114–120K and barely moves — the
//! leader's packet budget (~150K frames/s out) is the binding constraint
//! and larger batches no longer reduce the client-side packet count,
//! which dominates. Instance latency grows with BSZ; batches fill to
//! BSZ; the leader's outgoing packet rate stays pegged at ~150K/s while
//! outgoing bandwidth stays far below the GbE limit (~44MB/s).

use smr_sim_jpaxos::{run_experiment, ExperimentConfig};

fn main() {
    let bsz_axis: Vec<usize> = if std::env::args().any(|a| a == "--quick") {
        vec![650, 1300, 5200]
    } else {
        vec![650, 1300, 2600, 5200, 10400]
    };
    smr_bench::banner(
        "Fig 11 + Table III (parapluie, 24 cores, n=3, WND=35)",
        "throughput, latency, batch fill, window, leader packet+byte rates vs BSZ",
    );
    let mut rows = Vec::new();
    for &bsz in &bsz_axis {
        let mut cfg = ExperimentConfig::parapluie(3, 24);
        cfg.wnd = 35;
        cfg.bsz = bsz;
        let r = run_experiment(&cfg);
        rows.push(vec![
            bsz.to_string(),
            smr_bench::kreq(r.throughput_rps),
            smr_bench::fmt(r.instance_latency_ms, 2),
            smr_bench::fmt(r.avg_batch_requests, 1),
            smr_bench::fmt(r.avg_batch_kb, 2),
            smr_bench::fmt(r.avg_window, 1),
            format!(
                "{:.0}/{:.0}",
                r.leader_tx_pps / 1000.0,
                r.leader_rx_pps / 1000.0
            ),
            format!("{:.0}/{:.0}", r.leader_tx_mbps, r.leader_rx_mbps),
        ]);
    }
    println!(
        "{}",
        smr_bench::render_table(
            &[
                "BSZ",
                "req/s(x1000)",
                "inst.lat(ms)",
                "batch(reqs)",
                "batch(KB)",
                "window",
                "pkts out/in (K/s)",
                "MB/s out/in",
            ],
            &rows,
        )
    );
}
