//! Figures 12, 13, 14: JPaxos vs. ZooKeeper head to head (parapluie,
//! n=3).
//!
//! Paper reference points: ZooKeeper scales super-linearly to a speedup
//! of ~6 at 4 cores (~50K requests/s) then *degrades* to a speedup of ~4
//! with all 24 cores, its leader's aggregate blocked time exceeding 100%
//! of the run; JPaxos keeps scaling to ~100K and its blocked time never
//! exceeds ~20%. At 24 cores several ZooKeeper threads are pinned at
//! busy+blocked ≈ 100% (single-thread bottlenecks), the CommitProcessor
//! spending ~40% of its time blocked.

use smr_sim_jpaxos::{run_experiment, ExperimentConfig};
use smr_sim_zab::{run_zab_experiment, ZabConfig};

fn main() {
    let cores_axis: Vec<usize> = if std::env::args().any(|a| a == "--quick") {
        vec![1, 4, 8, 24]
    } else {
        vec![1, 2, 4, 6, 8, 10, 12, 16, 20, 24]
    };
    smr_bench::banner(
        "Fig 12/13 (parapluie, n=3)",
        "JPaxos vs ZooKeeper: throughput, speedup, leader CPU + blocked time vs cores",
    );
    let mut rows = Vec::new();
    let (mut jp_base, mut zk_base) = (None, None);
    let mut zk_profile = None;
    for &cores in &cores_axis {
        let jp = run_experiment(&ExperimentConfig::parapluie(3, cores));
        let zk = run_zab_experiment(&ZabConfig::new(3, cores));
        let jp_b = *jp_base.get_or_insert(jp.throughput_rps);
        let zk_b = *zk_base.get_or_insert(zk.throughput_rps);
        let jp_leader = jp.replicas.last().unwrap();
        let zk_leader = zk.replicas.last().unwrap().clone();
        rows.push(vec![
            cores.to_string(),
            smr_bench::kreq(jp.throughput_rps),
            smr_bench::kreq(zk.throughput_rps),
            smr_bench::fmt(jp.throughput_rps / jp_b, 2),
            smr_bench::fmt(zk.throughput_rps / zk_b, 2),
            smr_bench::fmt(jp_leader.cpu_util_pct, 0),
            smr_bench::fmt(zk_leader.cpu_util_pct, 0),
            smr_bench::fmt(jp_leader.blocked_pct, 1),
            smr_bench::fmt(zk_leader.blocked_pct, 1),
        ]);
        if cores == *cores_axis.last().unwrap() {
            zk_profile = Some(zk_leader);
        }
    }
    println!(
        "{}",
        smr_bench::render_table(
            &[
                "cores",
                "JPaxos(x1000)",
                "ZK(x1000)",
                "JP speedup",
                "ZK speedup",
                "JP CPU%",
                "ZK CPU%",
                "JP blk%",
                "ZK blk%",
            ],
            &rows,
        )
    );
    if let Some(leader) = zk_profile {
        smr_bench::banner(
            "Fig 14b (ZooKeeper leader per-thread profile, max cores)",
            "several threads pinned at busy+blocked ~100%; CommitProcessor heavily blocked",
        );
        println!("{}", smr_sim::render_breakdown(&leader.threads));
    }
    // Fig 14a: the same profile at one core.
    let zk1 = run_zab_experiment(&ZabConfig::new(3, 1));
    smr_bench::banner(
        "Fig 14a (ZooKeeper leader per-thread profile, 1 core)",
        "moderate blocking even on one core",
    );
    println!(
        "{}",
        smr_sim::render_breakdown(&zk1.replicas.last().unwrap().threads)
    );
}
