//! Figures 4 & 5: JPaxos throughput, speedup, CPU utilization and total
//! blocked time vs. number of cores on the 24-core parapluie cluster,
//! for n=3 and n=5.
//!
//! Paper reference points (parapluie): n=3 linear speedup to ~6 cores,
//! max speedup ~6.5 at 12 cores, ~100K requests/s plateau to 24 cores;
//! n=5 peaks at speedup ~5.5; leader CPU ≈ 400–500% at peak; total
//! blocked time stays under ~20% of the run.

use smr_sim_jpaxos::{run_experiment, ExperimentConfig};

fn main() {
    let cores_axis: Vec<usize> = if quick() {
        vec![1, 4, 8, 24]
    } else {
        vec![1, 2, 4, 6, 8, 10, 12, 16, 20, 24]
    };
    for n in [3usize, 5] {
        smr_bench::banner(
            &format!("Fig 4/5 (parapluie, n={n})"),
            "throughput + speedup + CPU utilization + total blocked time vs cores",
        );
        let mut rows = Vec::new();
        let mut base = None;
        for &cores in &cores_axis {
            let cfg = ExperimentConfig::parapluie(n, cores);
            let r = run_experiment(&cfg);
            let base_tput = *base.get_or_insert(r.throughput_rps);
            let leader = r.replicas.last().expect("leader report");
            let follower = &r.replicas[0];
            rows.push(vec![
                cores.to_string(),
                smr_bench::kreq(r.throughput_rps),
                smr_bench::fmt(r.throughput_rps / base_tput, 2),
                smr_bench::fmt(leader.cpu_util_pct, 0),
                smr_bench::fmt(follower.cpu_util_pct, 0),
                smr_bench::fmt(leader.blocked_pct, 1),
                smr_bench::fmt(r.instance_latency_ms, 2),
                smr_bench::fmt(r.avg_window, 1),
                smr_bench::fmt(r.leader_tx_pps / 1000.0, 0),
                smr_bench::fmt(r.leader_rx_pps / 1000.0, 0),
            ]);
        }
        println!(
            "{}",
            smr_bench::render_table(
                &[
                    "cores",
                    "req/s(x1000)",
                    "speedup",
                    "leaderCPU%",
                    "followerCPU%",
                    "leaderBlk%",
                    "inst.lat(ms)",
                    "window",
                    "tx(Kpps)",
                    "rx(Kpps)",
                ],
                &rows,
            )
        );
    }
}

fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}
