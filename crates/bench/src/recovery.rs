//! Harnesses for the durability measurements in `bench_snapshot`:
//! snapshot write/restore over a populated KV service, and cold-start
//! recovery replay straight from a write-ahead log on disk.

use std::time::{Duration, Instant};

use smr_core::{KvService, Service, SnapshotService};
use smr_storage::Storage;
use smr_types::{ClientId, RequestId, SeqNum, Slot};
use smr_wire::{Batch, Request};

/// A KV service populated with `keys` distinct 16-byte-value entries.
fn populated(keys: u64) -> KvService {
    let mut service = KvService::new();
    for i in 0..keys {
        service.execute(&KvService::put(&i.to_le_bytes(), &[0xAB; 16]));
    }
    service
}

/// Snapshot-write throughput: serializes the full state of a service
/// holding `keys` entries, `iters` times. Returns `(entries_serialized,
/// elapsed)` — entries/second is the paper-style rate for sizing how
/// often a replica can afford to checkpoint.
pub fn snapshot_write(keys: u64, iters: u64) -> (u64, Duration) {
    let service = populated(keys);
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(service.snapshot());
    }
    (keys * iters, start.elapsed())
}

/// Snapshot-restore throughput: deserializes one snapshot of `keys`
/// entries into a fresh service, `iters` times. Returns
/// `(entries_restored, elapsed)` — the rate bounding how fast a lagging
/// replica can install a transferred snapshot.
pub fn snapshot_restore(keys: u64, iters: u64) -> (u64, Duration) {
    let blob = populated(keys).snapshot();
    let start = Instant::now();
    for _ in 0..iters {
        let mut service = KvService::new();
        service.restore(&blob).expect("restore benchmark snapshot");
        std::hint::black_box(&service);
    }
    (keys * iters, start.elapsed())
}

/// Recovery-replay throughput: writes `batches` WAL batches of
/// `per_batch` puts to a scratch directory, then measures a cold
/// [`Storage::open`] (segment scan, CRC verification, decode) plus
/// sequential re-execution of the tail — the full crash-recovery path
/// minus the thread spawn. Returns `(requests_replayed, elapsed)`.
pub fn recovery_replay(batches: u64, per_batch: u64) -> (u64, Duration) {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "smr-bench-replay-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    {
        let (mut storage, _) = Storage::open(&dir).expect("open scratch wal");
        for b in 0..batches {
            let requests = (0..per_batch)
                .map(|i| {
                    let n = b * per_batch + i;
                    Request::new(
                        RequestId::new(ClientId(n % 64 + 1), SeqNum(n / 64)),
                        KvService::put(&n.to_le_bytes(), &[0xCD; 16]),
                    )
                })
                .collect();
            storage.append(Slot(b), &Batch::new(requests)).unwrap();
        }
        storage.sync().unwrap();
    }
    let start = Instant::now();
    let (_storage, recovered) = Storage::open(&dir).expect("recover scratch wal");
    let mut service = KvService::new();
    let mut replayed = 0u64;
    for (_slot, batch) in &recovered.tail {
        for request in &batch.requests {
            std::hint::black_box(service.execute(&request.payload));
            replayed += 1;
        }
    }
    let elapsed = start.elapsed();
    assert_eq!(replayed, batches * per_batch, "whole tail replayed");
    let _ = std::fs::remove_dir_all(&dir);
    (replayed, elapsed)
}
