//! Shared plumbing for the experiment binaries: table rendering and
//! series printing in the paper's units, plus the contended-queue
//! harnesses shared by the criterion benches and `bench_snapshot` (so
//! the committed `BENCH_PRn.json` trajectory and `cargo bench` always
//! measure the same workload).
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the index) and prints the same rows or
//! series the paper plots, so EXPERIMENTS.md can record
//! paper-vs-measured side by side.

use std::fmt::Write as _;
use std::time::Duration;

use smr_queue::{BoundedQueue, MutexBoundedQueue, PopError};

mod clientio;
mod exec;
mod recovery;

pub use clientio::{clientio_tcp_run, ClientIoCell, IoMode};
pub use exec::{exec_parallel, exec_sequential, CpuHashService};
pub use recovery::{recovery_replay, snapshot_restore, snapshot_write};

/// Uncontended harness: `pairs` scalar push+pop round trips on one
/// thread. Returns `(items_moved, elapsed)`.
pub fn queue_uncontended_scalar(pairs: u64) -> (u64, Duration) {
    let q = BoundedQueue::new("uncontended", 1024);
    let start = std::time::Instant::now();
    for i in 0..pairs {
        q.push(i).unwrap();
        std::hint::black_box(q.pop().unwrap());
    }
    (pairs, start.elapsed())
}

/// Uncontended harness: moves `items` items through the bulk API in
/// bursts of `burst` (`push_many` then `try_pop_all` into a reused
/// buffer). Returns `(items_moved, elapsed)`.
pub fn queue_uncontended_bulk(items: u64, burst: u64) -> (u64, Duration) {
    // Capacity must hold a full burst: a single-threaded push_many on a
    // smaller queue would block forever waiting for a consumer.
    let q = BoundedQueue::new("uncontended", 1024.max(burst as usize));
    let mut buf: Vec<u64> = Vec::with_capacity(burst as usize);
    let mut moved = 0u64;
    let start = std::time::Instant::now();
    while moved < items {
        let n = burst.min(items - moved);
        q.push_many(std::hint::black_box(0..n)).unwrap();
        q.try_pop_all(&mut buf).unwrap();
        std::hint::black_box(&buf);
        buf.clear();
        moved += n;
    }
    (moved, start.elapsed())
}

/// Stamps out the contended MPMC harnesses for one queue core. The ring
/// ([`BoundedQueue`]) and the retained mutex reference core
/// ([`MutexBoundedQueue`]) expose the same API, so one body serves
/// both — and `bench_snapshot` can measure ring vs mutex in a single
/// run on the same machine, making the speedup a same-file ratio.
macro_rules! mpmc_harnesses {
    ($scalar:ident, $bulk:ident, $Q:ident, $core:literal) => {
        #[doc = concat!(
                                    "Contended MPMC harness (", $core, " core): 4 producers and 4 \
             consumers move at least `items` items through one \
             capacity-1024 queue with scalar ops (`push`/`pop`). \
             Returns `(items_moved, elapsed)`."
                                )]
        pub fn $scalar(items: u64) -> (u64, Duration) {
            let q = $Q::new("mpmc4x4", 1024);
            let per = items.div_ceil(4);
            let start = std::time::Instant::now();
            let producers: Vec<_> = (0..4)
                .map(|_| {
                    let q = q.clone();
                    std::thread::spawn(move || {
                        for i in 0..per {
                            q.push(i).unwrap();
                        }
                    })
                })
                .collect();
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let q = q.clone();
                    std::thread::spawn(move || while q.pop().is_ok() {})
                })
                .collect();
            for p in producers {
                p.join().unwrap();
            }
            q.close();
            for c in consumers {
                c.join().unwrap();
            }
            (per * 4, start.elapsed())
        }

        #[doc = concat!(
                                    "Same shape as the scalar ", $core, "-core harness but on the \
             bulk API: producers `push_many` bursts of `burst`, consumers \
             drain via `pop_wait_all`. Returns `(items_moved, elapsed)`."
                                )]
        pub fn $bulk(items: u64, burst: u64) -> (u64, Duration) {
            let q = $Q::new("mpmc4x4", 1024);
            let per = items.div_ceil(4);
            let start = std::time::Instant::now();
            let producers: Vec<_> = (0..4)
                .map(|_| {
                    let q = q.clone();
                    std::thread::spawn(move || {
                        let mut i = 0;
                        while i < per {
                            let end = (i + burst).min(per);
                            q.push_many(i..end).unwrap();
                            i = end;
                        }
                    })
                })
                .collect();
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let q = q.clone();
                    std::thread::spawn(move || {
                        let mut buf = Vec::with_capacity(1024);
                        while let Ok(_) | Err(PopError::Empty) =
                            q.pop_wait_all(&mut buf, 1024, Duration::from_millis(50))
                        {
                            buf.clear();
                        }
                    })
                })
                .collect();
            for p in producers {
                p.join().unwrap();
            }
            q.close();
            for c in consumers {
                c.join().unwrap();
            }
            (per * 4, start.elapsed())
        }
    };
}

mpmc_harnesses!(mpmc_4x4_scalar, mpmc_4x4_bulk, BoundedQueue, "ring");
mpmc_harnesses!(
    mpmc_4x4_scalar_mutex,
    mpmc_4x4_bulk_mutex,
    MutexBoundedQueue,
    "mutex"
);

/// Renders a simple aligned table.
///
/// # Examples
///
/// ```
/// let table = smr_bench::render_table(
///     &["cores", "req/s"],
///     &[vec!["1".to_string(), "15000".to_string()]],
/// );
/// assert!(table.contains("cores"));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(out, "{:>w$}  ", h, w = widths[i]);
    }
    out.push('\n');
    for (i, _) in headers.iter().enumerate() {
        let _ = write!(out, "{}  ", "-".repeat(widths[i]));
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(out, "{:>w$}  ", cell, w = widths[i]);
        }
        out.push('\n');
    }
    out
}

/// Formats a float with `digits` decimals.
pub fn fmt(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Formats requests/s as the paper's "x1000" unit.
pub fn kreq(v: f64) -> String {
    format!("{:.1}", v / 1000.0)
}

/// Prints a figure/table banner.
pub fn banner(title: &str, what: &str) {
    println!("==================================================================");
    println!("{title}");
    println!("  {what}");
    println!("==================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn kreq_matches_paper_unit() {
        assert_eq!(kreq(100_000.0), "100.0");
    }

    #[test]
    fn mpmc_harnesses_move_all_items() {
        let (n, elapsed) = mpmc_4x4_scalar(1000);
        assert!(n >= 1000 && n % 4 == 0);
        assert!(elapsed > Duration::ZERO);
        let (n, elapsed) = mpmc_4x4_bulk(1000, 64);
        assert!(n >= 1000 && n % 4 == 0);
        assert!(elapsed > Duration::ZERO);
    }

    #[test]
    fn mutex_core_harnesses_move_all_items() {
        let (n, elapsed) = mpmc_4x4_scalar_mutex(1000);
        assert!(n >= 1000 && n % 4 == 0);
        assert!(elapsed > Duration::ZERO);
        let (n, elapsed) = mpmc_4x4_bulk_mutex(1000, 64);
        assert!(n >= 1000 && n % 4 == 0);
        assert!(elapsed > Duration::ZERO);
    }
}
