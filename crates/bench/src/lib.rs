//! Shared plumbing for the experiment binaries: table rendering and
//! series printing in the paper's units.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the index) and prints the same rows or
//! series the paper plots, so EXPERIMENTS.md can record
//! paper-vs-measured side by side.

use std::fmt::Write as _;

/// Renders a simple aligned table.
///
/// # Examples
///
/// ```
/// let table = smr_bench::render_table(
///     &["cores", "req/s"],
///     &[vec!["1".to_string(), "15000".to_string()]],
/// );
/// assert!(table.contains("cores"));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(out, "{:>w$}  ", h, w = widths[i]);
    }
    out.push('\n');
    for (i, _) in headers.iter().enumerate() {
        let _ = write!(out, "{}  ", "-".repeat(widths[i]));
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(out, "{:>w$}  ", cell, w = widths[i]);
        }
        out.push('\n');
    }
    out
}

/// Formats a float with `digits` decimals.
pub fn fmt(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Formats requests/s as the paper's "x1000" unit.
pub fn kreq(v: f64) -> String {
    format!("{:.1}", v / 1000.0)
}

/// Prints a figure/table banner.
pub fn banner(title: &str, what: &str) {
    println!("==================================================================");
    println!("{title}");
    println!("  {what}");
    println!("==================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn kreq_matches_paper_unit() {
        assert_eq!(kreq(100_000.0), "100.0");
    }
}
