//! Harness for the scalar-vs-parallel execution comparison in
//! `bench_snapshot`: a heavyweight [`ConflictAwareService`] plus
//! closed-form sequential and parallel drivers over a conflict-free
//! command stream (distinct keys, distinct clients — the best case the
//! dependency scheduler can exploit).
//!
//! The service has two cost knobs, because the two interesting regimes
//! differ:
//!
//! * `rounds` — pure CPU work (a hash-chain loop) per command. Parallel
//!   execution only beats sequential here when real cores are available;
//!   on a single-core host the comparison measures scheduler overhead
//!   instead, which is exactly what we want recorded.
//! * `stall` — a modeled per-command wait (sleep), standing in for the
//!   disk reads, fsyncs, or downstream RPCs a real replicated service
//!   performs. Stalls overlap on a worker pool regardless of core count,
//!   so this regime shows the scheduling win even on one core.

use std::sync::Arc;
use std::time::Duration;

use smr_core::{
    ConcurrentKvService, ConflictAwareService, KvService, ParallelExecutor, ServiceState,
};
use smr_types::{ClientId, KeySet, RequestId, SeqNum};
use smr_wire::Request;

/// A KV service made deliberately expensive: every command burns
/// `rounds` iterations of a hash chain and then waits `stall` before
/// touching the (sharded, concurrently accessible) store. Conflict
/// classification and state digesting are inherited from
/// [`ConcurrentKvService`], so commands on distinct keys are
/// independent.
pub struct CpuHashService {
    store: ConcurrentKvService,
    rounds: u32,
    stall: Duration,
}

impl CpuHashService {
    /// A service costing `rounds` hash iterations plus `stall` of
    /// modeled I/O wait per command.
    pub fn new(rounds: u32, stall: Duration) -> Self {
        CpuHashService {
            store: ConcurrentKvService::default(),
            rounds,
            stall,
        }
    }

    /// The CPU burn: a data-dependent hash chain the optimizer cannot
    /// elide or vectorize away.
    fn burn(&self, seed: u64) -> u64 {
        let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
        for i in 0..self.rounds {
            h = h
                .rotate_left(13)
                .wrapping_mul(0xFF51_AFD7_ED55_8CCD)
                .wrapping_add(u64::from(i));
        }
        h
    }
}

impl ConflictAwareService for CpuHashService {
    fn conflict_keys(&self, request: &[u8]) -> KeySet {
        self.store.conflict_keys(request)
    }

    fn execute(&self, request: &[u8]) -> Vec<u8> {
        let seed = request.iter().fold(0u64, |h, &b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
        });
        std::hint::black_box(self.burn(seed));
        if !self.stall.is_zero() {
            std::thread::sleep(self.stall);
        }
        self.store.execute(request)
    }
}

impl ServiceState for CpuHashService {
    fn state_hash(&self) -> u64 {
        self.store.state_hash()
    }
}

/// The conflict-free command stream: `n` puts to `n` distinct keys from
/// `n` distinct clients, so neither key conflicts nor per-client chains
/// serialize anything.
fn commands(n: u64) -> Vec<Request> {
    (0..n)
        .map(|i| {
            Request::new(
                RequestId::new(ClientId(i + 1), SeqNum(0)),
                KvService::put(&i.to_le_bytes(), &[0xAB; 16]),
            )
        })
        .collect()
}

/// Sequential baseline: the decided order executed one command at a
/// time on the calling thread, exactly like the default ServiceManager.
/// Returns `(commands, elapsed)`.
pub fn exec_sequential(rounds: u32, stall: Duration, n: u64) -> (u64, Duration) {
    let service = CpuHashService::new(rounds, stall);
    let cmds = commands(n);
    let start = std::time::Instant::now();
    for cmd in &cmds {
        std::hint::black_box(service.execute(&cmd.payload));
    }
    (n, start.elapsed())
}

/// Parallel run: the same decided order submitted to a
/// [`ParallelExecutor`] with `workers` threads. Returns
/// `(commands, elapsed)`; elapsed covers submit through last completion.
pub fn exec_parallel(rounds: u32, stall: Duration, n: u64, workers: usize) -> (u64, Duration) {
    let service = Arc::new(CpuHashService::new(rounds, stall));
    let mut exec = ParallelExecutor::new(service, workers);
    let cmds = commands(n);
    let mut replies = Vec::with_capacity(n as usize);
    let start = std::time::Instant::now();
    for cmd in cmds {
        exec.submit(cmd);
    }
    exec.wait_idle(&mut replies);
    let elapsed = start.elapsed();
    assert_eq!(replies.len(), n as usize, "every command completed");
    exec.shutdown();
    (n, elapsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_drivers_reach_the_same_state() {
        let seq = CpuHashService::new(10, Duration::ZERO);
        for cmd in commands(20) {
            seq.execute(&cmd.payload);
        }
        let par = Arc::new(CpuHashService::new(10, Duration::ZERO));
        let mut exec = ParallelExecutor::new(par.clone(), 3);
        for cmd in commands(20) {
            exec.submit(cmd);
        }
        let mut replies = Vec::new();
        exec.wait_idle(&mut replies);
        exec.shutdown();
        assert_eq!(replies.len(), 20);
        assert_eq!(seq.state_hash(), par.state_hash());
    }

    #[test]
    fn stalls_overlap_on_the_worker_pool() {
        // 16 commands x 2ms stall: ≥32ms sequentially, far less on 8
        // workers even on one core. Generous threshold to stay
        // CI-stable.
        let (_, seq) = exec_sequential(0, Duration::from_millis(2), 16);
        let (_, par) = exec_parallel(0, Duration::from_millis(2), 16, 8);
        assert!(seq >= Duration::from_millis(30), "sequential lower bound");
        assert!(par < seq, "overlap beats serial stalls: {par:?} vs {seq:?}");
    }
}
