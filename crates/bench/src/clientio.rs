//! ClientIO connection-scaling harness over real TCP sockets.
//!
//! A single replica (consensus over the in-memory fabric, so the client
//! path is the only variable) serves closed-loop TCP clients while a
//! configurable number of connected-but-silent TCP connections sit on
//! the same listener. The threaded ClientIO mode scans every owned
//! connection per wakeup, so its per-iteration cost grows with the
//! connection count; the evented mode pays one `epoll_wait` regardless.
//! Sweeping the idle-connection axis against both modes is what turns
//! that asymptotic claim into a same-run measured ratio (Fig. 9's
//! ClientIO axis, extended to connection count).

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use smr_core::{EventedIoOptions, NullService, ReplicaBuilder, SmrClient};
use smr_net::memory::MemoryHub;
use smr_net::tcp::{TcpClientEndpoint, TcpClientListener};
use smr_types::{ClientId, ClusterConfig, ReplicaId};

/// Which client-facing I/O implementation the replica runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoMode {
    /// The compat default: a pool of threads, each scanning its owned
    /// connections with nonblocking reads.
    Threaded,
    /// The readiness loop: each pool thread owns an epoll instance and a
    /// connection slab.
    Evented,
}

impl IoMode {
    /// Short label for tables and JSON field names.
    pub fn label(self) -> &'static str {
        match self {
            IoMode::Threaded => "threaded",
            IoMode::Evented => "evented",
        }
    }
}

/// One cell of the connection-scaling sweep.
#[derive(Debug, Clone, Copy)]
pub struct ClientIoCell {
    /// ClientIO pool size.
    pub pool: usize,
    /// Connected-but-silent TCP connections held open for the window.
    pub idle_conns: usize,
    /// Per-thread reply queue capacity.
    pub reply_capacity: usize,
    /// Closed-loop active clients driving load.
    pub active_clients: usize,
    /// Measurement window.
    pub window: Duration,
}

/// Runs one sweep cell: a single-replica cluster with a TCP client
/// listener in the given I/O mode, `idle_conns` silent connections, and
/// `active_clients` closed-loop TCP clients. Returns requests/second
/// over the window.
///
/// # Panics
///
/// Panics if the replica fails to start or a connection fails — the
/// harness runs against 127.0.0.1, so failures indicate bugs or fd
/// exhaustion, not environment flakiness worth recovering from.
pub fn clientio_tcp_run(mode: IoMode, cell: ClientIoCell) -> f64 {
    let config = ClusterConfig::builder(1)
        .client_io_threads(cell.pool)
        .reply_queue_capacity(cell.reply_capacity)
        .build()
        .expect("valid config");
    let hub = MemoryHub::new(1, 0xF1609);
    let listener = TcpClientListener::bind("127.0.0.1:0".parse().unwrap()).expect("bind listener");
    let addr = listener.local_addr().expect("local addr");

    let mut builder = ReplicaBuilder::new(ReplicaId(0), config)
        .with_network(Arc::new(hub.replica_network(ReplicaId(0))))
        .with_client_listener(Box::new(listener))
        .with_service(Box::new(NullService::default()));
    if mode == IoMode::Evented {
        builder = builder.with_evented_client_io(cell.pool, EventedIoOptions::default());
    }
    let replica = builder.start().expect("replica starts");

    // Idle connections: opened before the timed window so both modes
    // carry them for the whole measurement. They never write a byte.
    let idle: Vec<TcpStream> = (0..cell.idle_conns)
        .map(|_| TcpStream::connect(addr).expect("idle connect"))
        .collect();

    // Warm-up, then closed-loop clients for the window.
    let mut warm = tcp_client(ClientId(1), addr);
    for _ in 0..20 {
        warm.execute(&[0u8; 128]).expect("warm-up request");
    }
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..cell.active_clients)
        .map(|c| {
            let stop = Arc::clone(&stop);
            let mut client = tcp_client(ClientId(100 + c as u64), addr);
            std::thread::spawn(move || {
                let payload = [0u8; 128];
                let mut done = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if client.execute(&payload).is_err() {
                        break;
                    }
                    done += 1;
                }
                done
            })
        })
        .collect();
    let start = Instant::now();
    std::thread::sleep(cell.window);
    stop.store(true, Ordering::Relaxed);
    let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    let rps = total as f64 / start.elapsed().as_secs_f64();

    drop(idle);
    replica.shutdown();
    hub.shutdown();
    rps
}

fn tcp_client(id: ClientId, addr: SocketAddr) -> SmrClient {
    SmrClient::new(
        id,
        1,
        Box::new(move |_| TcpClientEndpoint::connect(addr).map(|ep| Box::new(ep) as _)),
    )
    .with_timeouts(Duration::from_millis(500), Duration::from_secs(20))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_modes_serve_requests_over_tcp() {
        for mode in [IoMode::Threaded, IoMode::Evented] {
            let rps = clientio_tcp_run(
                mode,
                ClientIoCell {
                    pool: 1,
                    idle_conns: 4,
                    reply_capacity: 1024,
                    active_clients: 2,
                    window: Duration::from_millis(300),
                },
            );
            assert!(rps > 0.0, "{} mode moved no requests", mode.label());
        }
    }
}
