//! Deadline-ordered queue with lock-free cancellation, for the
//! Retransmitter thread.
//!
//! §V-C4 of the paper: the Protocol thread schedules a retransmission
//! whenever it first sends a message, and cancels it when the instance
//! decides. Cancellation is the common case (it happens for *every*
//! message under normal operation), so it must not take locks or wake the
//! Retransmitter: the Protocol thread merely sets an atomic flag, and the
//! Retransmitter drops the entry when its deadline expires.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// Handle for cancelling a scheduled entry without locking.
#[derive(Debug, Clone)]
pub struct CancelHandle {
    flag: Arc<AtomicBool>,
}

impl CancelHandle {
    /// Marks the entry cancelled. Never blocks, never wakes the timer
    /// thread (the paper's volatile-flag technique).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the entry has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// An expired, non-cancelled timer entry.
#[derive(Debug)]
pub struct TimerEntry<V> {
    /// The value scheduled.
    pub value: V,
    /// The deadline that expired.
    pub deadline: Instant,
}

struct Scheduled<V> {
    deadline: Instant,
    seq: u64,
    value: V,
    flag: Arc<AtomicBool>,
}

impl<V> PartialEq for Scheduled<V> {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl<V> Eq for Scheduled<V> {}
impl<V> PartialOrd for Scheduled<V> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<V> Ord for Scheduled<V> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

struct HeapState<V> {
    heap: BinaryHeap<Reverse<Scheduled<V>>>,
    next_seq: u64,
    closed: bool,
}

struct Inner<V> {
    heap: Mutex<HeapState<V>>,
    changed: Condvar,
}

/// Deadline-ordered queue of pending retransmissions.
///
/// Multiple threads may [`TimerQueue::schedule`]; one thread (the
/// Retransmitter) repeatedly calls [`TimerQueue::next_expired`].
///
/// # Examples
///
/// ```
/// use std::time::{Duration, Instant};
/// use smr_queue::TimerQueue;
///
/// let timers = TimerQueue::new();
/// let cancel = timers.schedule(Instant::now(), "retransmit propose s3");
/// assert!(!cancel.is_cancelled());
/// let fired = timers.next_expired(Duration::from_millis(100)).unwrap();
/// assert_eq!(fired.value, "retransmit propose s3");
/// ```
pub struct TimerQueue<V> {
    inner: Arc<Inner<V>>,
}

impl<V> Clone for TimerQueue<V> {
    fn clone(&self) -> Self {
        TimerQueue {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<V> Default for TimerQueue<V> {
    fn default() -> Self {
        TimerQueue::new()
    }
}

impl<V> std::fmt::Debug for TimerQueue<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerQueue")
            .field("len", &self.len())
            .finish()
    }
}

impl<V> TimerQueue<V> {
    /// Creates an empty timer queue.
    pub fn new() -> Self {
        TimerQueue {
            inner: Arc::new(Inner {
                heap: Mutex::new(HeapState {
                    heap: BinaryHeap::new(),
                    next_seq: 0,
                    closed: false,
                }),
                changed: Condvar::new(),
            }),
        }
    }

    /// Number of scheduled (possibly cancelled-but-unreaped) entries.
    pub fn len(&self) -> usize {
        self.inner.heap.lock().heap.len()
    }

    /// Whether no entries are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `value` to fire at `deadline`; returns a cancel handle.
    ///
    /// Wakes the timer thread only if the new entry becomes the earliest —
    /// the common case (appending a later deadline) is wake-free.
    pub fn schedule(&self, deadline: Instant, value: V) -> CancelHandle {
        let flag = Arc::new(AtomicBool::new(false));
        let mut guard = self.inner.heap.lock();
        let seq = guard.next_seq;
        guard.next_seq += 1;
        let earliest_before = guard.heap.peek().map(|Reverse(s)| s.deadline);
        guard.heap.push(Reverse(Scheduled {
            deadline,
            seq,
            value,
            flag: Arc::clone(&flag),
        }));
        let wake = earliest_before.map_or(true, |e| deadline < e);
        drop(guard);
        if wake {
            self.inner.changed.notify_one();
        }
        CancelHandle { flag }
    }

    /// Closes the queue: `next_expired` returns `None` once no expired
    /// entries remain to deliver.
    pub fn close(&self) {
        self.inner.heap.lock().closed = true;
        self.inner.changed.notify_all();
    }

    /// Blocks until the earliest non-cancelled entry expires, up to
    /// `max_wait`, and returns it. Returns `None` on timeout or when the
    /// queue is closed.
    ///
    /// Cancelled entries are silently reaped as their deadlines pass.
    pub fn next_expired(&self, max_wait: Duration) -> Option<TimerEntry<V>> {
        let give_up = Instant::now() + max_wait;
        let mut guard = self.inner.heap.lock();
        loop {
            if guard.closed {
                return None;
            }
            let now = Instant::now();
            // Reap cancelled/expired heads.
            while let Some(Reverse(head)) = guard.heap.peek() {
                if head.deadline <= now {
                    let Reverse(entry) = guard.heap.pop().expect("peeked entry exists");
                    if !entry.flag.load(Ordering::Acquire) {
                        return Some(TimerEntry {
                            value: entry.value,
                            deadline: entry.deadline,
                        });
                    }
                } else {
                    break;
                }
            }
            let wait_until = match guard.heap.peek() {
                Some(Reverse(head)) => head.deadline.min(give_up),
                None => give_up,
            };
            if wait_until <= now {
                if Instant::now() >= give_up {
                    return None;
                }
                continue;
            }
            if self
                .inner
                .changed
                .wait_until(&mut guard, wait_until)
                .timed_out()
                && wait_until >= give_up
            {
                // One more reap pass before giving up, in case something
                // expired exactly at the deadline.
                let now = Instant::now();
                while let Some(Reverse(head)) = guard.heap.peek() {
                    if head.deadline <= now {
                        let Reverse(entry) = guard.heap.pop().expect("peeked entry exists");
                        if !entry.flag.load(Ordering::Acquire) {
                            return Some(TimerEntry {
                                value: entry.value,
                                deadline: entry.deadline,
                            });
                        }
                    } else {
                        break;
                    }
                }
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fires_in_deadline_order() {
        let t = TimerQueue::new();
        let now = Instant::now();
        t.schedule(now + Duration::from_millis(20), "b");
        t.schedule(now + Duration::from_millis(5), "a");
        t.schedule(now + Duration::from_millis(40), "c");
        assert_eq!(t.next_expired(Duration::from_secs(1)).unwrap().value, "a");
        assert_eq!(t.next_expired(Duration::from_secs(1)).unwrap().value, "b");
        assert_eq!(t.next_expired(Duration::from_secs(1)).unwrap().value, "c");
    }

    #[test]
    fn cancelled_entries_are_dropped() {
        let t = TimerQueue::new();
        let now = Instant::now();
        let c1 = t.schedule(now + Duration::from_millis(5), "cancelled");
        t.schedule(now + Duration::from_millis(10), "kept");
        c1.cancel();
        assert!(c1.is_cancelled());
        assert_eq!(
            t.next_expired(Duration::from_secs(1)).unwrap().value,
            "kept"
        );
    }

    #[test]
    fn times_out_when_empty() {
        let t: TimerQueue<u32> = TimerQueue::new();
        let start = Instant::now();
        assert!(t.next_expired(Duration::from_millis(30)).is_none());
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn earlier_schedule_wakes_waiter() {
        let t = TimerQueue::new();
        t.schedule(Instant::now() + Duration::from_secs(60), "late");
        let t2 = t.clone();
        let h = thread::spawn(move || t2.next_expired(Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(20));
        t.schedule(Instant::now() + Duration::from_millis(5), "early");
        let fired = h.join().unwrap().unwrap();
        assert_eq!(fired.value, "early");
    }

    #[test]
    fn close_unblocks() {
        let t: TimerQueue<u32> = TimerQueue::new();
        let t2 = t.clone();
        let h = thread::spawn(move || t2.next_expired(Duration::from_secs(30)));
        thread::sleep(Duration::from_millis(20));
        t.close();
        assert!(h.join().unwrap().is_none());
    }

    #[test]
    fn cancel_all_then_timeout() {
        let t = TimerQueue::new();
        let now = Instant::now();
        let handles: Vec<_> = (0..10)
            .map(|i| t.schedule(now + Duration::from_millis(i), i))
            .collect();
        for h in &handles {
            h.cancel();
        }
        assert!(t.next_expired(Duration::from_millis(50)).is_none());
        assert!(t.is_empty(), "cancelled entries were reaped");
    }

    #[test]
    fn concurrent_schedulers() {
        let t = TimerQueue::new();
        let now = Instant::now();
        let mut handles = Vec::new();
        for p in 0..4 {
            let t = t.clone();
            handles.push(thread::spawn(move || {
                for i in 0..100u64 {
                    t.schedule(now + Duration::from_micros(i * 10), p * 1000 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut count = 0;
        while t.next_expired(Duration::from_millis(100)).is_some() {
            count += 1;
        }
        assert_eq!(count, 400);
    }
}
