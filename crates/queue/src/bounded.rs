//! Bounded MPMC queue: lock-free ring core with a parked-waiter slow
//! path, plus waiting/blocked time accounting.
//!
//! # Ring core
//!
//! The hot path is a bounded MPMC ring with in-order frontier
//! counters (the `rte_ring` family): producers CAS a claim head,
//! write values, and advance a published-frontier tail; consumers
//! mirror it with a claim head and a freed-frontier tail. No
//! operation that finds space/items takes a lock, and no per-item
//! atomic work exists at all — a bulk burst is **one CAS, one
//! frontier store, and at most two `memcpy` segments per side** — so
//! the amortization the mutex core achieved with "one lock per burst"
//! survives, without the lock and without per-slot metadata.
//!
//! The mutex + condvars still exist, but only as the slow path: a
//! thread that must *block* (full-queue push, empty-queue pop, timed
//! waits) registers as a sleeper and parks on a condvar. Fast-path
//! operations pay one `SeqCst` load to check for sleepers; with none
//! registered they never touch the lock. The memory-ordering argument
//! for why no waiter can miss its wake-up is spelled out on `Ring`
//! and in ARCHITECTURE.md.

use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use smr_metrics::{Counter, Gauge, ThreadHandle, ThreadState, Watermark};

use crate::registry::QueueProbe;

/// Error returned by non-blocking/timed pushes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue was at capacity.
    Full(T),
    /// The queue was closed; the item is handed back.
    Closed(T),
}

/// Error returned by pops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopError {
    /// The queue was empty (non-blocking/timed variants only).
    Empty,
    /// The queue was closed and drained.
    Closed,
}

impl fmt::Display for PopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PopError::Empty => f.write_str("queue is empty"),
            PopError::Closed => f.write_str("queue is closed"),
        }
    }
}

impl std::error::Error for PopError {}

/// The one wake-up per batch the bulk ops pay: nothing for an empty
/// batch, a single waiter for a single item, everyone for more.
pub(crate) fn notify_batch(cv: &Condvar, n: usize) {
    match n {
        0 => {}
        1 => {
            cv.notify_one();
        }
        _ => {
            cv.notify_all();
        }
    }
}

/// Cumulative statistics of one queue.
#[derive(Debug, Clone, Default)]
pub struct QueueStats {
    /// Items pushed over the queue's lifetime.
    pub pushed: u64,
    /// Items popped over the queue's lifetime.
    pub popped: u64,
    /// Number of push calls that had to wait for space (a bulk push that
    /// waits several times counts each wait episode; a non-blocking push
    /// rejected with `Full` also counts).
    pub push_waits: u64,
    /// Number of pop calls that had to wait for an item.
    pub pop_waits: u64,
    /// Configured capacity.
    pub capacity: usize,
    /// Number of items queued right now.
    pub depth: usize,
    /// Highest depth ever reached. Observed from the committed ring
    /// length immediately after each push's CAS, so it is exact in
    /// single-threaded use and can never exceed `capacity` even under
    /// concurrent push/pop races.
    pub high_watermark: usize,
}

/// Aligns to a cache line so the producer and consumer counters never
/// false-share (x86-64 line = 64 B; adjacent-line prefetch makes 128 B
/// the conservative choice, but 64 matches what `crossbeam` uses on
/// this target and keeps the struct compact).
#[repr(align(64))]
struct CachePadded<T>(T);

/// The lock-free bounded MPMC ring: four cache-line-padded position
/// counters around a bare value array, in the in-order-frontier style
/// of DPDK's `rte_ring` (rather than the per-slot-sequence Vyukov
/// style). Positions are absolute `u64`s that never wrap within any
/// realistic lifetime; a position's buffer index is `pos % cap`.
///
/// Producers CAS `enqueue_head` to claim a run of slots, write the
/// values, then advance the *published frontier* `enqueue_tail` — in
/// claim order, each claimant first waiting for earlier claimants
/// ([`Ring::advance_frontier`]) — so everything below `enqueue_tail`
/// is always fully written. Consumers mirror this exactly: they CAS
/// `dequeue_head` up to `enqueue_tail` to claim published items, move
/// the values out, then advance the *freed frontier* `dequeue_tail`
/// that producers measure free space against.
///
/// Invariant: `dequeue_tail ≤ dequeue_head ≤ enqueue_tail ≤
/// enqueue_head`, and `enqueue_head − dequeue_tail ≤ cap`.
///
/// The payoff over per-slot sequence numbers is that *nothing
/// per-item* remains on the hot path: a burst costs one CAS and one
/// frontier store on each side, and the values move as at most two
/// contiguous `memcpy` segments ([`Ring::copy_in`] /
/// [`Ring::copy_out`]). The cost is the in-order frontier: a claimant
/// preempted between its claim and its frontier advance briefly
/// stalls later claimants on its side. That wait is bounded by a
/// scheduling delay — no thread ever parks between claim and advance.
///
/// # Memory ordering
///
/// - The `enqueue_tail` store is `SeqCst` (≥ Release): it publishes
///   the value writes that precede it, and the consumer's Acquire
///   load in [`Ring::await_published`] synchronizes-with it, so
///   claimed values are never torn or stale. `dequeue_tail` is its
///   exact dual for slot reuse.
/// - Heads are CAS'd `SeqCst` so committed lengths derived from
///   `enqueue_head`/`dequeue_head` are totally ordered: a length
///   computed as `(claimed end) - (other counter read after the CAS)`
///   can only *under*-estimate, never exceed `capacity`.
/// - Sleeper handshakes (see `Inner::wake_*` / `BoundedQueue::park_*`)
///   are Dekker-style store-buffering cases, resolved without fences
///   because every participating access — the frontier store or head
///   CAS, the sleeper-counter RMW, and both sides' re-check loads —
///   is `SeqCst`: the single total order of `SeqCst` operations rules
///   out the both-sides-miss interleaving. Either the sleeper's
///   re-check sees the published state and it does not sleep, or the
///   publisher sees the registration and takes the lock to notify —
///   and the lock serializes "about to wait" with "about to notify".
struct Ring<T> {
    /// Producer claim frontier: slots below are claimed for writing.
    enqueue_head: CachePadded<AtomicU64>,
    /// Published frontier: every position below is fully written.
    enqueue_tail: CachePadded<AtomicU64>,
    /// Consumer claim frontier: items below are claimed for reading.
    dequeue_head: CachePadded<AtomicU64>,
    /// Freed frontier: every slot below may be overwritten.
    dequeue_tail: CachePadded<AtomicU64>,
    data: Box<[UnsafeCell<MaybeUninit<T>>]>,
    cap: u64,
}

// The UnsafeCell hands values across threads, exactly once each, with
// publication ordered by the frontier counters (SeqCst store /
// SeqCst load). `T: Send` is therefore sufficient, as for any channel.
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Ring<T> {
    /// Creates a ring of `capacity` slots whose absolute positions start
    /// at `start` (non-zero starts exercise index wraparound in tests).
    fn new(capacity: usize, start: u64) -> Self {
        let data: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        Ring {
            enqueue_head: CachePadded(AtomicU64::new(start)),
            enqueue_tail: CachePadded(AtomicU64::new(start)),
            dequeue_head: CachePadded(AtomicU64::new(start)),
            dequeue_tail: CachePadded(AtomicU64::new(start)),
            data,
            cap: capacity as u64,
        }
    }

    /// Claims up to `want` contiguous slots starting at the current
    /// tail: one load of the freed frontier and one CAS, no per-slot
    /// work. Returns `(first position, count)`, or `None` when no free
    /// space exists (queue full, or the freeing consumer has claimed
    /// items but not yet advanced `dequeue_tail`).
    ///
    /// Reading `enqueue_head` *before* `dequeue_tail` means the free
    /// space can only be under-estimated by a racing release — and a
    /// stale head is caught by the CAS — so a successful claim never
    /// covers a slot that still holds an unconsumed value.
    fn claim_push(&self, want: usize) -> Option<(u64, usize)> {
        let want = want.min(self.cap as usize) as u64;
        loop {
            let e = self.enqueue_head.0.load(Ordering::Relaxed);
            let freed = self.dequeue_tail.0.load(Ordering::SeqCst);
            // `freed` was loaded second, so it can exceed a stale `e`;
            // the saturation makes that harmless (the CAS fails on a
            // stale `e` anyway).
            let run = self.cap.saturating_sub(e.saturating_sub(freed)).min(want);
            if run == 0 {
                // Full from this view — unless the view was stale
                // because another producer advanced the head already.
                if self.enqueue_head.0.load(Ordering::Relaxed) != e {
                    continue;
                }
                return None;
            }
            if self
                .enqueue_head
                .0
                .compare_exchange_weak(e, e + run, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                return Some((e, run as usize));
            }
        }
    }

    /// Claims up to `max` *committed* items from the head — everything
    /// a producer has claimed through `enqueue_head`, published or not.
    /// One load and one CAS, no per-slot work. Returns `(first
    /// position, count)`, or `None` when nothing is committed.
    ///
    /// Claiming the committed range rather than the published range
    /// (`enqueue_tail`) is a regime stabilizer, not an optimization: a
    /// consumer that wakes mid-burst claims the producer's in-flight
    /// run and waits out its publication ([`Ring::await_published`]),
    /// instead of grabbing the published sliver, emptying the queue,
    /// and parking again — which under producer/consumer lockstep
    /// degrades to one park/notify round-trip per burst. The caller
    /// must be prepared to wait; producers never park between claim
    /// and publish, so the wait is bounded by a scheduling delay.
    fn claim_pop_committed(&self, max: usize) -> Option<(u64, usize)> {
        let max = max.min(self.cap as usize) as u64;
        loop {
            let d = self.dequeue_head.0.load(Ordering::Relaxed);
            // Loaded after `d`: a lower bound on the claims-committed
            // frontier at CAS time, so `d..d + run` only covers items
            // some producer owns and will publish.
            let committed = self.enqueue_head.0.load(Ordering::SeqCst);
            let run = committed.saturating_sub(d).min(max);
            if run == 0 {
                if self.dequeue_head.0.load(Ordering::Relaxed) != d {
                    continue;
                }
                return None;
            }
            if self
                .dequeue_head
                .0
                .compare_exchange_weak(d, d + run, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                return Some((d, run as usize));
            }
        }
    }

    /// Waits until the published frontier covers the claimed run
    /// `first..first + n`: one spinning counter wait per run, not per
    /// slot. In the common case the single Acquire load already sees
    /// the frontier past the run's end and the loop body never runs.
    fn await_published(&self, first: u64, n: usize) {
        let end = first + n as u64;
        let mut spins = 0u32;
        while self.enqueue_tail.0.load(Ordering::Acquire) < end {
            spins += 1;
            if spins > 256 {
                // The publisher has been preempted mid-publish; on an
                // oversubscribed host a herd of yielders can starve it
                // of a quantum for a long time. Sleeping hands the core
                // over outright.
                std::thread::sleep(Duration::from_micros(50));
            } else if spins > 64 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// In-order frontier advance, shared by publish (producer side,
    /// `enqueue_tail`) and release (consumer side, `dequeue_tail`):
    /// waits until `tail` reaches `first` — i.e. every earlier claimant
    /// on this side has advanced past its run — then stores
    /// `first + n`.
    ///
    /// The wait is a spin (then yield) rather than a park: the thread
    /// being waited on is between its own claim and advance, a window
    /// with no parking in it, so the stall is bounded by a scheduling
    /// delay. The store is `SeqCst`: as a Release it publishes this
    /// claimant's value writes (or value moves-out); as a `SeqCst` op
    /// it anchors the fence-free sleeper handshake (see [`Ring`]).
    fn advance_frontier(tail: &AtomicU64, first: u64, n: usize) {
        let mut spins = 0u32;
        while tail.load(Ordering::Acquire) != first {
            spins += 1;
            if spins > 256 {
                // Same escalation as `await_published`: the earlier
                // claimant holding the frontier is preempted, so burn no
                // more quanta yelling at it.
                std::thread::sleep(Duration::from_micros(50));
            } else if spins > 64 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        tail.store(first + n as u64, Ordering::SeqCst);
    }

    /// Publishes the claimed run `first..first + n` after its values
    /// were written ([`Ring::write`] / [`Ring::copy_in`]), making it
    /// claimable by consumers.
    fn publish(&self, first: u64, n: usize) {
        Self::advance_frontier(&self.enqueue_tail.0, first, n);
    }

    /// Releases the claimed run `first..first + n` after its values
    /// were moved out ([`Ring::read`] / [`Ring::copy_out`]), making the
    /// slots reusable by producers.
    fn release(&self, first: u64, n: usize) {
        Self::advance_frontier(&self.dequeue_tail.0, first, n);
    }

    /// Buffer index of absolute position `pos` (one hardware `u64`
    /// division — `cap` is not required to be a power of two; the bulk
    /// paths pay it once per run, not per item).
    #[inline]
    fn index_of(&self, pos: u64) -> usize {
        (pos % self.cap) as usize
    }

    /// Writes `value` into claimed position `pos` without publishing
    /// it — pair with [`Ring::publish`].
    ///
    /// # Safety
    ///
    /// `pos` must have been claimed by a successful `claim_push` and
    /// not yet written.
    unsafe fn write(&self, pos: u64, value: T) {
        unsafe { (*self.data[self.index_of(pos)].get()).write(value) };
    }

    /// Moves the value out of claimed position `pos` without releasing
    /// the slot — pair with [`Ring::release`].
    ///
    /// # Safety
    ///
    /// `pos` must have been claimed by a successful [`Ring::claim_pop_committed`]
    /// and not yet read.
    unsafe fn read(&self, pos: u64) -> T {
        unsafe { (*self.data[self.index_of(pos)].get()).assume_init_read() }
    }

    /// Copies `n` values from `src` into the claimed run
    /// `first..first + n` as at most two contiguous `memcpy` segments
    /// (the run wraps the buffer edge at most once). Does *not*
    /// publish — pair with [`Ring::publish`]. The source values are
    /// bitwise-moved: the caller must forget them (e.g. via
    /// `Vec::set_len`) without dropping.
    ///
    /// # Safety
    ///
    /// The run must have been claimed by a successful `claim_push` and
    /// not yet written; `src` must be valid for `n` reads.
    unsafe fn copy_in(&self, first: u64, n: usize, src: *const T) {
        let idx = self.index_of(first);
        let head = n.min(self.data.len() - idx);
        // UnsafeCell<MaybeUninit<T>> is layout-identical to T, so the
        // array region is writable as a contiguous run of T values.
        let base = UnsafeCell::raw_get(self.data.as_ptr()) as *mut T;
        unsafe {
            std::ptr::copy_nonoverlapping(src, base.add(idx), head);
            std::ptr::copy_nonoverlapping(src.add(head), base, n - head);
        }
    }

    /// Moves the values of the claimed run `first..first + n` out of
    /// the ring into `dst` as at most two contiguous `memcpy` segments.
    /// Does *not* release the slots — pair with [`Ring::release`].
    ///
    /// # Safety
    ///
    /// The run must have been claimed by a successful
    /// [`Ring::claim_pop_committed`] and none of it read yet. `dst` must be valid
    /// for `n` writes.
    unsafe fn copy_out(&self, first: u64, n: usize, dst: *mut T) {
        let idx = self.index_of(first);
        let head = n.min(self.data.len() - idx);
        let base = self.data.as_ptr() as *const T;
        unsafe {
            std::ptr::copy_nonoverlapping(base.add(idx), dst, head);
            std::ptr::copy_nonoverlapping(base, dst.add(head), n - head);
        }
    }

    /// Committed queue length: claimed pushes minus claimed pops — the
    /// count a consumer is entitled to wait for (a claimed-but-not-yet-
    /// published run counts; its producer is about to publish it).
    /// Reads the enqueue side first, so the difference never exceeds
    /// `cap` (the dequeue head can only have advanced further by the
    /// time it is read).
    fn len(&self) -> usize {
        let e = self.enqueue_head.0.load(Ordering::SeqCst);
        let d = self.dequeue_head.0.load(Ordering::SeqCst);
        e.saturating_sub(d).min(self.cap) as usize
    }

    /// Whether committed items exist (the park re-check: pops claim
    /// the committed range, so `enqueue_head != dequeue_head` means a
    /// claim would succeed and the consumer must not sleep).
    fn pop_ready(&self) -> bool {
        let e = self.enqueue_head.0.load(Ordering::SeqCst);
        let d = self.dequeue_head.0.load(Ordering::SeqCst);
        e != d
    }

    /// Whether free space exists (the park re-check dual of
    /// [`Ring::pop_ready`]). Loads the freed frontier *after* the
    /// enqueue head: a racing release only makes this report ready
    /// more often, and a spurious ready just loops back to a failing
    /// claim.
    fn push_ready(&self) -> bool {
        let e = self.enqueue_head.0.load(Ordering::SeqCst);
        let freed = self.dequeue_tail.0.load(Ordering::SeqCst);
        e.saturating_sub(freed) < self.cap
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Initialized-and-owned = published but not claimed by any
        // pop. (A run claimed for pop was moved out by its consumer; a
        // claimed-but-unpublished push run is treated as unwritten.
        // Either can leak values only if a thread panicked between its
        // claim and its frontier advance.)
        let d = *self.dequeue_head.0.get_mut();
        let p = *self.enqueue_tail.0.get_mut();
        for pos in d..p {
            let idx = (pos % self.cap) as usize;
            unsafe { self.data[idx].get_mut().assume_init_drop() };
        }
    }
}

/// Precise waiter counts, maintained strictly under the slow-path lock.
/// `pop_waiting` counts consumers *inside* a condvar wait (unlike the
/// lock-free `pop_sleepers`, which also covers the registration window),
/// so a wake-token holder can tell whether its `notify_one` will
/// actually land.
#[derive(Default)]
struct Waiters {
    pop_waiting: usize,
}

struct Inner<T> {
    ring: Ring<T>,
    /// Slow-path lock: guards the sleeper registrations, the condvar
    /// waits, and the precise under-lock waiter counts. The fast path
    /// never touches it.
    waiters: Mutex<Waiters>,
    not_empty: Condvar,
    not_full: Condvar,
    /// Consumers currently parked (or registering to park) on
    /// `not_empty`. Modified only while holding `waiters`; read
    /// lock-free by producers deciding whether to notify.
    pop_sleepers: AtomicUsize,
    /// Wake-token dedup: true while a `not_empty` notify has been issued
    /// and its target consumer has not yet left its park. Producers
    /// that find it set skip the slow-path lock entirely — without
    /// this, a consumer sleeping through several bursts costs one lock
    /// + notify round-trip per burst instead of one per sleep episode.
    ///
    /// Invariant: `true` implies a consumer was actually woken and
    /// will clear the flag on park exit (a notify that wakes nobody
    /// clears it immediately), so a set flag can never strand a
    /// sleeper.
    pop_wake_pending: AtomicBool,
    /// Producers parked on `not_full`; the dual of `pop_sleepers`.
    push_sleepers: AtomicUsize,
    capacity: usize,
    // Close-wakes-waiters handshake: `close` stores the flag and *then*
    // acquires `waiters` before notifying. Any would-be sleeper either
    // observes the flag during its under-lock re-check, or is already
    // parked and receives the notify.
    closed: AtomicBool,
    name: String,
    pushed: Counter,
    popped: Counter,
    push_waits: Counter,
    pop_waits: Counter,
    // Updated from the committed ring length right after each
    // operation's CAS; reads are lock-free (registry/sampler).
    depth: Gauge,
    high_watermark: Watermark,
}

impl<T> Inner<T> {
    /// Accounts a committed push of `n` items first claimed at `first`:
    /// counters, depth gauge, and the high-watermark, all computed from
    /// the post-CAS committed length. Reading the head *after* the CAS
    /// means the length can only under-estimate the instantaneous depth,
    /// so the watermark can never exceed capacity.
    fn note_push(&self, first: u64, n: usize) {
        self.pushed.add(n as u64);
        let d = self.ring.dequeue_head.0.load(Ordering::SeqCst);
        let len = (first + n as u64)
            .saturating_sub(d)
            .min(self.capacity as u64);
        self.high_watermark.observe(len);
        self.depth.set(len as i64);
    }

    /// Accounts a committed pop of `n` items first claimed at `first`;
    /// the dual of [`Inner::note_push`] (no watermark: pops only shrink
    /// the queue).
    fn note_pop(&self, first: u64, n: usize) {
        self.popped.add(n as u64);
        let e = self.ring.enqueue_head.0.load(Ordering::SeqCst);
        let len = e.saturating_sub(first + n as u64).min(self.capacity as u64);
        self.depth.set(len as i64);
    }

    /// Publisher half of the sleeper handshake: after committing items,
    /// wake a parked consumer. One load when nobody sleeps; the lock is
    /// taken only to serialize with a consumer between its registration
    /// and its wait. No fence is needed before the sleeper load: the
    /// caller's commit (the `SeqCst` `enqueue_head` CAS) and this
    /// `SeqCst` load, together with the sleeper's `SeqCst` registration
    /// and its position-based re-check ([`Ring::pop_ready`],
    /// all-`SeqCst` loads), put all four accesses in the single total
    /// order of `SeqCst` operations, which rules out the
    /// both-sides-miss interleaving directly.
    ///
    /// Exactly **one** consumer is woken, never the whole herd: a pop
    /// claims the entire committed range, so under `notify_all` every
    /// consumer but the winner pays two slow-path lock round-trips just
    /// to go back to sleep (measured as tens of thousands of futile
    /// park/claim cycles per second under a 4x4 bulk workload). A
    /// consumer that leaves committed items behind relays the wake to
    /// the next sleeper ([`Inner::after_pop`]), so a single token is
    /// enough for any number of sleepers.
    fn wake_consumers(&self) {
        if self.pop_sleepers.load(Ordering::SeqCst) > 0
            && !self.pop_wake_pending.swap(true, Ordering::SeqCst)
        {
            let guard = self.waiters.lock();
            if guard.pop_waiting > 0 {
                self.not_empty.notify_one();
            } else {
                // The registered sleeper left before ever waiting: drop
                // the token so the next wake is not suppressed.
                self.pop_wake_pending.store(false, Ordering::SeqCst);
            }
        }
    }

    /// Post-pop wake-ups: producers (space was freed) plus the consumer
    /// wake *relay* — if committed items remain and a consumer sleeps,
    /// pass the single wake token on. The relay is what makes
    /// [`Inner::wake_consumers`]'s `notify_one` sufficient: every state
    /// with committed items and only parked consumers is reached either
    /// by a push (which sends a token) or by a pop that left items
    /// behind (which relays one), so some sleeper always holds a token.
    /// Fence-free for the same reason as [`Inner::wake_consumers`]: the
    /// caller's release (a `SeqCst` `dequeue_tail` store), these
    /// `SeqCst` sleeper loads, a registering producer's `SeqCst`
    /// registration, and its position-based re-check
    /// ([`Ring::push_ready`]) all sit in the `SeqCst` total order.
    ///
    /// Producers keep the batch-sized notify (`notify_batch`): freed
    /// space is split between claimants rather than taken whole, so
    /// waking several producers lets each claim a share of a large
    /// drain.
    fn after_pop(&self, n: usize) {
        if self.push_sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.waiters.lock();
            notify_batch(&self.not_full, n);
        }
        if self.pop_sleepers.load(Ordering::SeqCst) > 0
            && self.ring.len() > 0
            && !self.pop_wake_pending.swap(true, Ordering::SeqCst)
        {
            let guard = self.waiters.lock();
            if guard.pop_waiting > 0 {
                self.not_empty.notify_one();
            } else {
                self.pop_wake_pending.store(false, Ordering::SeqCst);
            }
        }
    }
}

/// A bounded multi-producer multi-consumer FIFO queue.
///
/// Cloning shares the queue. Blocking operations come in untracked
/// (`push`/`pop`) and tracked (`push_with`/`pop_with`) flavours; tracked
/// variants charge wait time to the calling thread's profile as
/// [`ThreadState::Waiting`] — exactly what the JVM's `ThreadMXBean`
/// reports for a thread parked on a `Condition`.
///
/// # Lock-free core
///
/// The queue is a bounded MPMC ring (CAS'd claim heads, in-order
/// published/freed frontier tails — see `Ring`): operations that
/// find space/items complete without locking. The internal
/// mutex+condvar pair is only the slow path for threads that must
/// block, and for [`BoundedQueue::close`]'s
/// store-then-lock-then-notify protocol.
///
/// # Bulk operations
///
/// A request crosses at least four of these queues on its way through
/// the replica, so per-item overhead bounds end-to-end throughput. The
/// bulk operations ([`BoundedQueue::push_many`],
/// [`BoundedQueue::try_pop_all`], [`BoundedQueue::pop_wait_all`]) claim
/// a whole contiguous run of ring slots with one CAS and one wake-up
/// check per burst, draining into a caller-owned reusable buffer so the
/// steady state allocates nothing.
///
/// # Examples
///
/// ```
/// use smr_queue::BoundedQueue;
///
/// let q = BoundedQueue::new("RequestQueue", 1000);
/// q.push(42).unwrap();
/// assert_eq!(q.pop().unwrap(), 42);
///
/// q.push_many(0..3).unwrap();
/// let mut buf = Vec::new();
/// assert_eq!(q.try_pop_all(&mut buf).unwrap(), 3);
/// assert_eq!(buf, vec![0, 1, 2]);
/// ```
pub struct BoundedQueue<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for BoundedQueue<T> {
    fn clone(&self) -> Self {
        BoundedQueue {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("name", &self.inner.name)
            .field("capacity", &self.inner.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl<T> BoundedQueue<T> {
    /// Creates a queue with the given diagnostic name and capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        Self::with_start_index(name, capacity, 0)
    }

    /// Creates a queue whose ring positions start at `start` instead of
    /// zero. Behaviour is identical to [`BoundedQueue::new`]; the only
    /// use is tests/benches that exercise index wraparound (e.g. cycling
    /// the absolute positions past `u32::MAX` without pushing four
    /// billion items).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_start_index(name: impl Into<String>, capacity: usize, start: u64) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            inner: Arc::new(Inner {
                ring: Ring::new(capacity, start),
                waiters: Mutex::new(Waiters::default()),
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
                pop_sleepers: AtomicUsize::new(0),
                pop_wake_pending: AtomicBool::new(false),
                push_sleepers: AtomicUsize::new(0),
                capacity,
                closed: AtomicBool::new(false),
                name: name.into(),
                pushed: Counter::new(),
                popped: Counter::new(),
                push_waits: Counter::new(),
                pop_waits: Counter::new(),
                depth: Gauge::new(),
                high_watermark: Watermark::new(),
            }),
        }
    }

    /// The queue's diagnostic name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Maximum number of items the queue holds.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Current number of queued items (committed ring length; never
    /// exceeds the capacity).
    pub fn len(&self) -> usize {
        self.inner.ring.len()
    }

    /// Whether the queue currently holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.closed.load(Ordering::SeqCst)
    }

    /// Closes the queue: subsequent pushes fail, pops drain remaining
    /// items and then report [`PopError::Closed`]. All waiters wake.
    ///
    /// The store-then-lock-then-notify order is load-bearing: a thread
    /// that read `closed == false` during its under-lock park re-check
    /// is either still holding the slow-path lock (so this call's
    /// `notify_all` happens after it releases into the wait) or already
    /// parked — either way it receives the wake and re-checks the flag.
    pub fn close(&self) {
        self.inner.closed.store(true, Ordering::SeqCst);
        let _guard = self.inner.waiters.lock();
        self.inner.not_empty.notify_all();
        self.inner.not_full.notify_all();
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            pushed: self.inner.pushed.get(),
            popped: self.inner.popped.get(),
            push_waits: self.inner.push_waits.get(),
            pop_waits: self.inner.pop_waits.get(),
            capacity: self.inner.capacity,
            depth: self.inner.depth.get().max(0) as usize,
            high_watermark: self.inner.high_watermark.get() as usize,
        }
    }

    /// A type-erased observability handle for this queue: shares the
    /// queue's counters, depth gauge and high-watermark without holding
    /// the items' type, so queues of different item types can live in
    /// one [`QueueRegistry`](crate::QueueRegistry). All shared handles
    /// are plain atomics, so observation stays lock-free against the
    /// ring core.
    pub fn probe(&self) -> QueueProbe {
        QueueProbe::new(
            self.inner.name.clone(),
            self.inner.capacity,
            self.inner.depth.clone(),
            self.inner.high_watermark.clone(),
            self.inner.pushed.clone(),
            self.inner.popped.clone(),
            self.inner.push_waits.clone(),
            self.inner.pop_waits.clone(),
        )
    }

    /// Sleeper half of the consumer handshake: registers, re-checks the
    /// ring and the closed flag under the lock, and parks. Returns
    /// whether the wait timed out. `counted` dedupes the `pop_waits`
    /// accounting to one count per wait episode. No fence between
    /// registration and re-check: the registration RMW and the
    /// re-check loads are `SeqCst`, which pairs with the publisher's
    /// `SeqCst` frontier store + sleeper load (see [`Ring`]).
    fn park_pop(&self, deadline: Option<Instant>, counted: &mut bool) -> bool {
        let inner = &*self.inner;
        let mut guard = inner.waiters.lock();
        inner.pop_sleepers.fetch_add(1, Ordering::SeqCst);
        if inner.ring.pop_ready() || inner.closed.load(Ordering::SeqCst) {
            inner.pop_sleepers.fetch_sub(1, Ordering::SeqCst);
            return false;
        }
        if !*counted {
            inner.pop_waits.inc();
            *counted = true;
        }
        guard.pop_waiting += 1;
        let timed_out = match deadline {
            Some(dl) => inner.not_empty.wait_until(&mut guard, dl).timed_out(),
            None => {
                inner.not_empty.wait(&mut guard);
                false
            }
        };
        guard.pop_waiting -= 1;
        // Consume the wake token on any park exit (notify, timeout, or
        // spurious). Clearing on a timeout whose token targeted another
        // waiter merely permits one extra notify; never clearing would
        // suppress wakes forever.
        inner.pop_wake_pending.store(false, Ordering::SeqCst);
        inner.pop_sleepers.fetch_sub(1, Ordering::SeqCst);
        timed_out
    }

    /// The producer dual of [`BoundedQueue::park_pop`].
    fn park_push(&self, counted: &mut bool) {
        let inner = &*self.inner;
        let mut guard = inner.waiters.lock();
        inner.push_sleepers.fetch_add(1, Ordering::SeqCst);
        if inner.ring.push_ready() || inner.closed.load(Ordering::SeqCst) {
            inner.push_sleepers.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        if !*counted {
            inner.push_waits.inc();
            *counted = true;
        }
        inner.not_full.wait(&mut guard);
        inner.push_sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Moves `n` claimed items starting at `first` into `buf` and
    /// settles accounting + producer wake-ups.
    fn take_claimed(&self, first: u64, n: usize, buf: &mut Vec<T>) {
        let ring = &self.inner.ring;
        // One counter wait for the whole run, then move the values out
        // contiguously (≤ 2 memcpys) and release the slots for reuse.
        ring.await_published(first, n);
        buf.reserve(n);
        let base = buf.len();
        unsafe {
            ring.copy_out(first, n, buf.as_mut_ptr().add(base));
            buf.set_len(base + n);
        }
        ring.release(first, n);
        self.inner.note_pop(first, n);
        self.inner.after_pop(n);
    }

    /// Blocking push without metrics attribution.
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Closed`] if the queue is closed.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        self.push_impl(item, None)
    }

    /// Blocking push; wait time is charged to `handle` as `Waiting`.
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Closed`] if the queue is closed.
    pub fn push_with(&self, item: T, handle: &ThreadHandle) -> Result<(), PushError<T>> {
        self.push_impl(item, Some(handle))
    }

    fn push_impl(&self, item: T, handle: Option<&ThreadHandle>) -> Result<(), PushError<T>> {
        if self.is_closed() {
            return Err(PushError::Closed(item));
        }
        let mut counted = false;
        let mut wait_guard = None;
        loop {
            if let Some((pos, _)) = self.inner.ring.claim_push(1) {
                unsafe { self.inner.ring.write(pos, item) };
                self.inner.ring.publish(pos, 1);
                self.inner.note_push(pos, 1);
                self.inner.wake_consumers();
                return Ok(());
            }
            if self.is_closed() {
                return Err(PushError::Closed(item));
            }
            if wait_guard.is_none() {
                wait_guard = handle.map(|h| h.enter(ThreadState::Waiting));
            }
            self.park_push(&mut counted);
        }
    }

    /// Blocking bulk push: moves every item of `items` into the queue,
    /// claiming whatever contiguous run of free slots exists with one
    /// CAS per burst and waiting for room when full. Consumers are woken
    /// once per burst (one `notify_one` for a single item, one
    /// `notify_all` for more) instead of once per item — and only when
    /// one is actually parked. Returns the number of items pushed.
    ///
    /// Unlike the historical mutex core, the iterator is advanced
    /// *outside* any internal lock, so the old "must not touch this
    /// queue from `next()`" deadlock caveat no longer applies to the
    /// fast path; keep iterators cheap anyway — they run on the hot
    /// path.
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Closed`] carrying the items not yet pushed
    /// if the queue closes mid-way; items pushed before the close remain
    /// poppable (close drains).
    ///
    /// # Examples
    ///
    /// ```
    /// use smr_queue::BoundedQueue;
    ///
    /// let q = BoundedQueue::new("ProposalQueue", 8);
    /// assert_eq!(q.push_many(vec!["a", "b", "c"]).unwrap(), 3);
    /// assert_eq!(q.len(), 3);
    /// ```
    pub fn push_many<I>(&self, items: I) -> Result<usize, PushError<Vec<T>>>
    where
        I: IntoIterator<Item = T>,
    {
        self.push_many_impl(items, None)
    }

    /// Blocking bulk push; wait time is charged to `handle` as `Waiting`.
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Closed`] carrying the items not yet pushed if
    /// the queue closes mid-way.
    pub fn push_many_with<I>(
        &self,
        items: I,
        handle: &ThreadHandle,
    ) -> Result<usize, PushError<Vec<T>>>
    where
        I: IntoIterator<Item = T>,
    {
        self.push_many_impl(items, Some(handle))
    }

    fn push_many_impl<I>(
        &self,
        items: I,
        handle: Option<&ThreadHandle>,
    ) -> Result<usize, PushError<Vec<T>>>
    where
        I: IntoIterator<Item = T>,
    {
        let mut iter = items.into_iter();
        // Items pulled from the iterator but not yet written to claimed
        // slots (a claim can come up shorter than the staged run when
        // producers race); nothing here has been pushed yet.
        let mut staged: Vec<T> = Vec::new();
        let mut exhausted = false;
        let mut total = 0usize;
        let mut counted = false;
        let mut wait_guard = None;
        loop {
            if self.is_closed() {
                let mut rest: Vec<T> = staged;
                rest.extend(iter);
                if rest.is_empty() && total == 0 {
                    // Closed before anything was staged or pushed: the
                    // empty-input contract is Ok(0).
                    return Ok(0);
                }
                return Err(PushError::Closed(rest));
            }
            if staged.is_empty() && !exhausted {
                // Stage up to one queue's worth; more can never be
                // claimed in one burst anyway.
                staged.extend(iter.by_ref().take(self.inner.capacity));
                exhausted = staged.len() < self.inner.capacity;
            }
            if staged.is_empty() {
                return Ok(total);
            }
            match self.inner.ring.claim_push(staged.len()) {
                Some((first, n)) => {
                    let ring = &self.inner.ring;
                    // Bitwise-move the claimed prefix into the ring,
                    // shift any unclaimed remainder to the front, and
                    // publish. No per-item moves, no drops: the copies
                    // and `set_len` transfer ownership without running
                    // any `T` code, so there is no double-drop window.
                    unsafe {
                        ring.copy_in(first, n, staged.as_ptr());
                        let rem = staged.len() - n;
                        std::ptr::copy(staged.as_ptr().add(n), staged.as_mut_ptr(), rem);
                        staged.set_len(rem);
                    }
                    ring.publish(first, n);
                    total += n;
                    self.inner.note_push(first, n);
                    self.inner.wake_consumers();
                    // Progress made: a later full-queue stall is a new
                    // wait episode for the stats.
                    counted = false;
                }
                None => {
                    if wait_guard.is_none() {
                        wait_guard = handle.map(|h| h.enter(ThreadState::Waiting));
                    }
                    self.park_push(&mut counted);
                }
            }
        }
    }

    /// Non-blocking push.
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Full`] or [`PushError::Closed`], handing the
    /// item back.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        if self.is_closed() {
            return Err(PushError::Closed(item));
        }
        match self.inner.ring.claim_push(1) {
            Some((pos, _)) => {
                unsafe { self.inner.ring.write(pos, item) };
                self.inner.ring.publish(pos, 1);
                self.inner.note_push(pos, 1);
                self.inner.wake_consumers();
                Ok(())
            }
            None => {
                // A rejected non-blocking push is the try-path's
                // equivalent of a blocked push: count it so backpressure
                // stays visible in Table I-style stats regardless of
                // push mode.
                self.inner.push_waits.inc();
                Err(PushError::Full(item))
            }
        }
    }

    /// Blocking pop without metrics attribution.
    ///
    /// # Errors
    ///
    /// Returns [`PopError::Closed`] once the queue is closed and drained.
    pub fn pop(&self) -> Result<T, PopError> {
        self.pop_impl(None)
    }

    /// Blocking pop; wait time is charged to `handle` as `Waiting`.
    ///
    /// # Errors
    ///
    /// Returns [`PopError::Closed`] once the queue is closed and drained.
    pub fn pop_with(&self, handle: &ThreadHandle) -> Result<T, PopError> {
        self.pop_impl(Some(handle))
    }

    fn pop_impl(&self, handle: Option<&ThreadHandle>) -> Result<T, PopError> {
        let mut counted = false;
        let mut wait_guard = None;
        loop {
            if let Some((pos, _)) = self.inner.ring.claim_pop_committed(1) {
                self.inner.ring.await_published(pos, 1);
                let value = unsafe { self.inner.ring.read(pos) };
                self.inner.ring.release(pos, 1);
                self.inner.note_pop(pos, 1);
                self.inner.after_pop(1);
                return Ok(value);
            }
            if self.is_closed() {
                if self.inner.ring.len() == 0 {
                    return Err(PopError::Closed);
                }
                // Closed with items still in flight: a producer claimed
                // slots before the close and is about to publish them.
                // They must be drained, not dropped — spin them in.
                std::thread::yield_now();
                continue;
            }
            if wait_guard.is_none() {
                wait_guard = handle.map(|h| h.enter(ThreadState::Waiting));
            }
            self.park_pop(None, &mut counted);
        }
    }

    /// Non-blocking pop.
    ///
    /// # Errors
    ///
    /// Returns [`PopError::Empty`] when nothing is queued, or
    /// [`PopError::Closed`] when closed and drained.
    pub fn try_pop(&self) -> Result<T, PopError> {
        loop {
            if let Some((pos, _)) = self.inner.ring.claim_pop_committed(1) {
                self.inner.ring.await_published(pos, 1);
                let value = unsafe { self.inner.ring.read(pos) };
                self.inner.ring.release(pos, 1);
                self.inner.note_pop(pos, 1);
                self.inner.after_pop(1);
                return Ok(value);
            }
            if self.is_closed() {
                if self.inner.ring.len() == 0 {
                    return Err(PopError::Closed);
                }
                // In-flight publish after close: `Closed` here would
                // strand the items, so wait the publish out.
                std::thread::yield_now();
                continue;
            }
            return Err(PopError::Empty);
        }
    }

    /// Non-blocking bulk pop: drains every committed item into `buf`
    /// (appending) with one CAS per run, waking producers once per
    /// batch. Returns the number of items moved (at least 1 on
    /// success). "Committed" includes items a racing bulk push has
    /// claimed but not yet published; those are waited out with a brief
    /// spin rather than left behind, so a successful return reflects
    /// the queue's committed length at the claim.
    ///
    /// # Errors
    ///
    /// Returns [`PopError::Empty`] when nothing is queued, or
    /// [`PopError::Closed`] when closed and drained.
    ///
    /// # Examples
    ///
    /// ```
    /// use smr_queue::BoundedQueue;
    ///
    /// let q = BoundedQueue::new("ReplyQueue", 8);
    /// q.push_many(0..4).unwrap();
    /// let mut buf = Vec::new();
    /// assert_eq!(q.try_pop_all(&mut buf).unwrap(), 4);
    /// assert_eq!(buf, vec![0, 1, 2, 3]);
    /// ```
    pub fn try_pop_all(&self, buf: &mut Vec<T>) -> Result<usize, PopError> {
        loop {
            if let Some((first, n)) = self.inner.ring.claim_pop_committed(self.inner.capacity) {
                self.take_claimed(first, n, buf);
                return Ok(n);
            }
            if self.is_closed() {
                if self.inner.ring.len() == 0 {
                    return Err(PopError::Closed);
                }
                std::thread::yield_now();
                continue;
            }
            return Err(PopError::Empty);
        }
    }

    /// Blocking bulk pop: waits up to `timeout` for the queue to become
    /// non-empty, then drains up to `max` committed items into `buf`
    /// (appending) with one CAS per run. Producers are woken once per
    /// batch. Returns the number of items moved (at least 1 on success).
    ///
    /// A consumer woken by [`BoundedQueue::close`] drains any items
    /// already committed to the queue — including items a racing bulk
    /// push claimed before the close but had not yet published — before
    /// ever reporting [`PopError::Closed`].
    ///
    /// # Errors
    ///
    /// [`PopError::Empty`] on timeout, [`PopError::Closed`] when closed
    /// and drained.
    pub fn pop_wait_all(
        &self,
        buf: &mut Vec<T>,
        max: usize,
        timeout: Duration,
    ) -> Result<usize, PopError> {
        self.pop_wait_all_impl(buf, max, timeout, None)
    }

    /// Blocking bulk pop; wait time is charged to `handle` as `Waiting`.
    ///
    /// # Errors
    ///
    /// [`PopError::Empty`] on timeout, [`PopError::Closed`] when closed
    /// and drained.
    pub fn pop_wait_all_with(
        &self,
        buf: &mut Vec<T>,
        max: usize,
        timeout: Duration,
        handle: &ThreadHandle,
    ) -> Result<usize, PopError> {
        self.pop_wait_all_impl(buf, max, timeout, Some(handle))
    }

    fn pop_wait_all_impl(
        &self,
        buf: &mut Vec<T>,
        max: usize,
        timeout: Duration,
        handle: Option<&ThreadHandle>,
    ) -> Result<usize, PopError> {
        if max == 0 {
            return Err(PopError::Empty);
        }
        let mut counted = false;
        let mut wait_guard = None;
        let mut deadline = None;
        loop {
            if let Some((first, n)) = self.inner.ring.claim_pop_committed(max) {
                self.take_claimed(first, n, buf);
                return Ok(n);
            }
            if self.is_closed() {
                if self.inner.ring.len() == 0 {
                    return Err(PopError::Closed);
                }
                std::thread::yield_now();
                continue;
            }
            if wait_guard.is_none() {
                wait_guard = handle.map(|h| h.enter(ThreadState::Waiting));
            }
            let dl = *deadline.get_or_insert_with(|| Instant::now() + timeout);
            if self.park_pop(Some(dl), &mut counted) {
                // Timed out: one final claim so a just-published burst
                // is not reported as Empty.
                if let Some((first, n)) = self.inner.ring.claim_pop_committed(max) {
                    self.take_claimed(first, n, buf);
                    return Ok(n);
                }
                if self.is_closed() {
                    if self.inner.ring.len() == 0 {
                        return Err(PopError::Closed);
                    }
                    std::thread::yield_now();
                    continue;
                }
                return Err(PopError::Empty);
            }
        }
    }

    /// Pop with a timeout.
    ///
    /// # Errors
    ///
    /// [`PopError::Empty`] on timeout, [`PopError::Closed`] when closed
    /// and drained.
    pub fn pop_timeout(&self, timeout: Duration) -> Result<T, PopError> {
        self.pop_timeout_impl(timeout, None)
    }

    /// Pop with a timeout; wait time is charged to `handle` as `Waiting`.
    ///
    /// # Errors
    ///
    /// [`PopError::Empty`] on timeout, [`PopError::Closed`] when closed
    /// and drained.
    pub fn pop_timeout_with(
        &self,
        timeout: Duration,
        handle: &ThreadHandle,
    ) -> Result<T, PopError> {
        self.pop_timeout_impl(timeout, Some(handle))
    }

    fn pop_timeout_impl(
        &self,
        timeout: Duration,
        handle: Option<&ThreadHandle>,
    ) -> Result<T, PopError> {
        let mut counted = false;
        let mut wait_guard = None;
        let mut deadline = None;
        loop {
            if let Some((pos, _)) = self.inner.ring.claim_pop_committed(1) {
                self.inner.ring.await_published(pos, 1);
                let value = unsafe { self.inner.ring.read(pos) };
                self.inner.ring.release(pos, 1);
                self.inner.note_pop(pos, 1);
                self.inner.after_pop(1);
                return Ok(value);
            }
            if self.is_closed() {
                if self.inner.ring.len() == 0 {
                    return Err(PopError::Closed);
                }
                std::thread::yield_now();
                continue;
            }
            if wait_guard.is_none() {
                wait_guard = handle.map(|h| h.enter(ThreadState::Waiting));
            }
            let dl = *deadline.get_or_insert_with(|| Instant::now() + timeout);
            if self.park_pop(Some(dl), &mut counted) {
                if let Some((pos, _)) = self.inner.ring.claim_pop_committed(1) {
                    self.inner.ring.await_published(pos, 1);
                    let value = unsafe { self.inner.ring.read(pos) };
                    self.inner.ring.release(pos, 1);
                    self.inner.note_pop(pos, 1);
                    self.inner.after_pop(1);
                    return Ok(value);
                }
                if self.is_closed() {
                    if self.inner.ring.len() == 0 {
                        return Err(PopError::Closed);
                    }
                    std::thread::yield_now();
                    continue;
                }
                return Err(PopError::Empty);
            }
        }
    }

    /// Drains everything currently queued, waiting out any in-flight
    /// publishes so a concurrent bulk push cannot strand claimed items.
    pub fn drain(&self) -> Vec<T> {
        let mut items: Vec<T> = Vec::new();
        loop {
            match self.inner.ring.claim_pop_committed(self.inner.capacity) {
                Some((first, n)) => {
                    let ring = &self.inner.ring;
                    ring.await_published(first, n);
                    items.reserve(n);
                    let base = items.len();
                    unsafe {
                        ring.copy_out(first, n, items.as_mut_ptr().add(base));
                        items.set_len(base + n);
                    }
                    ring.release(first, n);
                    self.inner.note_pop(first, n);
                }
                None => {
                    // Nothing published, but a producer may still hold
                    // a claimed-but-unpublished run (it never parks in
                    // that window) — wait it out rather than strand it.
                    if self.inner.ring.len() == 0 {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        }
        // Unconditional (not sleeper-gated): drain is a shutdown-path
        // operation, so one uncontended lock is preferable to any risk
        // of a missed wake.
        let _guard = self.inner.waiters.lock();
        self.inner.not_full.notify_all();
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order() {
        let q = BoundedQueue::new("t", 10);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.pop().unwrap(), i);
        }
    }

    #[test]
    fn try_push_full() {
        let q = BoundedQueue::new("t", 2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
    }

    #[test]
    fn try_pop_empty() {
        let q: BoundedQueue<u32> = BoundedQueue::new("t", 2);
        assert_eq!(q.try_pop(), Err(PopError::Empty));
    }

    #[test]
    fn close_wakes_and_drains() {
        let q: BoundedQueue<u32> = BoundedQueue::new("t", 2);
        q.push(7).unwrap();
        q.close();
        assert_eq!(q.pop().unwrap(), 7);
        assert_eq!(q.pop(), Err(PopError::Closed));
        assert!(matches!(q.push(1), Err(PushError::Closed(1))));
    }

    #[test]
    fn close_unblocks_waiting_popper() {
        let q: BoundedQueue<u32> = BoundedQueue::new("t", 2);
        let q2 = q.clone();
        let h = thread::spawn(move || q2.pop());
        thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), Err(PopError::Closed));
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = BoundedQueue::new("t", 1);
        q.push(1).unwrap();
        let q2 = q.clone();
        let h = thread::spawn(move || q2.push(2));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop().unwrap(), 1);
        h.join().unwrap().unwrap();
        assert_eq!(q.pop().unwrap(), 2);
        assert_eq!(q.stats().push_waits, 1);
    }

    #[test]
    fn pop_timeout_times_out() {
        let q: BoundedQueue<u32> = BoundedQueue::new("t", 2);
        let start = std::time::Instant::now();
        assert_eq!(
            q.pop_timeout(Duration::from_millis(30)),
            Err(PopError::Empty)
        );
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn pop_timeout_returns_item() {
        let q = BoundedQueue::new("t", 2);
        let q2 = q.clone();
        thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            q2.push(9).unwrap();
        });
        assert_eq!(q.pop_timeout(Duration::from_secs(5)).unwrap(), 9);
    }

    #[test]
    fn mpmc_no_loss_no_duplication() {
        let q = BoundedQueue::new("t", 64);
        let producers = 4;
        let per = 2_500u64;
        let mut handles = Vec::new();
        for p in 0..producers {
            let q = q.clone();
            handles.push(thread::spawn(move || {
                for i in 0..per {
                    q.push(p as u64 * per + i).unwrap();
                }
            }));
        }
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<u64> = (0..producers as u64 * per).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn tracked_waiting_is_accounted() {
        use smr_metrics::MetricsRegistry;
        let reg = MetricsRegistry::new();
        let q: BoundedQueue<u32> = BoundedQueue::new("t", 2);
        let q2 = q.clone();
        let reg2 = reg.clone();
        let h = thread::spawn(move || {
            let handle = reg2.register_thread("consumer");
            q2.pop_with(&handle)
        });
        thread::sleep(Duration::from_millis(30));
        q.push(5).unwrap();
        assert_eq!(h.join().unwrap().unwrap(), 5);
        let snap = reg.snapshot();
        assert!(
            snap.threads[0].waiting_ns >= 20_000_000,
            "waiting time was recorded"
        );
    }

    #[test]
    fn drain_empties_queue() {
        let q = BoundedQueue::new("t", 10);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.drain(), vec![0, 1, 2, 3]);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _: BoundedQueue<u32> = BoundedQueue::new("t", 0);
    }

    #[test]
    fn push_many_preserves_fifo() {
        let q = BoundedQueue::new("t", 16);
        assert_eq!(q.push_many(0..5).unwrap(), 5);
        for i in 0..5 {
            assert_eq!(q.pop().unwrap(), i);
        }
    }

    #[test]
    fn push_many_empty_input_is_ok() {
        let q: BoundedQueue<u32> = BoundedQueue::new("t", 4);
        assert_eq!(q.push_many(std::iter::empty()).unwrap(), 0);
        q.close();
        assert_eq!(q.push_many(std::iter::empty()).unwrap(), 0);
    }

    #[test]
    fn push_many_blocks_for_space_then_finishes() {
        let q = BoundedQueue::new("t", 4);
        let q2 = q.clone();
        let h = thread::spawn(move || q2.push_many(0..10).unwrap());
        let mut got = Vec::new();
        while got.len() < 10 {
            match q.pop_timeout(Duration::from_secs(5)) {
                Ok(v) => got.push(v),
                Err(e) => panic!("pop failed: {e}"),
            }
        }
        assert_eq!(h.join().unwrap(), 10);
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert!(q.stats().push_waits >= 1, "bulk push waited for space");
    }

    #[test]
    fn push_many_hands_back_remainder_on_close() {
        let q = BoundedQueue::new("t", 2);
        let q2 = q.clone();
        let h = thread::spawn(move || q2.push_many(0..6));
        // Wait until the pusher filled the queue and blocked.
        while q.len() < 2 {
            thread::yield_now();
        }
        q.close();
        match h.join().unwrap() {
            Err(PushError::Closed(rest)) => {
                assert_eq!(rest, vec![2, 3, 4, 5], "unpushed items handed back");
            }
            other => panic!("expected Closed with remainder, got {other:?}"),
        }
        // Items pushed before the close remain poppable (close drains).
        assert_eq!(q.pop().unwrap(), 0);
        assert_eq!(q.pop().unwrap(), 1);
        assert_eq!(q.pop(), Err(PopError::Closed));
    }

    #[test]
    fn try_pop_all_drains_and_reports_state() {
        let q = BoundedQueue::new("t", 8);
        let mut buf = Vec::new();
        assert_eq!(q.try_pop_all(&mut buf), Err(PopError::Empty));
        q.push_many(0..3).unwrap();
        assert_eq!(q.try_pop_all(&mut buf).unwrap(), 3);
        assert_eq!(buf, vec![0, 1, 2]);
        assert!(q.is_empty());
        q.close();
        assert_eq!(q.try_pop_all(&mut buf), Err(PopError::Closed));
    }

    #[test]
    fn pop_wait_all_respects_max() {
        let q = BoundedQueue::new("t", 16);
        q.push_many(0..10).unwrap();
        let mut buf = Vec::new();
        assert_eq!(
            q.pop_wait_all(&mut buf, 4, Duration::from_millis(10))
                .unwrap(),
            4
        );
        assert_eq!(buf, vec![0, 1, 2, 3]);
        assert_eq!(q.len(), 6);
    }

    #[test]
    fn pop_wait_all_times_out_empty() {
        let q: BoundedQueue<u32> = BoundedQueue::new("t", 4);
        let mut buf = Vec::new();
        let start = std::time::Instant::now();
        assert_eq!(
            q.pop_wait_all(&mut buf, 8, Duration::from_millis(30)),
            Err(PopError::Empty)
        );
        assert!(start.elapsed() >= Duration::from_millis(25));
        assert!(buf.is_empty());
    }

    #[test]
    fn pop_wait_all_wakes_on_bulk_push() {
        let q = BoundedQueue::new("t", 64);
        let q2 = q.clone();
        let h = thread::spawn(move || {
            let mut buf = Vec::new();
            let n = q2
                .pop_wait_all(&mut buf, 64, Duration::from_secs(5))
                .unwrap();
            (n, buf)
        });
        thread::sleep(Duration::from_millis(10));
        q.push_many(0..8).unwrap();
        let (n, buf) = h.join().unwrap();
        assert!(n >= 1, "the single batch notification woke the popper");
        assert_eq!(buf[0], 0);
    }

    #[test]
    fn pop_wait_all_closed_after_drain() {
        let q = BoundedQueue::new("t", 8);
        q.push_many(0..2).unwrap();
        q.close();
        let mut buf = Vec::new();
        assert_eq!(
            q.pop_wait_all(&mut buf, 8, Duration::from_millis(10))
                .unwrap(),
            2,
            "close drains remaining items first"
        );
        assert_eq!(
            q.pop_wait_all(&mut buf, 8, Duration::from_millis(10)),
            Err(PopError::Closed)
        );
    }

    #[test]
    fn bulk_ops_update_stats_totals() {
        let q = BoundedQueue::new("t", 32);
        q.push_many(0..10).unwrap();
        let mut buf = Vec::new();
        q.pop_wait_all(&mut buf, 4, Duration::from_millis(10))
            .unwrap();
        q.try_pop_all(&mut buf).unwrap();
        let stats = q.stats();
        assert_eq!(stats.pushed, 10);
        assert_eq!(stats.popped, 10);
    }

    /// Regression: Table I numbers must be mode-independent. Running the
    /// same workload through scalar ops and through bulk ops must leave
    /// identical stat totals (pushed/popped/depth/high-watermark).
    #[test]
    fn scalar_and_bulk_ops_produce_identical_stats() {
        let scalar = BoundedQueue::new("scalar", 32);
        for i in 0..10 {
            scalar.push(i).unwrap();
        }
        for _ in 0..10 {
            scalar.pop().unwrap();
        }

        let bulk = BoundedQueue::new("bulk", 32);
        bulk.push_many(0..10).unwrap();
        let mut buf = Vec::new();
        bulk.try_pop_all(&mut buf).unwrap();

        let (s, b) = (scalar.stats(), bulk.stats());
        assert_eq!(s.pushed, b.pushed);
        assert_eq!(s.popped, b.popped);
        assert_eq!(s.depth, b.depth);
        assert_eq!(
            s.high_watermark, b.high_watermark,
            "bulk push must raise the watermark exactly like scalar pushes"
        );
        assert_eq!(s.high_watermark, 10);
        assert_eq!(s.depth, 0);
    }

    #[test]
    fn depth_and_watermark_track_queue_length() {
        let q = BoundedQueue::new("t", 8);
        assert_eq!(q.stats().depth, 0);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.push(3).unwrap();
        assert_eq!(q.stats().depth, 3);
        assert_eq!(q.stats().high_watermark, 3);
        q.pop().unwrap();
        let s = q.stats();
        assert_eq!(s.depth, 2);
        assert_eq!(s.high_watermark, 3, "watermark is sticky");
        assert_eq!(s.capacity, 8);
    }

    #[test]
    fn try_push_full_counts_as_blocked_push() {
        let q = BoundedQueue::new("t", 1);
        q.try_push(1).unwrap();
        assert!(q.try_push(2).is_err());
        assert!(q.try_push(3).is_err());
        assert_eq!(q.stats().push_waits, 2);
    }

    #[test]
    fn probe_shares_live_stats() {
        let q = BoundedQueue::new("request_q", 16);
        let probe = q.probe();
        assert_eq!(probe.name(), "request_q");
        assert_eq!(probe.capacity(), 16);
        q.push_many(0..5).unwrap();
        assert_eq!(probe.depth(), 5);
        let snap = probe.snapshot();
        assert_eq!(snap.high_watermark, 5);
        assert_eq!(snap.pushed, 5);
    }

    /// Loom-style stress (plain threads): close racing with scalar and
    /// bulk waiters on both the empty and the full side. Every waiter
    /// must wake and observe `Closed`; none may hang. This is the
    /// ordering the `closed` AtomicBool + store-then-lock-then-notify
    /// handshake in `close` guarantees.
    #[test]
    fn close_vs_waiters_stress() {
        for _ in 0..100 {
            let full: BoundedQueue<u32> = BoundedQueue::new("full", 1);
            full.push(0).unwrap();
            let empty: BoundedQueue<u32> = BoundedQueue::new("empty", 1);
            let mut pushers = Vec::new();
            for i in 0..2 {
                let q = full.clone();
                pushers.push(thread::spawn(move || q.push(i).is_err()));
            }
            let bulk_pusher = {
                let q = full.clone();
                thread::spawn(move || q.push_many(10..14).is_err())
            };
            let mut poppers = Vec::new();
            for _ in 0..2 {
                let q = empty.clone();
                poppers.push(thread::spawn(move || q.pop() == Err(PopError::Closed)));
            }
            let bulk_popper = {
                let q = empty.clone();
                thread::spawn(move || {
                    let mut buf = Vec::new();
                    q.pop_wait_all(&mut buf, 8, Duration::from_secs(10)) == Err(PopError::Closed)
                })
            };
            thread::yield_now();
            full.close();
            empty.close();
            for h in pushers {
                assert!(h.join().unwrap(), "scalar pusher observed Closed");
            }
            assert!(bulk_pusher.join().unwrap(), "bulk pusher observed Closed");
            for h in poppers {
                assert!(h.join().unwrap(), "scalar popper observed Closed");
            }
            assert!(bulk_popper.join().unwrap(), "bulk popper observed Closed");
        }
    }

    fn stress_iters(default: usize) -> usize {
        std::env::var("SMR_STRESS_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// The ring core must never report a depth or high-watermark larger
    /// than the capacity, even while a sampler races concurrent pushes
    /// and pops (the committed-length observation, not a racy
    /// two-counter load). A racy implementation fails this within a few
    /// thousand iterations.
    #[test]
    fn watermark_never_exceeds_capacity_under_contention() {
        const CAP: usize = 7;
        let iters = stress_iters(30_000) as u64;
        let q: BoundedQueue<u64> = BoundedQueue::new("stress", CAP);
        let stop = Arc::new(AtomicBool::new(false));
        let sampler = {
            let q = q.clone();
            let probe = q.probe();
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let s = q.stats();
                    assert!(s.depth <= CAP, "depth {} > capacity {}", s.depth, CAP);
                    assert!(
                        s.high_watermark <= CAP,
                        "high watermark {} > capacity {}",
                        s.high_watermark,
                        CAP
                    );
                    assert!(probe.depth() <= CAP, "probe depth exceeds capacity");
                    assert!(q.len() <= CAP, "len exceeds capacity");
                }
            })
        };
        let producers: Vec<_> = (0..3)
            .map(|p| {
                let q = q.clone();
                thread::spawn(move || {
                    for i in 0..iters {
                        if p == 0 {
                            q.push(i).unwrap();
                        } else {
                            q.push_many([i, i + 1]).unwrap();
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                thread::spawn(move || {
                    let mut buf = Vec::new();
                    while let Ok(_) | Err(PopError::Empty) =
                        q.pop_wait_all(&mut buf, CAP, Duration::from_millis(20))
                    {
                        buf.clear();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        for c in consumers {
            c.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        sampler.join().unwrap();
        let s = q.stats();
        assert!(s.high_watermark <= CAP);
        assert_eq!(s.pushed, s.popped, "close drained everything");
    }

    /// Close racing bulk pushes: every item a push reported as accepted
    /// (returned `Ok` or not in the handed-back remainder) must be
    /// drained by the consumers before they observe `Closed` — items a
    /// producer had *claimed* but not yet published at close time
    /// included. Conservation proves no accepted item is stranded.
    #[test]
    fn close_drains_in_flight_bulk_pushes() {
        let rounds = stress_iters(200);
        for _ in 0..rounds {
            let q: BoundedQueue<u64> = BoundedQueue::new("inflight", 4);
            let producers: Vec<_> = (0..2)
                .map(|p| {
                    let q = q.clone();
                    thread::spawn(move || {
                        let mut accepted = 0u64;
                        for burst in 0..4u64 {
                            let base = p * 1_000 + burst * 10;
                            match q.push_many(base..base + 6) {
                                Ok(n) => accepted += n as u64,
                                Err(PushError::Closed(rest)) => {
                                    accepted += 6 - rest.len() as u64;
                                    break;
                                }
                                Err(PushError::Full(_)) => unreachable!("blocking push"),
                            }
                        }
                        accepted
                    })
                })
                .collect();
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let q = q.clone();
                    thread::spawn(move || {
                        let mut got = 0u64;
                        let mut buf = Vec::new();
                        loop {
                            match q.pop_wait_all(&mut buf, 8, Duration::from_secs(10)) {
                                Ok(n) => {
                                    got += n as u64;
                                    buf.clear();
                                }
                                Err(PopError::Closed) => break,
                                Err(PopError::Empty) => {}
                            }
                        }
                        got
                    })
                })
                .collect();
            thread::yield_now();
            q.close();
            let accepted: u64 = producers.into_iter().map(|p| p.join().unwrap()).sum();
            let drained: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
            assert_eq!(
                accepted, drained,
                "every accepted item was drained before Closed"
            );
            let s = q.stats();
            assert_eq!(s.pushed, accepted);
            assert_eq!(s.popped, drained);
        }
    }

    /// ABA/wraparound: with a tiny capacity and ring positions starting
    /// just below `u32::MAX`, push/pop cycles carry the absolute indices
    /// across the 32-bit boundary (and thousands of laps beyond). FIFO
    /// order, stats, and depth must be unaffected — this is the test a
    /// 32-bit-counter or masked-index implementation fails.
    #[test]
    fn ring_indices_survive_u32_wraparound() {
        const CAP: usize = 3;
        let start = u64::from(u32::MAX) - 7;
        let laps = stress_iters(20_000) as u64;
        let q: BoundedQueue<u64> = BoundedQueue::with_start_index("wrap", CAP, start);
        // Single-threaded laps across the boundary: exact FIFO.
        let mut next_out = 0u64;
        let mut next_in = 0u64;
        for _ in 0..laps {
            q.push(next_in).unwrap();
            next_in += 1;
            q.push(next_in).unwrap();
            next_in += 1;
            assert_eq!(q.pop().unwrap(), next_out);
            next_out += 1;
            assert_eq!(q.pop().unwrap(), next_out);
            next_out += 1;
        }
        let s = q.stats();
        assert_eq!(s.pushed, 2 * laps);
        assert_eq!(s.popped, 2 * laps);
        assert_eq!(s.depth, 0);
        assert!(s.high_watermark <= CAP);

        // Concurrent wraparound: producers and consumers hammer the same
        // tiny ring across the boundary; nothing lost, nothing
        // duplicated.
        let q: BoundedQueue<u64> = BoundedQueue::with_start_index("wrap-mpmc", CAP, start);
        let per = laps.min(10_000);
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let q = q.clone();
                thread::spawn(move || {
                    for i in 0..per {
                        q.push(p * per + i).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = q.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..2 * per).collect::<Vec<_>>());
    }

    /// A queue created with a non-zero start index behaves exactly like
    /// a fresh one for a scripted single-threaded sequence.
    #[test]
    fn start_index_is_transparent() {
        let plain: BoundedQueue<u32> = BoundedQueue::new("plain", 4);
        let offset: BoundedQueue<u32> = BoundedQueue::with_start_index("offset", 4, u64::MAX / 3);
        for q in [&plain, &offset] {
            assert_eq!(q.push_many(0..3).unwrap(), 3);
            assert_eq!(q.try_pop().unwrap(), 0);
            assert_eq!(q.try_push(9), Ok(()));
            assert_eq!(q.try_push(10), Ok(()));
            assert_eq!(q.try_push(11), Err(PushError::Full(11)));
            let mut buf = Vec::new();
            assert_eq!(q.try_pop_all(&mut buf).unwrap(), 4);
            assert_eq!(buf, vec![1, 2, 9, 10]);
        }
        let (p, o) = (plain.stats(), offset.stats());
        assert_eq!(p.pushed, o.pushed);
        assert_eq!(p.popped, o.popped);
        assert_eq!(p.push_waits, o.push_waits);
        assert_eq!(p.high_watermark, o.high_watermark);
    }

    /// Items left in the ring at drop time are dropped exactly once
    /// (the ring owns raw `MaybeUninit` cells, so leaks or double drops
    /// are the failure mode).
    #[test]
    fn dropping_queue_drops_remaining_items() {
        let counter = Arc::new(AtomicUsize::new(0));
        #[derive(Debug)]
        struct Tracked(Arc<AtomicUsize>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let q = BoundedQueue::new("drop", 8);
        for _ in 0..5 {
            q.push(Tracked(Arc::clone(&counter))).unwrap();
        }
        drop(q.pop().unwrap());
        assert_eq!(counter.load(Ordering::SeqCst), 1);
        drop(q);
        assert_eq!(
            counter.load(Ordering::SeqCst),
            5,
            "remaining 4 dropped with the queue"
        );
    }
}
