//! Bounded MPMC queue with waiting/blocked time accounting.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use smr_metrics::{Counter, ThreadHandle, ThreadState};

/// Error returned by non-blocking/timed pushes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue was at capacity.
    Full(T),
    /// The queue was closed; the item is handed back.
    Closed(T),
}

/// Error returned by pops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopError {
    /// The queue was empty (non-blocking/timed variants only).
    Empty,
    /// The queue was closed and drained.
    Closed,
}

impl fmt::Display for PopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PopError::Empty => f.write_str("queue is empty"),
            PopError::Closed => f.write_str("queue is closed"),
        }
    }
}

impl std::error::Error for PopError {}

/// Cumulative statistics of one queue.
#[derive(Debug, Clone, Default)]
pub struct QueueStats {
    /// Items pushed over the queue's lifetime.
    pub pushed: u64,
    /// Items popped over the queue's lifetime.
    pub popped: u64,
    /// Number of pushes that had to wait for space.
    pub push_waits: u64,
    /// Number of pops that had to wait for an item.
    pub pop_waits: u64,
}

struct Inner<T> {
    queue: Mutex<VecDeque<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    closed: Mutex<bool>,
    name: String,
    pushed: Counter,
    popped: Counter,
    push_waits: Counter,
    pop_waits: Counter,
}

/// A bounded multi-producer multi-consumer FIFO queue.
///
/// Cloning shares the queue. Blocking operations come in untracked
/// (`push`/`pop`) and tracked (`push_with`/`pop_with`) flavours; tracked
/// variants charge wait time to the calling thread's profile as
/// [`ThreadState::Waiting`] — exactly what the JVM's `ThreadMXBean`
/// reports for a thread parked on a `Condition`.
///
/// # Examples
///
/// ```
/// use smr_queue::BoundedQueue;
///
/// let q = BoundedQueue::new("RequestQueue", 1000);
/// q.push(42).unwrap();
/// assert_eq!(q.pop().unwrap(), 42);
/// ```
pub struct BoundedQueue<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for BoundedQueue<T> {
    fn clone(&self) -> Self {
        BoundedQueue {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("name", &self.inner.name)
            .field("capacity", &self.inner.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl<T> BoundedQueue<T> {
    /// Creates a queue with the given diagnostic name and capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            inner: Arc::new(Inner {
                queue: Mutex::new(VecDeque::with_capacity(capacity.min(65_536))),
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
                capacity,
                closed: Mutex::new(false),
                name: name.into(),
                pushed: Counter::new(),
                popped: Counter::new(),
                push_waits: Counter::new(),
                pop_waits: Counter::new(),
            }),
        }
    }

    /// The queue's diagnostic name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Maximum number of items the queue holds.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.inner.queue.lock().len()
    }

    /// Whether the queue currently holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        *self.inner.closed.lock()
    }

    /// Closes the queue: subsequent pushes fail, pops drain remaining
    /// items and then report [`PopError::Closed`]. All waiters wake.
    pub fn close(&self) {
        *self.inner.closed.lock() = true;
        let _guard = self.inner.queue.lock();
        self.inner.not_empty.notify_all();
        self.inner.not_full.notify_all();
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            pushed: self.inner.pushed.get(),
            popped: self.inner.popped.get(),
            push_waits: self.inner.push_waits.get(),
            pop_waits: self.inner.pop_waits.get(),
        }
    }

    /// Blocking push without metrics attribution.
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Closed`] if the queue is closed.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        self.push_impl(item, None)
    }

    /// Blocking push; wait time is charged to `handle` as `Waiting`.
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Closed`] if the queue is closed.
    pub fn push_with(&self, item: T, handle: &ThreadHandle) -> Result<(), PushError<T>> {
        self.push_impl(item, Some(handle))
    }

    fn push_impl(&self, item: T, handle: Option<&ThreadHandle>) -> Result<(), PushError<T>> {
        if self.is_closed() {
            return Err(PushError::Closed(item));
        }
        let mut q = self.inner.queue.lock();
        if q.len() >= self.inner.capacity {
            self.inner.push_waits.inc();
            let _guard = handle.map(|h| h.enter(ThreadState::Waiting));
            while q.len() >= self.inner.capacity {
                if self.is_closed_locked() {
                    drop(q);
                    return Err(PushError::Closed(item));
                }
                self.inner.not_full.wait(&mut q);
            }
        }
        if self.is_closed_locked() {
            drop(q);
            return Err(PushError::Closed(item));
        }
        q.push_back(item);
        self.inner.pushed.inc();
        drop(q);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    fn is_closed_locked(&self) -> bool {
        // `closed` uses its own lock so readers need not contend with the
        // queue mutex on the fast path; both orders are taken consistently.
        *self.inner.closed.lock()
    }

    /// Non-blocking push.
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Full`] or [`PushError::Closed`], handing the
    /// item back.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        if self.is_closed() {
            return Err(PushError::Closed(item));
        }
        let mut q = self.inner.queue.lock();
        if q.len() >= self.inner.capacity {
            return Err(PushError::Full(item));
        }
        q.push_back(item);
        self.inner.pushed.inc();
        drop(q);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Blocking pop without metrics attribution.
    ///
    /// # Errors
    ///
    /// Returns [`PopError::Closed`] once the queue is closed and drained.
    pub fn pop(&self) -> Result<T, PopError> {
        self.pop_impl(None)
    }

    /// Blocking pop; wait time is charged to `handle` as `Waiting`.
    ///
    /// # Errors
    ///
    /// Returns [`PopError::Closed`] once the queue is closed and drained.
    pub fn pop_with(&self, handle: &ThreadHandle) -> Result<T, PopError> {
        self.pop_impl(Some(handle))
    }

    fn pop_impl(&self, handle: Option<&ThreadHandle>) -> Result<T, PopError> {
        let mut q = self.inner.queue.lock();
        if q.is_empty() {
            self.inner.pop_waits.inc();
            let _guard = handle.map(|h| h.enter(ThreadState::Waiting));
            while q.is_empty() {
                if self.is_closed_locked() {
                    return Err(PopError::Closed);
                }
                self.inner.not_empty.wait(&mut q);
            }
        }
        let item = q.pop_front().expect("queue is non-empty");
        self.inner.popped.inc();
        drop(q);
        self.inner.not_full.notify_one();
        Ok(item)
    }

    /// Non-blocking pop.
    ///
    /// # Errors
    ///
    /// Returns [`PopError::Empty`] when nothing is queued, or
    /// [`PopError::Closed`] when closed and drained.
    pub fn try_pop(&self) -> Result<T, PopError> {
        let mut q = self.inner.queue.lock();
        match q.pop_front() {
            Some(item) => {
                self.inner.popped.inc();
                drop(q);
                self.inner.not_full.notify_one();
                Ok(item)
            }
            None => {
                if self.is_closed_locked() {
                    Err(PopError::Closed)
                } else {
                    Err(PopError::Empty)
                }
            }
        }
    }

    /// Pop with a timeout.
    ///
    /// # Errors
    ///
    /// [`PopError::Empty`] on timeout, [`PopError::Closed`] when closed
    /// and drained.
    pub fn pop_timeout(&self, timeout: Duration) -> Result<T, PopError> {
        self.pop_timeout_impl(timeout, None)
    }

    /// Pop with a timeout; wait time is charged to `handle` as `Waiting`.
    ///
    /// # Errors
    ///
    /// [`PopError::Empty`] on timeout, [`PopError::Closed`] when closed
    /// and drained.
    pub fn pop_timeout_with(
        &self,
        timeout: Duration,
        handle: &ThreadHandle,
    ) -> Result<T, PopError> {
        self.pop_timeout_impl(timeout, Some(handle))
    }

    fn pop_timeout_impl(
        &self,
        timeout: Duration,
        handle: Option<&ThreadHandle>,
    ) -> Result<T, PopError> {
        let mut q = self.inner.queue.lock();
        let _guard = if q.is_empty() {
            handle.map(|h| h.enter(ThreadState::Waiting))
        } else {
            None
        };
        if q.is_empty() {
            self.inner.pop_waits.inc();
            let deadline = std::time::Instant::now() + timeout;
            while q.is_empty() {
                if self.is_closed_locked() {
                    return Err(PopError::Closed);
                }
                if self
                    .inner
                    .not_empty
                    .wait_until(&mut q, deadline)
                    .timed_out()
                {
                    return if q.is_empty() {
                        Err(PopError::Empty)
                    } else {
                        break;
                    };
                }
            }
        }
        let item = q.pop_front().expect("queue is non-empty");
        self.inner.popped.inc();
        drop(q);
        self.inner.not_full.notify_one();
        Ok(item)
    }

    /// Drains everything currently queued.
    pub fn drain(&self) -> Vec<T> {
        let mut q = self.inner.queue.lock();
        let items: Vec<T> = q.drain(..).collect();
        self.inner.popped.add(items.len() as u64);
        drop(q);
        self.inner.not_full.notify_all();
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order() {
        let q = BoundedQueue::new("t", 10);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.pop().unwrap(), i);
        }
    }

    #[test]
    fn try_push_full() {
        let q = BoundedQueue::new("t", 2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
    }

    #[test]
    fn try_pop_empty() {
        let q: BoundedQueue<u32> = BoundedQueue::new("t", 2);
        assert_eq!(q.try_pop(), Err(PopError::Empty));
    }

    #[test]
    fn close_wakes_and_drains() {
        let q: BoundedQueue<u32> = BoundedQueue::new("t", 2);
        q.push(7).unwrap();
        q.close();
        assert_eq!(q.pop().unwrap(), 7);
        assert_eq!(q.pop(), Err(PopError::Closed));
        assert!(matches!(q.push(1), Err(PushError::Closed(1))));
    }

    #[test]
    fn close_unblocks_waiting_popper() {
        let q: BoundedQueue<u32> = BoundedQueue::new("t", 2);
        let q2 = q.clone();
        let h = thread::spawn(move || q2.pop());
        thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), Err(PopError::Closed));
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = BoundedQueue::new("t", 1);
        q.push(1).unwrap();
        let q2 = q.clone();
        let h = thread::spawn(move || q2.push(2));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop().unwrap(), 1);
        h.join().unwrap().unwrap();
        assert_eq!(q.pop().unwrap(), 2);
        assert_eq!(q.stats().push_waits, 1);
    }

    #[test]
    fn pop_timeout_times_out() {
        let q: BoundedQueue<u32> = BoundedQueue::new("t", 2);
        let start = std::time::Instant::now();
        assert_eq!(
            q.pop_timeout(Duration::from_millis(30)),
            Err(PopError::Empty)
        );
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn pop_timeout_returns_item() {
        let q = BoundedQueue::new("t", 2);
        let q2 = q.clone();
        thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            q2.push(9).unwrap();
        });
        assert_eq!(q.pop_timeout(Duration::from_secs(5)).unwrap(), 9);
    }

    #[test]
    fn mpmc_no_loss_no_duplication() {
        let q = BoundedQueue::new("t", 64);
        let producers = 4;
        let per = 2_500u64;
        let mut handles = Vec::new();
        for p in 0..producers {
            let q = q.clone();
            handles.push(thread::spawn(move || {
                for i in 0..per {
                    q.push(p as u64 * per + i).unwrap();
                }
            }));
        }
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<u64> = (0..producers as u64 * per).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn tracked_waiting_is_accounted() {
        use smr_metrics::MetricsRegistry;
        let reg = MetricsRegistry::new();
        let q: BoundedQueue<u32> = BoundedQueue::new("t", 2);
        let q2 = q.clone();
        let reg2 = reg.clone();
        let h = thread::spawn(move || {
            let handle = reg2.register_thread("consumer");
            q2.pop_with(&handle)
        });
        thread::sleep(Duration::from_millis(30));
        q.push(5).unwrap();
        assert_eq!(h.join().unwrap().unwrap(), 5);
        let snap = reg.snapshot();
        assert!(
            snap.threads[0].waiting_ns >= 20_000_000,
            "waiting time was recorded"
        );
    }

    #[test]
    fn drain_empties_queue() {
        let q = BoundedQueue::new("t", 10);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.drain(), vec![0, 1, 2, 3]);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _: BoundedQueue<u32> = BoundedQueue::new("t", 0);
    }
}
