//! Bounded MPMC queue with waiting/blocked time accounting.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use smr_metrics::{Counter, Gauge, ThreadHandle, ThreadState, Watermark};

use crate::registry::QueueProbe;

/// Error returned by non-blocking/timed pushes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue was at capacity.
    Full(T),
    /// The queue was closed; the item is handed back.
    Closed(T),
}

/// Error returned by pops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopError {
    /// The queue was empty (non-blocking/timed variants only).
    Empty,
    /// The queue was closed and drained.
    Closed,
}

impl fmt::Display for PopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PopError::Empty => f.write_str("queue is empty"),
            PopError::Closed => f.write_str("queue is closed"),
        }
    }
}

impl std::error::Error for PopError {}

/// The one wake-up per batch the bulk ops pay: nothing for an empty
/// batch, a single waiter for a single item, everyone for more.
fn notify_batch(cv: &Condvar, n: usize) {
    match n {
        0 => {}
        1 => {
            cv.notify_one();
        }
        _ => {
            cv.notify_all();
        }
    }
}

/// Cumulative statistics of one queue.
#[derive(Debug, Clone, Default)]
pub struct QueueStats {
    /// Items pushed over the queue's lifetime.
    pub pushed: u64,
    /// Items popped over the queue's lifetime.
    pub popped: u64,
    /// Number of push calls that had to wait for space (a bulk push that
    /// waits several times counts each wait episode; a non-blocking push
    /// rejected with `Full` also counts).
    pub push_waits: u64,
    /// Number of pop calls that had to wait for an item.
    pub pop_waits: u64,
    /// Configured capacity.
    pub capacity: usize,
    /// Number of items queued right now.
    pub depth: usize,
    /// Highest depth ever reached (exact: maintained on every push, not
    /// sampled).
    pub high_watermark: usize,
}

struct Inner<T> {
    queue: Mutex<VecDeque<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    // A plain atomic, not a second mutex: readers on the hot path take
    // exactly one lock (the queue mutex) per operation. The close-wakes
    // -waiters handshake stays sound because `close` stores the flag and
    // *then* acquires the queue mutex before notifying: any waiter that
    // read `closed == false` under the mutex will release it in `wait`,
    // letting `close` in to notify, and re-checks the flag on wake.
    closed: AtomicBool,
    name: String,
    pushed: Counter,
    popped: Counter,
    push_waits: Counter,
    pop_waits: Counter,
    // Written only under the queue mutex (reads are lock-free), so the
    // gauge always reflects a consistent post-operation length.
    depth: Gauge,
    high_watermark: Watermark,
}

impl<T> Inner<T> {
    /// Publishes the post-operation queue length to the lock-free depth
    /// gauge and high-watermark. Callers hold the queue mutex.
    fn note_depth(&self, len: usize) {
        self.depth.set(len as i64);
        self.high_watermark.observe(len as u64);
    }
}

/// A bounded multi-producer multi-consumer FIFO queue.
///
/// Cloning shares the queue. Blocking operations come in untracked
/// (`push`/`pop`) and tracked (`push_with`/`pop_with`) flavours; tracked
/// variants charge wait time to the calling thread's profile as
/// [`ThreadState::Waiting`] — exactly what the JVM's `ThreadMXBean`
/// reports for a thread parked on a `Condition`.
///
/// # Bulk operations
///
/// A request crosses at least four of these queues on its way through
/// the replica, so per-item overhead bounds end-to-end throughput. The
/// bulk operations ([`BoundedQueue::push_many`],
/// [`BoundedQueue::try_pop_all`], [`BoundedQueue::pop_wait_all`]) move a
/// whole burst under a single lock acquisition with a single condvar
/// notification per batch, draining into a caller-owned reusable buffer
/// so the steady state allocates nothing.
///
/// # Examples
///
/// ```
/// use smr_queue::BoundedQueue;
///
/// let q = BoundedQueue::new("RequestQueue", 1000);
/// q.push(42).unwrap();
/// assert_eq!(q.pop().unwrap(), 42);
///
/// q.push_many(0..3).unwrap();
/// let mut buf = Vec::new();
/// assert_eq!(q.try_pop_all(&mut buf).unwrap(), 3);
/// assert_eq!(buf, vec![0, 1, 2]);
/// ```
pub struct BoundedQueue<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for BoundedQueue<T> {
    fn clone(&self) -> Self {
        BoundedQueue {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("name", &self.inner.name)
            .field("capacity", &self.inner.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl<T> BoundedQueue<T> {
    /// Creates a queue with the given diagnostic name and capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            inner: Arc::new(Inner {
                queue: Mutex::new(VecDeque::with_capacity(capacity.min(65_536))),
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
                capacity,
                closed: AtomicBool::new(false),
                name: name.into(),
                pushed: Counter::new(),
                popped: Counter::new(),
                push_waits: Counter::new(),
                pop_waits: Counter::new(),
                depth: Gauge::new(),
                high_watermark: Watermark::new(),
            }),
        }
    }

    /// The queue's diagnostic name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Maximum number of items the queue holds.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.inner.queue.lock().len()
    }

    /// Whether the queue currently holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.closed.load(Ordering::Acquire)
    }

    /// Closes the queue: subsequent pushes fail, pops drain remaining
    /// items and then report [`PopError::Closed`]. All waiters wake.
    pub fn close(&self) {
        self.inner.closed.store(true, Ordering::Release);
        let _guard = self.inner.queue.lock();
        self.inner.not_empty.notify_all();
        self.inner.not_full.notify_all();
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            pushed: self.inner.pushed.get(),
            popped: self.inner.popped.get(),
            push_waits: self.inner.push_waits.get(),
            pop_waits: self.inner.pop_waits.get(),
            capacity: self.inner.capacity,
            depth: self.inner.depth.get().max(0) as usize,
            high_watermark: self.inner.high_watermark.get() as usize,
        }
    }

    /// A type-erased observability handle for this queue: shares the
    /// queue's counters, depth gauge and high-watermark without holding
    /// the items' type, so queues of different item types can live in
    /// one [`QueueRegistry`](crate::QueueRegistry).
    pub fn probe(&self) -> QueueProbe {
        QueueProbe::new(
            self.inner.name.clone(),
            self.inner.capacity,
            self.inner.depth.clone(),
            self.inner.high_watermark.clone(),
            self.inner.pushed.clone(),
            self.inner.popped.clone(),
            self.inner.push_waits.clone(),
            self.inner.pop_waits.clone(),
        )
    }

    /// Blocking push without metrics attribution.
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Closed`] if the queue is closed.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        self.push_impl(item, None)
    }

    /// Blocking push; wait time is charged to `handle` as `Waiting`.
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Closed`] if the queue is closed.
    pub fn push_with(&self, item: T, handle: &ThreadHandle) -> Result<(), PushError<T>> {
        self.push_impl(item, Some(handle))
    }

    fn push_impl(&self, item: T, handle: Option<&ThreadHandle>) -> Result<(), PushError<T>> {
        if self.is_closed() {
            return Err(PushError::Closed(item));
        }
        let mut q = self.inner.queue.lock();
        if q.len() >= self.inner.capacity {
            self.inner.push_waits.inc();
            let _guard = handle.map(|h| h.enter(ThreadState::Waiting));
            while q.len() >= self.inner.capacity {
                if self.is_closed_locked() {
                    drop(q);
                    return Err(PushError::Closed(item));
                }
                self.inner.not_full.wait(&mut q);
            }
        }
        if self.is_closed_locked() {
            drop(q);
            return Err(PushError::Closed(item));
        }
        q.push_back(item);
        self.inner.pushed.inc();
        self.inner.note_depth(q.len());
        drop(q);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    fn is_closed_locked(&self) -> bool {
        // Callers hold the queue mutex, which already orders this load
        // against `close`'s store-then-lock handshake; Relaxed suffices.
        self.inner.closed.load(Ordering::Relaxed)
    }

    /// Blocking bulk push: moves every item of `items` into the queue,
    /// filling whatever space is free under one lock acquisition and
    /// waiting for room when full. Consumers are woken once per burst
    /// (one `notify_one` for a single item, one `notify_all` for more)
    /// instead of once per item. Returns the number of items pushed.
    ///
    /// The iterator is advanced while the queue's internal lock is held:
    /// it must be cheap and must not touch this queue (calling any
    /// method of the same queue from `next()` deadlocks). Pass drained
    /// buffers, ranges, or plain maps — not iterators doing I/O.
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Closed`] carrying the items not yet pushed if
    /// the queue closes mid-way; items pushed before the close remain
    /// poppable (close drains).
    ///
    /// # Examples
    ///
    /// ```
    /// use smr_queue::BoundedQueue;
    ///
    /// let q = BoundedQueue::new("ProposalQueue", 8);
    /// assert_eq!(q.push_many(vec!["a", "b", "c"]).unwrap(), 3);
    /// assert_eq!(q.len(), 3);
    /// ```
    pub fn push_many<I>(&self, items: I) -> Result<usize, PushError<Vec<T>>>
    where
        I: IntoIterator<Item = T>,
    {
        self.push_many_impl(items, None)
    }

    /// Blocking bulk push; wait time is charged to `handle` as `Waiting`.
    /// The iterator contract of [`BoundedQueue::push_many`] applies.
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Closed`] carrying the items not yet pushed if
    /// the queue closes mid-way.
    pub fn push_many_with<I>(
        &self,
        items: I,
        handle: &ThreadHandle,
    ) -> Result<usize, PushError<Vec<T>>>
    where
        I: IntoIterator<Item = T>,
    {
        self.push_many_impl(items, Some(handle))
    }

    fn push_many_impl<I>(
        &self,
        items: I,
        handle: Option<&ThreadHandle>,
    ) -> Result<usize, PushError<Vec<T>>>
    where
        I: IntoIterator<Item = T>,
    {
        let mut iter = items.into_iter().peekable();
        if iter.peek().is_none() {
            return Ok(0);
        }
        if self.is_closed() {
            return Err(PushError::Closed(iter.collect()));
        }
        let mut total = 0usize;
        let mut q = self.inner.queue.lock();
        loop {
            if self.is_closed_locked() {
                drop(q);
                return Err(PushError::Closed(iter.collect()));
            }
            let mut pushed = 0usize;
            while q.len() < self.inner.capacity && iter.peek().is_some() {
                q.push_back(iter.next().expect("peeked item"));
                pushed += 1;
            }
            if pushed > 0 {
                self.inner.pushed.add(pushed as u64);
                self.inner.note_depth(q.len());
                total += pushed;
            }
            if iter.peek().is_none() {
                drop(q);
                notify_batch(&self.inner.not_empty, pushed);
                return Ok(total);
            }
            // Queue full with items remaining: hand the burst pushed so
            // far to consumers (notify under the lock — we must keep it
            // to wait), then block for space.
            notify_batch(&self.inner.not_empty, pushed);
            self.inner.push_waits.inc();
            let _guard = handle.map(|h| h.enter(ThreadState::Waiting));
            while q.len() >= self.inner.capacity {
                if self.is_closed_locked() {
                    drop(q);
                    return Err(PushError::Closed(iter.collect()));
                }
                self.inner.not_full.wait(&mut q);
            }
        }
    }

    /// Non-blocking push.
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Full`] or [`PushError::Closed`], handing the
    /// item back.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        if self.is_closed() {
            return Err(PushError::Closed(item));
        }
        let mut q = self.inner.queue.lock();
        if q.len() >= self.inner.capacity {
            // A rejected non-blocking push is the try-path's equivalent
            // of a blocked push: count it so backpressure stays visible
            // in Table I-style stats regardless of push mode.
            self.inner.push_waits.inc();
            return Err(PushError::Full(item));
        }
        q.push_back(item);
        self.inner.pushed.inc();
        self.inner.note_depth(q.len());
        drop(q);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Blocking pop without metrics attribution.
    ///
    /// # Errors
    ///
    /// Returns [`PopError::Closed`] once the queue is closed and drained.
    pub fn pop(&self) -> Result<T, PopError> {
        self.pop_impl(None)
    }

    /// Blocking pop; wait time is charged to `handle` as `Waiting`.
    ///
    /// # Errors
    ///
    /// Returns [`PopError::Closed`] once the queue is closed and drained.
    pub fn pop_with(&self, handle: &ThreadHandle) -> Result<T, PopError> {
        self.pop_impl(Some(handle))
    }

    fn pop_impl(&self, handle: Option<&ThreadHandle>) -> Result<T, PopError> {
        let mut q = self.inner.queue.lock();
        if q.is_empty() {
            self.inner.pop_waits.inc();
            let _guard = handle.map(|h| h.enter(ThreadState::Waiting));
            while q.is_empty() {
                if self.is_closed_locked() {
                    return Err(PopError::Closed);
                }
                self.inner.not_empty.wait(&mut q);
            }
        }
        let item = q.pop_front().expect("queue is non-empty");
        self.inner.popped.inc();
        self.inner.note_depth(q.len());
        drop(q);
        self.inner.not_full.notify_one();
        Ok(item)
    }

    /// Non-blocking pop.
    ///
    /// # Errors
    ///
    /// Returns [`PopError::Empty`] when nothing is queued, or
    /// [`PopError::Closed`] when closed and drained.
    pub fn try_pop(&self) -> Result<T, PopError> {
        let mut q = self.inner.queue.lock();
        match q.pop_front() {
            Some(item) => {
                self.inner.popped.inc();
                self.inner.note_depth(q.len());
                drop(q);
                self.inner.not_full.notify_one();
                Ok(item)
            }
            None => {
                if self.is_closed_locked() {
                    Err(PopError::Closed)
                } else {
                    Err(PopError::Empty)
                }
            }
        }
    }

    /// Non-blocking bulk pop: drains everything currently queued into
    /// `buf` (appending) under one lock acquisition, waking producers
    /// once per batch. Returns the number of items moved (at least 1 on
    /// success).
    ///
    /// # Errors
    ///
    /// Returns [`PopError::Empty`] when nothing is queued, or
    /// [`PopError::Closed`] when closed and drained.
    ///
    /// # Examples
    ///
    /// ```
    /// use smr_queue::BoundedQueue;
    ///
    /// let q = BoundedQueue::new("ReplyQueue", 8);
    /// q.push_many(0..4).unwrap();
    /// let mut buf = Vec::new();
    /// assert_eq!(q.try_pop_all(&mut buf).unwrap(), 4);
    /// assert_eq!(buf, vec![0, 1, 2, 3]);
    /// ```
    pub fn try_pop_all(&self, buf: &mut Vec<T>) -> Result<usize, PopError> {
        let mut q = self.inner.queue.lock();
        let n = q.len();
        if n == 0 {
            return if self.is_closed_locked() {
                Err(PopError::Closed)
            } else {
                Err(PopError::Empty)
            };
        }
        buf.extend(q.drain(..));
        self.inner.popped.add(n as u64);
        self.inner.note_depth(q.len());
        drop(q);
        notify_batch(&self.inner.not_full, n);
        Ok(n)
    }

    /// Blocking bulk pop: waits up to `timeout` for the queue to become
    /// non-empty, then drains up to `max` items into `buf` (appending)
    /// under the same lock acquisition. Producers are woken once per
    /// batch. Returns the number of items moved (at least 1 on success).
    ///
    /// # Errors
    ///
    /// [`PopError::Empty`] on timeout, [`PopError::Closed`] when closed
    /// and drained.
    pub fn pop_wait_all(
        &self,
        buf: &mut Vec<T>,
        max: usize,
        timeout: Duration,
    ) -> Result<usize, PopError> {
        self.pop_wait_all_impl(buf, max, timeout, None)
    }

    /// Blocking bulk pop; wait time is charged to `handle` as `Waiting`.
    ///
    /// # Errors
    ///
    /// [`PopError::Empty`] on timeout, [`PopError::Closed`] when closed
    /// and drained.
    pub fn pop_wait_all_with(
        &self,
        buf: &mut Vec<T>,
        max: usize,
        timeout: Duration,
        handle: &ThreadHandle,
    ) -> Result<usize, PopError> {
        self.pop_wait_all_impl(buf, max, timeout, Some(handle))
    }

    fn pop_wait_all_impl(
        &self,
        buf: &mut Vec<T>,
        max: usize,
        timeout: Duration,
        handle: Option<&ThreadHandle>,
    ) -> Result<usize, PopError> {
        if max == 0 {
            return Err(PopError::Empty);
        }
        let mut q = self.inner.queue.lock();
        if q.is_empty() {
            self.inner.pop_waits.inc();
            let _guard = handle.map(|h| h.enter(ThreadState::Waiting));
            let deadline = std::time::Instant::now() + timeout;
            while q.is_empty() {
                if self.is_closed_locked() {
                    return Err(PopError::Closed);
                }
                if self
                    .inner
                    .not_empty
                    .wait_until(&mut q, deadline)
                    .timed_out()
                    && q.is_empty()
                {
                    return Err(PopError::Empty);
                }
            }
        }
        let n = q.len().min(max);
        buf.extend(q.drain(..n));
        self.inner.popped.add(n as u64);
        self.inner.note_depth(q.len());
        drop(q);
        notify_batch(&self.inner.not_full, n);
        Ok(n)
    }

    /// Pop with a timeout.
    ///
    /// # Errors
    ///
    /// [`PopError::Empty`] on timeout, [`PopError::Closed`] when closed
    /// and drained.
    pub fn pop_timeout(&self, timeout: Duration) -> Result<T, PopError> {
        self.pop_timeout_impl(timeout, None)
    }

    /// Pop with a timeout; wait time is charged to `handle` as `Waiting`.
    ///
    /// # Errors
    ///
    /// [`PopError::Empty`] on timeout, [`PopError::Closed`] when closed
    /// and drained.
    pub fn pop_timeout_with(
        &self,
        timeout: Duration,
        handle: &ThreadHandle,
    ) -> Result<T, PopError> {
        self.pop_timeout_impl(timeout, Some(handle))
    }

    fn pop_timeout_impl(
        &self,
        timeout: Duration,
        handle: Option<&ThreadHandle>,
    ) -> Result<T, PopError> {
        let mut q = self.inner.queue.lock();
        let _guard = if q.is_empty() {
            handle.map(|h| h.enter(ThreadState::Waiting))
        } else {
            None
        };
        if q.is_empty() {
            self.inner.pop_waits.inc();
            let deadline = std::time::Instant::now() + timeout;
            while q.is_empty() {
                if self.is_closed_locked() {
                    return Err(PopError::Closed);
                }
                if self
                    .inner
                    .not_empty
                    .wait_until(&mut q, deadline)
                    .timed_out()
                {
                    return if q.is_empty() {
                        Err(PopError::Empty)
                    } else {
                        break;
                    };
                }
            }
        }
        let item = q.pop_front().expect("queue is non-empty");
        self.inner.popped.inc();
        self.inner.note_depth(q.len());
        drop(q);
        self.inner.not_full.notify_one();
        Ok(item)
    }

    /// Drains everything currently queued.
    pub fn drain(&self) -> Vec<T> {
        let mut q = self.inner.queue.lock();
        let items: Vec<T> = q.drain(..).collect();
        self.inner.popped.add(items.len() as u64);
        self.inner.note_depth(q.len());
        drop(q);
        self.inner.not_full.notify_all();
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order() {
        let q = BoundedQueue::new("t", 10);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.pop().unwrap(), i);
        }
    }

    #[test]
    fn try_push_full() {
        let q = BoundedQueue::new("t", 2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
    }

    #[test]
    fn try_pop_empty() {
        let q: BoundedQueue<u32> = BoundedQueue::new("t", 2);
        assert_eq!(q.try_pop(), Err(PopError::Empty));
    }

    #[test]
    fn close_wakes_and_drains() {
        let q: BoundedQueue<u32> = BoundedQueue::new("t", 2);
        q.push(7).unwrap();
        q.close();
        assert_eq!(q.pop().unwrap(), 7);
        assert_eq!(q.pop(), Err(PopError::Closed));
        assert!(matches!(q.push(1), Err(PushError::Closed(1))));
    }

    #[test]
    fn close_unblocks_waiting_popper() {
        let q: BoundedQueue<u32> = BoundedQueue::new("t", 2);
        let q2 = q.clone();
        let h = thread::spawn(move || q2.pop());
        thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), Err(PopError::Closed));
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = BoundedQueue::new("t", 1);
        q.push(1).unwrap();
        let q2 = q.clone();
        let h = thread::spawn(move || q2.push(2));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop().unwrap(), 1);
        h.join().unwrap().unwrap();
        assert_eq!(q.pop().unwrap(), 2);
        assert_eq!(q.stats().push_waits, 1);
    }

    #[test]
    fn pop_timeout_times_out() {
        let q: BoundedQueue<u32> = BoundedQueue::new("t", 2);
        let start = std::time::Instant::now();
        assert_eq!(
            q.pop_timeout(Duration::from_millis(30)),
            Err(PopError::Empty)
        );
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn pop_timeout_returns_item() {
        let q = BoundedQueue::new("t", 2);
        let q2 = q.clone();
        thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            q2.push(9).unwrap();
        });
        assert_eq!(q.pop_timeout(Duration::from_secs(5)).unwrap(), 9);
    }

    #[test]
    fn mpmc_no_loss_no_duplication() {
        let q = BoundedQueue::new("t", 64);
        let producers = 4;
        let per = 2_500u64;
        let mut handles = Vec::new();
        for p in 0..producers {
            let q = q.clone();
            handles.push(thread::spawn(move || {
                for i in 0..per {
                    q.push(p as u64 * per + i).unwrap();
                }
            }));
        }
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<u64> = (0..producers as u64 * per).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn tracked_waiting_is_accounted() {
        use smr_metrics::MetricsRegistry;
        let reg = MetricsRegistry::new();
        let q: BoundedQueue<u32> = BoundedQueue::new("t", 2);
        let q2 = q.clone();
        let reg2 = reg.clone();
        let h = thread::spawn(move || {
            let handle = reg2.register_thread("consumer");
            q2.pop_with(&handle)
        });
        thread::sleep(Duration::from_millis(30));
        q.push(5).unwrap();
        assert_eq!(h.join().unwrap().unwrap(), 5);
        let snap = reg.snapshot();
        assert!(
            snap.threads[0].waiting_ns >= 20_000_000,
            "waiting time was recorded"
        );
    }

    #[test]
    fn drain_empties_queue() {
        let q = BoundedQueue::new("t", 10);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.drain(), vec![0, 1, 2, 3]);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _: BoundedQueue<u32> = BoundedQueue::new("t", 0);
    }

    #[test]
    fn push_many_preserves_fifo() {
        let q = BoundedQueue::new("t", 16);
        assert_eq!(q.push_many(0..5).unwrap(), 5);
        for i in 0..5 {
            assert_eq!(q.pop().unwrap(), i);
        }
    }

    #[test]
    fn push_many_empty_input_is_ok() {
        let q: BoundedQueue<u32> = BoundedQueue::new("t", 4);
        assert_eq!(q.push_many(std::iter::empty()).unwrap(), 0);
        q.close();
        assert_eq!(q.push_many(std::iter::empty()).unwrap(), 0);
    }

    #[test]
    fn push_many_blocks_for_space_then_finishes() {
        let q = BoundedQueue::new("t", 4);
        let q2 = q.clone();
        let h = thread::spawn(move || q2.push_many(0..10).unwrap());
        let mut got = Vec::new();
        while got.len() < 10 {
            match q.pop_timeout(Duration::from_secs(5)) {
                Ok(v) => got.push(v),
                Err(e) => panic!("pop failed: {e}"),
            }
        }
        assert_eq!(h.join().unwrap(), 10);
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert!(q.stats().push_waits >= 1, "bulk push waited for space");
    }

    #[test]
    fn push_many_hands_back_remainder_on_close() {
        let q = BoundedQueue::new("t", 2);
        let q2 = q.clone();
        let h = thread::spawn(move || q2.push_many(0..6));
        // Wait until the pusher filled the queue and blocked.
        while q.len() < 2 {
            thread::yield_now();
        }
        q.close();
        match h.join().unwrap() {
            Err(PushError::Closed(rest)) => {
                assert_eq!(rest, vec![2, 3, 4, 5], "unpushed items handed back");
            }
            other => panic!("expected Closed with remainder, got {other:?}"),
        }
        // Items pushed before the close remain poppable (close drains).
        assert_eq!(q.pop().unwrap(), 0);
        assert_eq!(q.pop().unwrap(), 1);
        assert_eq!(q.pop(), Err(PopError::Closed));
    }

    #[test]
    fn try_pop_all_drains_and_reports_state() {
        let q = BoundedQueue::new("t", 8);
        let mut buf = Vec::new();
        assert_eq!(q.try_pop_all(&mut buf), Err(PopError::Empty));
        q.push_many(0..3).unwrap();
        assert_eq!(q.try_pop_all(&mut buf).unwrap(), 3);
        assert_eq!(buf, vec![0, 1, 2]);
        assert!(q.is_empty());
        q.close();
        assert_eq!(q.try_pop_all(&mut buf), Err(PopError::Closed));
    }

    #[test]
    fn pop_wait_all_respects_max() {
        let q = BoundedQueue::new("t", 16);
        q.push_many(0..10).unwrap();
        let mut buf = Vec::new();
        assert_eq!(
            q.pop_wait_all(&mut buf, 4, Duration::from_millis(10))
                .unwrap(),
            4
        );
        assert_eq!(buf, vec![0, 1, 2, 3]);
        assert_eq!(q.len(), 6);
    }

    #[test]
    fn pop_wait_all_times_out_empty() {
        let q: BoundedQueue<u32> = BoundedQueue::new("t", 4);
        let mut buf = Vec::new();
        let start = std::time::Instant::now();
        assert_eq!(
            q.pop_wait_all(&mut buf, 8, Duration::from_millis(30)),
            Err(PopError::Empty)
        );
        assert!(start.elapsed() >= Duration::from_millis(25));
        assert!(buf.is_empty());
    }

    #[test]
    fn pop_wait_all_wakes_on_bulk_push() {
        let q = BoundedQueue::new("t", 64);
        let q2 = q.clone();
        let h = thread::spawn(move || {
            let mut buf = Vec::new();
            let n = q2
                .pop_wait_all(&mut buf, 64, Duration::from_secs(5))
                .unwrap();
            (n, buf)
        });
        thread::sleep(Duration::from_millis(10));
        q.push_many(0..8).unwrap();
        let (n, buf) = h.join().unwrap();
        assert!(n >= 1, "the single batch notification woke the popper");
        assert_eq!(buf[0], 0);
    }

    #[test]
    fn pop_wait_all_closed_after_drain() {
        let q = BoundedQueue::new("t", 8);
        q.push_many(0..2).unwrap();
        q.close();
        let mut buf = Vec::new();
        assert_eq!(
            q.pop_wait_all(&mut buf, 8, Duration::from_millis(10))
                .unwrap(),
            2,
            "close drains remaining items first"
        );
        assert_eq!(
            q.pop_wait_all(&mut buf, 8, Duration::from_millis(10)),
            Err(PopError::Closed)
        );
    }

    #[test]
    fn bulk_ops_update_stats_totals() {
        let q = BoundedQueue::new("t", 32);
        q.push_many(0..10).unwrap();
        let mut buf = Vec::new();
        q.pop_wait_all(&mut buf, 4, Duration::from_millis(10))
            .unwrap();
        q.try_pop_all(&mut buf).unwrap();
        let stats = q.stats();
        assert_eq!(stats.pushed, 10);
        assert_eq!(stats.popped, 10);
    }

    /// Regression: Table I numbers must be mode-independent. Running the
    /// same workload through scalar ops and through bulk ops must leave
    /// identical stat totals (pushed/popped/depth/high-watermark).
    #[test]
    fn scalar_and_bulk_ops_produce_identical_stats() {
        let scalar = BoundedQueue::new("scalar", 32);
        for i in 0..10 {
            scalar.push(i).unwrap();
        }
        for _ in 0..10 {
            scalar.pop().unwrap();
        }

        let bulk = BoundedQueue::new("bulk", 32);
        bulk.push_many(0..10).unwrap();
        let mut buf = Vec::new();
        bulk.try_pop_all(&mut buf).unwrap();

        let (s, b) = (scalar.stats(), bulk.stats());
        assert_eq!(s.pushed, b.pushed);
        assert_eq!(s.popped, b.popped);
        assert_eq!(s.depth, b.depth);
        assert_eq!(
            s.high_watermark, b.high_watermark,
            "bulk push must raise the watermark exactly like scalar pushes"
        );
        assert_eq!(s.high_watermark, 10);
        assert_eq!(s.depth, 0);
    }

    #[test]
    fn depth_and_watermark_track_queue_length() {
        let q = BoundedQueue::new("t", 8);
        assert_eq!(q.stats().depth, 0);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.push(3).unwrap();
        assert_eq!(q.stats().depth, 3);
        assert_eq!(q.stats().high_watermark, 3);
        q.pop().unwrap();
        let s = q.stats();
        assert_eq!(s.depth, 2);
        assert_eq!(s.high_watermark, 3, "watermark is sticky");
        assert_eq!(s.capacity, 8);
    }

    #[test]
    fn try_push_full_counts_as_blocked_push() {
        let q = BoundedQueue::new("t", 1);
        q.try_push(1).unwrap();
        assert!(q.try_push(2).is_err());
        assert!(q.try_push(3).is_err());
        assert_eq!(q.stats().push_waits, 2);
    }

    #[test]
    fn probe_shares_live_stats() {
        let q = BoundedQueue::new("request_q", 16);
        let probe = q.probe();
        assert_eq!(probe.name(), "request_q");
        assert_eq!(probe.capacity(), 16);
        q.push_many(0..5).unwrap();
        assert_eq!(probe.depth(), 5);
        let snap = probe.snapshot();
        assert_eq!(snap.high_watermark, 5);
        assert_eq!(snap.pushed, 5);
    }

    /// Loom-style stress (plain threads): close racing with scalar and
    /// bulk waiters on both the empty and the full side. Every waiter
    /// must wake and observe `Closed`; none may hang. This is the
    /// ordering the `closed` AtomicBool + store-then-lock-then-notify
    /// handshake in `close` guarantees.
    #[test]
    fn close_vs_waiters_stress() {
        for _ in 0..100 {
            let full: BoundedQueue<u32> = BoundedQueue::new("full", 1);
            full.push(0).unwrap();
            let empty: BoundedQueue<u32> = BoundedQueue::new("empty", 1);
            let mut pushers = Vec::new();
            for i in 0..2 {
                let q = full.clone();
                pushers.push(thread::spawn(move || q.push(i).is_err()));
            }
            let bulk_pusher = {
                let q = full.clone();
                thread::spawn(move || q.push_many(10..14).is_err())
            };
            let mut poppers = Vec::new();
            for _ in 0..2 {
                let q = empty.clone();
                poppers.push(thread::spawn(move || q.pop() == Err(PopError::Closed)));
            }
            let bulk_popper = {
                let q = empty.clone();
                thread::spawn(move || {
                    let mut buf = Vec::new();
                    q.pop_wait_all(&mut buf, 8, Duration::from_secs(10)) == Err(PopError::Closed)
                })
            };
            thread::yield_now();
            full.close();
            empty.close();
            for h in pushers {
                assert!(h.join().unwrap(), "scalar pusher observed Closed");
            }
            assert!(bulk_pusher.join().unwrap(), "bulk pusher observed Closed");
            for h in poppers {
                assert!(h.join().unwrap(), "scalar popper observed Closed");
            }
            assert!(bulk_popper.join().unwrap(), "bulk popper observed Closed");
        }
    }
}
