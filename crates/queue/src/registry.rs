//! Registry of named queues plus the Table I depth sampler.
//!
//! Each [`BoundedQueue`](crate::BoundedQueue) can hand out a
//! [`QueueProbe`] — a type-erased clone of its atomic counters, depth
//! gauge and high-watermark. Probes for queues of *different item
//! types* collect in one [`QueueRegistry`], which the metrics export
//! walks to produce [`QueueSnapshot`]s.
//!
//! The paper's Table I reports queue sizes as mean ± std-dev over the
//! run, which an instantaneous gauge cannot provide. The opt-in
//! [`DepthSampler`] thread snapshots every registered probe's depth at
//! a fixed period into a per-queue [`RunningStats`] (Welford), giving
//! exactly those two numbers without touching the queues' hot path.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use smr_metrics::{Counter, Gauge, QueueSnapshot, RunningStats, Watermark};

/// Type-erased observability handle of one queue: shares the queue's
/// live counters without knowing its item type. Obtained from
/// [`BoundedQueue::probe`](crate::BoundedQueue::probe).
#[derive(Debug, Clone)]
pub struct QueueProbe {
    name: String,
    capacity: usize,
    depth: Gauge,
    high_watermark: Watermark,
    pushed: Counter,
    popped: Counter,
    push_waits: Counter,
    pop_waits: Counter,
    /// Depth samples collected by a [`DepthSampler`], if one is running.
    depth_stats: Arc<Mutex<RunningStats>>,
}

impl QueueProbe {
    /// Bundles the shared handles. Called by `BoundedQueue::probe`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        name: String,
        capacity: usize,
        depth: Gauge,
        high_watermark: Watermark,
        pushed: Counter,
        popped: Counter,
        push_waits: Counter,
        pop_waits: Counter,
    ) -> Self {
        QueueProbe {
            name,
            capacity,
            depth,
            high_watermark,
            pushed,
            popped,
            push_waits,
            pop_waits,
            depth_stats: Arc::new(Mutex::new(RunningStats::new())),
        }
    }

    /// The queue's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The queue's configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth (lock-free read of the shared gauge).
    pub fn depth(&self) -> usize {
        self.depth.get().max(0) as usize
    }

    /// Records one depth observation into the sampled statistics.
    pub fn sample_depth(&self) {
        let d = self.depth() as f64;
        self.depth_stats.lock().record(d);
    }

    /// Condenses the probe into an exportable snapshot.
    pub fn snapshot(&self) -> QueueSnapshot {
        let stats = self.depth_stats.lock();
        QueueSnapshot {
            name: self.name.clone(),
            capacity: self.capacity,
            depth: self.depth(),
            high_watermark: self.high_watermark.get() as usize,
            pushed: self.pushed.get(),
            popped: self.popped.get(),
            push_waits: self.push_waits.get(),
            pop_waits: self.pop_waits.get(),
            depth_mean: if stats.count() == 0 {
                0.0
            } else {
                stats.mean()
            },
            depth_stddev: stats.std_dev(),
            depth_samples: stats.count(),
        }
    }
}

/// Collection of [`QueueProbe`]s for one replica, in registration order.
///
/// Cheap to clone (shared internally).
#[derive(Debug, Clone, Default)]
pub struct QueueRegistry {
    probes: Arc<Mutex<Vec<QueueProbe>>>,
}

impl QueueRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        QueueRegistry::default()
    }

    /// Adds a probe. Queues of different item types register in the same
    /// registry; duplicate names are allowed but make snapshots
    /// ambiguous, so give queues distinct names.
    pub fn register(&self, probe: QueueProbe) {
        self.probes.lock().push(probe);
    }

    /// Number of registered probes.
    pub fn len(&self) -> usize {
        self.probes.lock().len()
    }

    /// Whether no probes are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshots every registered queue, in registration order.
    pub fn snapshots(&self) -> Vec<QueueSnapshot> {
        self.probes
            .lock()
            .iter()
            .map(QueueProbe::snapshot)
            .collect()
    }

    /// Records one depth sample for every registered queue.
    pub fn sample_all(&self) {
        for probe in self.probes.lock().iter() {
            probe.sample_depth();
        }
    }

    /// Starts a background thread sampling all registered depths every
    /// `period` until the returned handle is stopped or dropped.
    ///
    /// Queues registered after the sampler starts are picked up on the
    /// next tick. The sampler only reads shared atomics, so its impact
    /// on the pipeline is one gauge load per queue per tick.
    pub fn start_sampler(&self, period: Duration) -> DepthSampler {
        let registry = self.clone();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("QueueSampler".into())
            .spawn(move || {
                while !stop2.load(std::sync::atomic::Ordering::Acquire) {
                    registry.sample_all();
                    std::thread::sleep(period);
                }
            })
            .expect("spawn QueueSampler");
        DepthSampler {
            stop,
            handle: Some(handle),
        }
    }
}

/// Handle of a running depth-sampler thread; stops it when dropped.
#[derive(Debug)]
pub struct DepthSampler {
    stop: Arc<std::sync::atomic::AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl DepthSampler {
    /// Stops the sampler and joins its thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for DepthSampler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BoundedQueue;

    #[test]
    fn registry_snapshots_mixed_item_types() {
        let reg = QueueRegistry::new();
        let q1: BoundedQueue<u32> = BoundedQueue::new("ints", 8);
        let q2: BoundedQueue<String> = BoundedQueue::new("strings", 4);
        reg.register(q1.probe());
        reg.register(q2.probe());
        q1.push(7).unwrap();
        q2.push("x".into()).unwrap();
        q2.push("y".into()).unwrap();
        let snaps = reg.snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].name, "ints");
        assert_eq!(snaps[0].depth, 1);
        assert_eq!(snaps[1].name, "strings");
        assert_eq!(snaps[1].depth, 2);
        assert_eq!(snaps[1].capacity, 4);
    }

    #[test]
    fn manual_sampling_yields_mean_and_stddev() {
        let reg = QueueRegistry::new();
        let q: BoundedQueue<u32> = BoundedQueue::new("q", 16);
        reg.register(q.probe());
        q.push_many(0..2).unwrap();
        reg.sample_all(); // depth 2
        q.push_many(0..2).unwrap();
        reg.sample_all(); // depth 4
        let snap = &reg.snapshots()[0];
        assert_eq!(snap.depth_samples, 2);
        assert!((snap.depth_mean - 3.0).abs() < 1e-9);
        assert!(snap.depth_stddev > 0.0);
    }

    #[test]
    fn sampler_thread_collects_and_stops() {
        let reg = QueueRegistry::new();
        let q: BoundedQueue<u32> = BoundedQueue::new("q", 16);
        reg.register(q.probe());
        q.push(1).unwrap();
        let sampler = reg.start_sampler(Duration::from_millis(1));
        // Wait until at least one sample landed.
        for _ in 0..500 {
            if reg.snapshots()[0].depth_samples > 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        sampler.stop();
        let snap = &reg.snapshots()[0];
        assert!(snap.depth_samples > 0, "sampler recorded at least once");
        assert!((snap.depth_mean - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_registry_is_fine() {
        let reg = QueueRegistry::new();
        assert!(reg.is_empty());
        assert!(reg.snapshots().is_empty());
        reg.sample_all();
    }
}
