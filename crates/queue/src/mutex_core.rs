//! The historical `Mutex<VecDeque>` queue core, kept as the reference
//! implementation for the lock-free ring in [`crate::bounded`].
//!
//! [`MutexBoundedQueue`] is the queue exactly as it shipped before the
//! ring rewrite: one mutex around a `VecDeque`, condvars for waiters,
//! bulk ops amortizing one lock acquisition per burst. It exists for
//! two jobs:
//!
//! 1. **Differential testing.** The bulk-equivalence proptests run the
//!    same scenario against this core and the ring core and assert
//!    identical observable traces — any semantic drift in the ring
//!    shows up as a counterexample against this oracle.
//! 2. **Benchmark baseline.** `bench_snapshot` measures the contended
//!    MPMC cases against both cores in the same run, so the ring's
//!    speedup is a same-file, same-machine ratio rather than a
//!    cross-run comparison.
//!
//! It shares [`PushError`]/[`PopError`]/[`QueueStats`] with the ring
//! core, so tests and benches can be written once and parameterized
//! over the core.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use smr_metrics::{Counter, Gauge, ThreadHandle, ThreadState, Watermark};

use crate::bounded::{notify_batch, PopError, PushError, QueueStats};
use crate::registry::QueueProbe;

struct Inner<T> {
    queue: Mutex<VecDeque<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    // A plain atomic, not a second mutex: readers on the hot path take
    // exactly one lock (the queue mutex) per operation. The close-wakes
    // -waiters handshake stays sound because `close` stores the flag and
    // *then* acquires the queue mutex before notifying: any waiter that
    // read `closed == false` under the mutex will release it in `wait`,
    // letting `close` in to notify, and re-checks the flag on wake.
    closed: AtomicBool,
    name: String,
    pushed: Counter,
    popped: Counter,
    push_waits: Counter,
    pop_waits: Counter,
    // Written only under the queue mutex (reads are lock-free), so the
    // gauge always reflects a consistent post-operation length.
    depth: Gauge,
    high_watermark: Watermark,
}

impl<T> Inner<T> {
    /// Publishes the post-operation queue length to the lock-free depth
    /// gauge and high-watermark. Callers hold the queue mutex.
    fn note_depth(&self, len: usize) {
        self.depth.set(len as i64);
        self.high_watermark.observe(len as u64);
    }
}

/// A bounded multi-producer multi-consumer FIFO queue.
///
/// Cloning shares the queue. Blocking operations come in untracked
/// (`push`/`pop`) and tracked (`push_with`/`pop_with`) flavours; tracked
/// variants charge wait time to the calling thread's profile as
/// [`ThreadState::Waiting`] — exactly what the JVM's `ThreadMXBean`
/// reports for a thread parked on a `Condition`.
///
/// # Bulk operations
///
/// A request crosses at least four of these queues on its way through
/// the replica, so per-item overhead bounds end-to-end throughput. The
/// bulk operations ([`MutexBoundedQueue::push_many`],
/// [`MutexBoundedQueue::try_pop_all`], [`MutexBoundedQueue::pop_wait_all`]) move a
/// whole burst under a single lock acquisition with a single condvar
/// notification per batch, draining into a caller-owned reusable buffer
/// so the steady state allocates nothing.
///
/// # Examples
///
/// ```
/// use smr_queue::MutexBoundedQueue;
///
/// let q = MutexBoundedQueue::new("RequestQueue", 1000);
/// q.push(42).unwrap();
/// assert_eq!(q.pop().unwrap(), 42);
///
/// q.push_many(0..3).unwrap();
/// let mut buf = Vec::new();
/// assert_eq!(q.try_pop_all(&mut buf).unwrap(), 3);
/// assert_eq!(buf, vec![0, 1, 2]);
/// ```
pub struct MutexBoundedQueue<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for MutexBoundedQueue<T> {
    fn clone(&self) -> Self {
        MutexBoundedQueue {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> fmt::Debug for MutexBoundedQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MutexBoundedQueue")
            .field("name", &self.inner.name)
            .field("capacity", &self.inner.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl<T> MutexBoundedQueue<T> {
    /// Creates a queue with the given diagnostic name and capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        MutexBoundedQueue {
            inner: Arc::new(Inner {
                queue: Mutex::new(VecDeque::with_capacity(capacity.min(65_536))),
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
                capacity,
                closed: AtomicBool::new(false),
                name: name.into(),
                pushed: Counter::new(),
                popped: Counter::new(),
                push_waits: Counter::new(),
                pop_waits: Counter::new(),
                depth: Gauge::new(),
                high_watermark: Watermark::new(),
            }),
        }
    }

    /// The queue's diagnostic name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Maximum number of items the queue holds.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.inner.queue.lock().len()
    }

    /// Whether the queue currently holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`MutexBoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.closed.load(Ordering::Acquire)
    }

    /// Closes the queue: subsequent pushes fail, pops drain remaining
    /// items and then report [`PopError::Closed`]. All waiters wake.
    pub fn close(&self) {
        self.inner.closed.store(true, Ordering::Release);
        let _guard = self.inner.queue.lock();
        self.inner.not_empty.notify_all();
        self.inner.not_full.notify_all();
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            pushed: self.inner.pushed.get(),
            popped: self.inner.popped.get(),
            push_waits: self.inner.push_waits.get(),
            pop_waits: self.inner.pop_waits.get(),
            capacity: self.inner.capacity,
            depth: self.inner.depth.get().max(0) as usize,
            high_watermark: self.inner.high_watermark.get() as usize,
        }
    }

    /// A type-erased observability handle for this queue: shares the
    /// queue's counters, depth gauge and high-watermark without holding
    /// the items' type, so queues of different item types can live in
    /// one [`QueueRegistry`](crate::QueueRegistry).
    pub fn probe(&self) -> QueueProbe {
        QueueProbe::new(
            self.inner.name.clone(),
            self.inner.capacity,
            self.inner.depth.clone(),
            self.inner.high_watermark.clone(),
            self.inner.pushed.clone(),
            self.inner.popped.clone(),
            self.inner.push_waits.clone(),
            self.inner.pop_waits.clone(),
        )
    }

    /// Blocking push without metrics attribution.
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Closed`] if the queue is closed.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        self.push_impl(item, None)
    }

    /// Blocking push; wait time is charged to `handle` as `Waiting`.
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Closed`] if the queue is closed.
    pub fn push_with(&self, item: T, handle: &ThreadHandle) -> Result<(), PushError<T>> {
        self.push_impl(item, Some(handle))
    }

    fn push_impl(&self, item: T, handle: Option<&ThreadHandle>) -> Result<(), PushError<T>> {
        if self.is_closed() {
            return Err(PushError::Closed(item));
        }
        let mut q = self.inner.queue.lock();
        if q.len() >= self.inner.capacity {
            self.inner.push_waits.inc();
            let _guard = handle.map(|h| h.enter(ThreadState::Waiting));
            while q.len() >= self.inner.capacity {
                if self.is_closed_locked() {
                    drop(q);
                    return Err(PushError::Closed(item));
                }
                self.inner.not_full.wait(&mut q);
            }
        }
        if self.is_closed_locked() {
            drop(q);
            return Err(PushError::Closed(item));
        }
        q.push_back(item);
        self.inner.pushed.inc();
        self.inner.note_depth(q.len());
        drop(q);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    fn is_closed_locked(&self) -> bool {
        // Callers hold the queue mutex, which already orders this load
        // against `close`'s store-then-lock handshake; Relaxed suffices.
        self.inner.closed.load(Ordering::Relaxed)
    }

    /// Blocking bulk push: moves every item of `items` into the queue,
    /// filling whatever space is free under one lock acquisition and
    /// waiting for room when full. Consumers are woken once per burst
    /// (one `notify_one` for a single item, one `notify_all` for more)
    /// instead of once per item. Returns the number of items pushed.
    ///
    /// The iterator is advanced while the queue's internal lock is held:
    /// it must be cheap and must not touch this queue (calling any
    /// method of the same queue from `next()` deadlocks). Pass drained
    /// buffers, ranges, or plain maps — not iterators doing I/O.
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Closed`] carrying the items not yet pushed if
    /// the queue closes mid-way; items pushed before the close remain
    /// poppable (close drains).
    ///
    /// # Examples
    ///
    /// ```
    /// use smr_queue::MutexBoundedQueue;
    ///
    /// let q = MutexBoundedQueue::new("ProposalQueue", 8);
    /// assert_eq!(q.push_many(vec!["a", "b", "c"]).unwrap(), 3);
    /// assert_eq!(q.len(), 3);
    /// ```
    pub fn push_many<I>(&self, items: I) -> Result<usize, PushError<Vec<T>>>
    where
        I: IntoIterator<Item = T>,
    {
        self.push_many_impl(items, None)
    }

    /// Blocking bulk push; wait time is charged to `handle` as `Waiting`.
    /// The iterator contract of [`MutexBoundedQueue::push_many`] applies.
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Closed`] carrying the items not yet pushed if
    /// the queue closes mid-way.
    pub fn push_many_with<I>(
        &self,
        items: I,
        handle: &ThreadHandle,
    ) -> Result<usize, PushError<Vec<T>>>
    where
        I: IntoIterator<Item = T>,
    {
        self.push_many_impl(items, Some(handle))
    }

    fn push_many_impl<I>(
        &self,
        items: I,
        handle: Option<&ThreadHandle>,
    ) -> Result<usize, PushError<Vec<T>>>
    where
        I: IntoIterator<Item = T>,
    {
        let mut iter = items.into_iter().peekable();
        if iter.peek().is_none() {
            return Ok(0);
        }
        if self.is_closed() {
            return Err(PushError::Closed(iter.collect()));
        }
        let mut total = 0usize;
        let mut q = self.inner.queue.lock();
        loop {
            if self.is_closed_locked() {
                drop(q);
                return Err(PushError::Closed(iter.collect()));
            }
            let mut pushed = 0usize;
            while q.len() < self.inner.capacity && iter.peek().is_some() {
                q.push_back(iter.next().expect("peeked item"));
                pushed += 1;
            }
            if pushed > 0 {
                self.inner.pushed.add(pushed as u64);
                self.inner.note_depth(q.len());
                total += pushed;
            }
            if iter.peek().is_none() {
                drop(q);
                notify_batch(&self.inner.not_empty, pushed);
                return Ok(total);
            }
            // Queue full with items remaining: hand the burst pushed so
            // far to consumers (notify under the lock — we must keep it
            // to wait), then block for space.
            notify_batch(&self.inner.not_empty, pushed);
            self.inner.push_waits.inc();
            let _guard = handle.map(|h| h.enter(ThreadState::Waiting));
            while q.len() >= self.inner.capacity {
                if self.is_closed_locked() {
                    drop(q);
                    return Err(PushError::Closed(iter.collect()));
                }
                self.inner.not_full.wait(&mut q);
            }
        }
    }

    /// Non-blocking push.
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Full`] or [`PushError::Closed`], handing the
    /// item back.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        if self.is_closed() {
            return Err(PushError::Closed(item));
        }
        let mut q = self.inner.queue.lock();
        if q.len() >= self.inner.capacity {
            // A rejected non-blocking push is the try-path's equivalent
            // of a blocked push: count it so backpressure stays visible
            // in Table I-style stats regardless of push mode.
            self.inner.push_waits.inc();
            return Err(PushError::Full(item));
        }
        q.push_back(item);
        self.inner.pushed.inc();
        self.inner.note_depth(q.len());
        drop(q);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Blocking pop without metrics attribution.
    ///
    /// # Errors
    ///
    /// Returns [`PopError::Closed`] once the queue is closed and drained.
    pub fn pop(&self) -> Result<T, PopError> {
        self.pop_impl(None)
    }

    /// Blocking pop; wait time is charged to `handle` as `Waiting`.
    ///
    /// # Errors
    ///
    /// Returns [`PopError::Closed`] once the queue is closed and drained.
    pub fn pop_with(&self, handle: &ThreadHandle) -> Result<T, PopError> {
        self.pop_impl(Some(handle))
    }

    fn pop_impl(&self, handle: Option<&ThreadHandle>) -> Result<T, PopError> {
        let mut q = self.inner.queue.lock();
        if q.is_empty() {
            self.inner.pop_waits.inc();
            let _guard = handle.map(|h| h.enter(ThreadState::Waiting));
            while q.is_empty() {
                if self.is_closed_locked() {
                    return Err(PopError::Closed);
                }
                self.inner.not_empty.wait(&mut q);
            }
        }
        let item = q.pop_front().expect("queue is non-empty");
        self.inner.popped.inc();
        self.inner.note_depth(q.len());
        drop(q);
        self.inner.not_full.notify_one();
        Ok(item)
    }

    /// Non-blocking pop.
    ///
    /// # Errors
    ///
    /// Returns [`PopError::Empty`] when nothing is queued, or
    /// [`PopError::Closed`] when closed and drained.
    pub fn try_pop(&self) -> Result<T, PopError> {
        let mut q = self.inner.queue.lock();
        match q.pop_front() {
            Some(item) => {
                self.inner.popped.inc();
                self.inner.note_depth(q.len());
                drop(q);
                self.inner.not_full.notify_one();
                Ok(item)
            }
            None => {
                if self.is_closed_locked() {
                    Err(PopError::Closed)
                } else {
                    Err(PopError::Empty)
                }
            }
        }
    }

    /// Non-blocking bulk pop: drains everything currently queued into
    /// `buf` (appending) under one lock acquisition, waking producers
    /// once per batch. Returns the number of items moved (at least 1 on
    /// success).
    ///
    /// # Errors
    ///
    /// Returns [`PopError::Empty`] when nothing is queued, or
    /// [`PopError::Closed`] when closed and drained.
    ///
    /// # Examples
    ///
    /// ```
    /// use smr_queue::MutexBoundedQueue;
    ///
    /// let q = MutexBoundedQueue::new("ReplyQueue", 8);
    /// q.push_many(0..4).unwrap();
    /// let mut buf = Vec::new();
    /// assert_eq!(q.try_pop_all(&mut buf).unwrap(), 4);
    /// assert_eq!(buf, vec![0, 1, 2, 3]);
    /// ```
    pub fn try_pop_all(&self, buf: &mut Vec<T>) -> Result<usize, PopError> {
        let mut q = self.inner.queue.lock();
        let n = q.len();
        if n == 0 {
            return if self.is_closed_locked() {
                Err(PopError::Closed)
            } else {
                Err(PopError::Empty)
            };
        }
        buf.extend(q.drain(..));
        self.inner.popped.add(n as u64);
        self.inner.note_depth(q.len());
        drop(q);
        notify_batch(&self.inner.not_full, n);
        Ok(n)
    }

    /// Blocking bulk pop: waits up to `timeout` for the queue to become
    /// non-empty, then drains up to `max` items into `buf` (appending)
    /// under the same lock acquisition. Producers are woken once per
    /// batch. Returns the number of items moved (at least 1 on success).
    ///
    /// # Errors
    ///
    /// [`PopError::Empty`] on timeout, [`PopError::Closed`] when closed
    /// and drained.
    pub fn pop_wait_all(
        &self,
        buf: &mut Vec<T>,
        max: usize,
        timeout: Duration,
    ) -> Result<usize, PopError> {
        self.pop_wait_all_impl(buf, max, timeout, None)
    }

    /// Blocking bulk pop; wait time is charged to `handle` as `Waiting`.
    ///
    /// # Errors
    ///
    /// [`PopError::Empty`] on timeout, [`PopError::Closed`] when closed
    /// and drained.
    pub fn pop_wait_all_with(
        &self,
        buf: &mut Vec<T>,
        max: usize,
        timeout: Duration,
        handle: &ThreadHandle,
    ) -> Result<usize, PopError> {
        self.pop_wait_all_impl(buf, max, timeout, Some(handle))
    }

    fn pop_wait_all_impl(
        &self,
        buf: &mut Vec<T>,
        max: usize,
        timeout: Duration,
        handle: Option<&ThreadHandle>,
    ) -> Result<usize, PopError> {
        if max == 0 {
            return Err(PopError::Empty);
        }
        let mut q = self.inner.queue.lock();
        if q.is_empty() {
            self.inner.pop_waits.inc();
            let _guard = handle.map(|h| h.enter(ThreadState::Waiting));
            let deadline = std::time::Instant::now() + timeout;
            while q.is_empty() {
                if self.is_closed_locked() {
                    return Err(PopError::Closed);
                }
                if self
                    .inner
                    .not_empty
                    .wait_until(&mut q, deadline)
                    .timed_out()
                    && q.is_empty()
                {
                    return Err(PopError::Empty);
                }
            }
        }
        let n = q.len().min(max);
        buf.extend(q.drain(..n));
        self.inner.popped.add(n as u64);
        self.inner.note_depth(q.len());
        drop(q);
        notify_batch(&self.inner.not_full, n);
        Ok(n)
    }

    /// Pop with a timeout.
    ///
    /// # Errors
    ///
    /// [`PopError::Empty`] on timeout, [`PopError::Closed`] when closed
    /// and drained.
    pub fn pop_timeout(&self, timeout: Duration) -> Result<T, PopError> {
        self.pop_timeout_impl(timeout, None)
    }

    /// Pop with a timeout; wait time is charged to `handle` as `Waiting`.
    ///
    /// # Errors
    ///
    /// [`PopError::Empty`] on timeout, [`PopError::Closed`] when closed
    /// and drained.
    pub fn pop_timeout_with(
        &self,
        timeout: Duration,
        handle: &ThreadHandle,
    ) -> Result<T, PopError> {
        self.pop_timeout_impl(timeout, Some(handle))
    }

    fn pop_timeout_impl(
        &self,
        timeout: Duration,
        handle: Option<&ThreadHandle>,
    ) -> Result<T, PopError> {
        let mut q = self.inner.queue.lock();
        let _guard = if q.is_empty() {
            handle.map(|h| h.enter(ThreadState::Waiting))
        } else {
            None
        };
        if q.is_empty() {
            self.inner.pop_waits.inc();
            let deadline = std::time::Instant::now() + timeout;
            while q.is_empty() {
                if self.is_closed_locked() {
                    return Err(PopError::Closed);
                }
                if self
                    .inner
                    .not_empty
                    .wait_until(&mut q, deadline)
                    .timed_out()
                {
                    return if q.is_empty() {
                        Err(PopError::Empty)
                    } else {
                        break;
                    };
                }
            }
        }
        let item = q.pop_front().expect("queue is non-empty");
        self.inner.popped.inc();
        self.inner.note_depth(q.len());
        drop(q);
        self.inner.not_full.notify_one();
        Ok(item)
    }

    /// Drains everything currently queued.
    pub fn drain(&self) -> Vec<T> {
        let mut q = self.inner.queue.lock();
        let items: Vec<T> = q.drain(..).collect();
        self.inner.popped.add(items.len() as u64);
        self.inner.note_depth(q.len());
        drop(q);
        self.inner.not_full.notify_all();
        items
    }
}
