//! Instrumented bounded queues — the connective tissue of the threading
//! architecture.
//!
//! Every arrow in the paper's Fig. 3 (RequestQueue, ProposalQueue,
//! DispatcherQueue, DecisionQueue, per-peer SendQueues, per-client reply
//! queues) is one of these queues. Two properties matter:
//!
//! 1. **Backpressure** (§V-E): queues are bounded, so a slow stage fills
//!    its input queue and stalls the stage before it, all the way to the
//!    clients' TCP connections.
//! 2. **Observability** (§VI-B): time spent *waiting* on an empty/full
//!    queue and time spent *blocked* on the queue's internal lock are
//!    accounted to the calling thread via [`smr_metrics::ThreadHandle`],
//!    which is how the per-thread profiles of Figs. 8/14 are produced.
//!
//! The crate also provides [`TimerQueue`], the Retransmitter's priority
//! queue with lock-free cancellation (§V-C4: the Protocol thread cancels a
//! pending retransmission by setting a volatile flag, without waking the
//! Retransmitter thread).

//!
//! For Table I-style statistics, each queue exposes a type-erased
//! [`QueueProbe`] (depth gauge, high-watermark, push/pop counters) that
//! registers in a [`QueueRegistry`]; an opt-in [`DepthSampler`] thread
//! turns the live depths into mean ± std-dev.

mod bounded;
mod mutex_core;
mod registry;
mod timer;

pub use bounded::{BoundedQueue, PopError, PushError, QueueStats};
pub use mutex_core::MutexBoundedQueue;
pub use registry::{DepthSampler, QueueProbe, QueueRegistry};
pub use timer::{CancelHandle, TimerEntry, TimerQueue};
