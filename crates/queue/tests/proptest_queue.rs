//! Property tests for the bounded queue: conservation (nothing lost,
//! nothing duplicated) and per-producer FIFO order under concurrency.

use std::collections::HashMap;
use std::thread;

use proptest::prelude::*;

use smr_queue::BoundedQueue;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn conservation_and_per_producer_fifo(
        producers in 1usize..5,
        per_producer in 1usize..200,
        capacity in 1usize..64,
    ) {
        let q: BoundedQueue<(usize, usize)> = BoundedQueue::new("prop", capacity);
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let q = q.clone();
                thread::spawn(move || {
                    for i in 0..per_producer {
                        q.push((p, i)).unwrap();
                    }
                })
            })
            .collect();
        let consumer = {
            let q = q.clone();
            thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        q.close();
        let got = consumer.join().unwrap();
        // Conservation.
        prop_assert_eq!(got.len(), producers * per_producer);
        // Per-producer FIFO.
        let mut next: HashMap<usize, usize> = HashMap::new();
        for (p, i) in got {
            let expected = next.entry(p).or_insert(0);
            prop_assert_eq!(i, *expected, "producer {}'s items in order", p);
            *expected += 1;
        }
    }

    /// Bulk ops are observationally equivalent to scalar ops: with a mix
    /// of `push`/`push_many` producers and `pop`/`pop_wait_all` consumers
    /// the queue still loses nothing, duplicates nothing, keeps
    /// per-producer FIFO order (each consumer's observed subsequence per
    /// producer is strictly in order), and the `QueueStats` totals equal
    /// the item count exactly as with scalar ops.
    #[test]
    fn bulk_ops_equivalent_to_scalar(
        producers in 1usize..5,
        per_producer in 1usize..150,
        capacity in 1usize..64,
        chunk in 1usize..17,
    ) {
        use std::time::Duration;
        use smr_queue::PopError;

        let q: BoundedQueue<(usize, usize)> = BoundedQueue::new("prop-bulk", capacity);
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let q = q.clone();
                thread::spawn(move || {
                    if p % 2 == 0 {
                        // Bulk producer: bursts of `chunk` requests.
                        let mut i = 0;
                        while i < per_producer {
                            let end = (i + chunk).min(per_producer);
                            q.push_many((i..end).map(|j| (p, j))).unwrap();
                            i = end;
                        }
                    } else {
                        // Scalar producer.
                        for i in 0..per_producer {
                            q.push((p, i)).unwrap();
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|c| {
                let q = q.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    if c == 0 {
                        // Bulk consumer.
                        let mut buf = Vec::new();
                        while let Ok(_) | Err(PopError::Empty) =
                            q.pop_wait_all(&mut buf, 64, Duration::from_millis(50))
                        {
                            got.append(&mut buf);
                        }
                    } else {
                        // Scalar consumer.
                        while let Ok(v) = q.pop() {
                            got.push(v);
                        }
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        q.close();
        let per_consumer: Vec<Vec<(usize, usize)>> =
            consumers.into_iter().map(|c| c.join().unwrap()).collect();
        // Per-producer FIFO within each consumer's observation.
        for got in &per_consumer {
            let mut last: HashMap<usize, usize> = HashMap::new();
            for &(p, i) in got {
                if let Some(prev) = last.get(&p) {
                    prop_assert!(i > *prev, "producer {}: {} after {}", p, i, prev);
                }
                last.insert(p, i);
            }
        }
        // Conservation: nothing lost, nothing duplicated.
        let mut all: Vec<(usize, usize)> = per_consumer.into_iter().flatten().collect();
        all.sort_unstable();
        let expected: Vec<(usize, usize)> = (0..producers)
            .flat_map(|p| (0..per_producer).map(move |i| (p, i)))
            .collect();
        prop_assert_eq!(&all, &expected);
        // Stats totals identical to what scalar ops would record.
        let stats = q.stats();
        prop_assert_eq!(stats.pushed, (producers * per_producer) as u64);
        prop_assert_eq!(stats.popped, (producers * per_producer) as u64);
    }

    #[test]
    fn drain_plus_pops_account_for_everything(
        pushes in 0usize..100,
        pops in 0usize..100,
    ) {
        let q: BoundedQueue<usize> = BoundedQueue::new("prop", 128);
        for i in 0..pushes {
            q.push(i).unwrap();
        }
        let mut popped = 0;
        for _ in 0..pops.min(pushes) {
            if q.try_pop().is_ok() {
                popped += 1;
            }
        }
        let drained = q.drain().len();
        prop_assert_eq!(popped + drained, pushes);
        prop_assert!(q.is_empty());
    }
}
