//! Property tests for the bounded queue: conservation (nothing lost,
//! nothing duplicated) and per-producer FIFO order under concurrency.
//!
//! Every concurrent scenario runs twice — once against the lock-free
//! ring core ([`BoundedQueue`]) and once against the retained mutex
//! reference core ([`MutexBoundedQueue`]) — via the `core_suite!`
//! macro, so the two implementations are held to the same properties.
//! On top of that, `scripted_trace_identical_across_cores` drives both
//! cores through the *same* randomized operation script and asserts the
//! observable trace (every op result, every popped value, the robust
//! stats fields) is identical op-for-op: the mutex core is the oracle
//! the ring must match.

use std::collections::HashMap;
use std::thread;
use std::time::Duration;

use proptest::prelude::*;

use smr_queue::{BoundedQueue, MutexBoundedQueue, PopError};

/// Instantiates the concurrent property suite for one queue core. Both
/// cores expose the identical inherent API, so the scenarios are
/// written once and stamped out per core.
macro_rules! core_suite {
    ($suite:ident, $Q:ident) => {
        mod $suite {
            use super::*;

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(16))]

                #[test]
                fn conservation_and_per_producer_fifo(
                    producers in 1usize..5,
                    per_producer in 1usize..200,
                    capacity in 1usize..64,
                ) {
                    let q: $Q<(usize, usize)> = $Q::new("prop", capacity);
                    let handles: Vec<_> = (0..producers)
                        .map(|p| {
                            let q = q.clone();
                            thread::spawn(move || {
                                for i in 0..per_producer {
                                    q.push((p, i)).unwrap();
                                }
                            })
                        })
                        .collect();
                    let consumer = {
                        let q = q.clone();
                        thread::spawn(move || {
                            let mut got = Vec::new();
                            while let Ok(v) = q.pop() {
                                got.push(v);
                            }
                            got
                        })
                    };
                    for h in handles {
                        h.join().unwrap();
                    }
                    q.close();
                    let got = consumer.join().unwrap();
                    // Conservation.
                    prop_assert_eq!(got.len(), producers * per_producer);
                    // Per-producer FIFO.
                    let mut next: HashMap<usize, usize> = HashMap::new();
                    for (p, i) in got {
                        let expected = next.entry(p).or_insert(0);
                        prop_assert_eq!(i, *expected, "producer {}'s items in order", p);
                        *expected += 1;
                    }
                }

                /// Bulk ops are observationally equivalent to scalar ops: with a mix
                /// of `push`/`push_many` producers and `pop`/`pop_wait_all` consumers
                /// the queue still loses nothing, duplicates nothing, keeps
                /// per-producer FIFO order (each consumer's observed subsequence per
                /// producer is strictly in order), and the `QueueStats` totals equal
                /// the item count exactly as with scalar ops.
                #[test]
                fn bulk_ops_equivalent_to_scalar(
                    producers in 1usize..5,
                    per_producer in 1usize..150,
                    capacity in 1usize..64,
                    chunk in 1usize..17,
                ) {
                    let q: $Q<(usize, usize)> = $Q::new("prop-bulk", capacity);
                    let handles: Vec<_> = (0..producers)
                        .map(|p| {
                            let q = q.clone();
                            thread::spawn(move || {
                                if p % 2 == 0 {
                                    // Bulk producer: bursts of `chunk` requests.
                                    let mut i = 0;
                                    while i < per_producer {
                                        let end = (i + chunk).min(per_producer);
                                        q.push_many((i..end).map(|j| (p, j))).unwrap();
                                        i = end;
                                    }
                                } else {
                                    // Scalar producer.
                                    for i in 0..per_producer {
                                        q.push((p, i)).unwrap();
                                    }
                                }
                            })
                        })
                        .collect();
                    let consumers: Vec<_> = (0..2)
                        .map(|c| {
                            let q = q.clone();
                            thread::spawn(move || {
                                let mut got = Vec::new();
                                if c == 0 {
                                    // Bulk consumer.
                                    let mut buf = Vec::new();
                                    while let Ok(_) | Err(PopError::Empty) =
                                        q.pop_wait_all(&mut buf, 64, Duration::from_millis(50))
                                    {
                                        got.append(&mut buf);
                                    }
                                } else {
                                    // Scalar consumer.
                                    while let Ok(v) = q.pop() {
                                        got.push(v);
                                    }
                                }
                                got
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().unwrap();
                    }
                    q.close();
                    let per_consumer: Vec<Vec<(usize, usize)>> =
                        consumers.into_iter().map(|c| c.join().unwrap()).collect();
                    // Per-producer FIFO within each consumer's observation.
                    for got in &per_consumer {
                        let mut last: HashMap<usize, usize> = HashMap::new();
                        for &(p, i) in got {
                            if let Some(prev) = last.get(&p) {
                                prop_assert!(i > *prev, "producer {}: {} after {}", p, i, prev);
                            }
                            last.insert(p, i);
                        }
                    }
                    // Conservation: nothing lost, nothing duplicated.
                    let mut all: Vec<(usize, usize)> = per_consumer.into_iter().flatten().collect();
                    all.sort_unstable();
                    let expected: Vec<(usize, usize)> = (0..producers)
                        .flat_map(|p| (0..per_producer).map(move |i| (p, i)))
                        .collect();
                    prop_assert_eq!(&all, &expected);
                    // Stats totals identical to what scalar ops would record.
                    let stats = q.stats();
                    prop_assert_eq!(stats.pushed, (producers * per_producer) as u64);
                    prop_assert_eq!(stats.popped, (producers * per_producer) as u64);
                }

                #[test]
                fn drain_plus_pops_account_for_everything(
                    pushes in 0usize..100,
                    pops in 0usize..100,
                ) {
                    let q: $Q<usize> = $Q::new("prop", 128);
                    for i in 0..pushes {
                        q.push(i).unwrap();
                    }
                    let mut popped = 0;
                    for _ in 0..pops.min(pushes) {
                        if q.try_pop().is_ok() {
                            popped += 1;
                        }
                    }
                    let drained = q.drain().len();
                    prop_assert_eq!(popped + drained, pushes);
                    prop_assert!(q.is_empty());
                }
            }
        }
    };
}

core_suite!(ring_core, BoundedQueue);
core_suite!(mutex_core, MutexBoundedQueue);

/// One step of the differential script. Every variant is non-blocking
/// in single-threaded use, so the script runs to completion on both
/// cores deterministically.
#[derive(Debug, Clone)]
enum Op {
    TryPush(u32),
    TryPop,
    PushMany(u8),
    TryPopAll,
    PopWaitAll(u8),
    Len,
    Close,
    Drain,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The vendored prop_oneof is unweighted, so pushes/pops repeat to
    // bias the script toward traffic over rare structural ops.
    prop_oneof![
        any::<u32>().prop_map(Op::TryPush),
        any::<u32>().prop_map(Op::TryPush),
        any::<u32>().prop_map(Op::TryPush),
        Just(Op::TryPop),
        Just(Op::TryPop),
        (1u8..20).prop_map(Op::PushMany),
        (1u8..20).prop_map(Op::PushMany),
        Just(Op::TryPopAll),
        (1u8..20).prop_map(Op::PopWaitAll),
        Just(Op::Len),
        Just(Op::Close),
        Just(Op::Drain),
    ]
}

/// Applies `ops` to a queue of the given core and returns the full
/// observable trace, one rendered entry per op (results, popped values,
/// handed-back remainders), terminated by the robust stats fields.
///
/// `pop_waits` is deliberately excluded from the trace: the mutex core
/// counts a pop that finds the queue empty *and closed* as a wait
/// episode before noticing the close, while the ring core answers
/// `Closed` from the fast path without ever parking. That divergence is
/// an accounting artifact of "how often did we park", not an observable
/// queue semantic, so the oracle does not pin it.
macro_rules! run_script {
    ($Q:ident, $ops:expr) => {{
        let q: $Q<u32> = $Q::new("diff", 5);
        let mut trace: Vec<String> = Vec::new();
        let mut seq = 0u32;
        for op in $ops {
            match op {
                Op::TryPush(v) => trace.push(format!("try_push: {:?}", q.try_push(*v))),
                Op::TryPop => trace.push(format!("try_pop: {:?}", q.try_pop())),
                Op::PushMany(n) => {
                    // push_many blocks when the burst exceeds the free
                    // space, which would deadlock a single-threaded
                    // script — clamp to what fits while the queue is
                    // open. Once closed, any size returns immediately
                    // with the remainder handed back, so the close
                    // semantics still get exercised unclamped.
                    let n = if q.is_closed() {
                        usize::from(*n)
                    } else {
                        usize::from(*n).min(q.capacity() - q.len())
                    };
                    let base = seq;
                    seq += n as u32;
                    trace.push(format!("push_many({n}): {:?}", q.push_many(base..seq)));
                }
                Op::TryPopAll => {
                    let mut buf = Vec::new();
                    let r = q.try_pop_all(&mut buf);
                    trace.push(format!("try_pop_all: {:?} {:?}", r, buf));
                }
                Op::PopWaitAll(max) => {
                    let mut buf = Vec::new();
                    let r = q.pop_wait_all(&mut buf, usize::from(*max), Duration::ZERO);
                    trace.push(format!("pop_wait_all: {:?} {:?}", r, buf));
                }
                Op::Len => trace.push(format!("len: {} empty: {}", q.len(), q.is_empty())),
                Op::Close => {
                    q.close();
                    trace.push(format!("close: closed={}", q.is_closed()));
                }
                Op::Drain => trace.push(format!("drain: {:?}", q.drain())),
            }
        }
        let s = q.stats();
        trace.push(format!(
            "stats: pushed={} popped={} push_waits={} depth={} hw={} cap={}",
            s.pushed, s.popped, s.push_waits, s.depth, s.high_watermark, s.capacity
        ));
        trace
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Differential oracle: the ring core and the mutex core produce an
    /// identical observable trace for any single-threaded op script —
    /// same results, same values in the same order, same remainders on
    /// close, same robust stats.
    #[test]
    fn scripted_trace_identical_across_cores(
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let ring = run_script!(BoundedQueue, ops.iter());
        let mutex = run_script!(MutexBoundedQueue, ops.iter());
        prop_assert_eq!(&ring, &mutex, "ring vs mutex trace diverged");
    }
}
