//! Property tests for the bounded queue: conservation (nothing lost,
//! nothing duplicated) and per-producer FIFO order under concurrency.

use std::collections::HashMap;
use std::thread;

use proptest::prelude::*;

use smr_queue::BoundedQueue;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn conservation_and_per_producer_fifo(
        producers in 1usize..5,
        per_producer in 1usize..200,
        capacity in 1usize..64,
    ) {
        let q: BoundedQueue<(usize, usize)> = BoundedQueue::new("prop", capacity);
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let q = q.clone();
                thread::spawn(move || {
                    for i in 0..per_producer {
                        q.push((p, i)).unwrap();
                    }
                })
            })
            .collect();
        let consumer = {
            let q = q.clone();
            thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        q.close();
        let got = consumer.join().unwrap();
        // Conservation.
        prop_assert_eq!(got.len(), producers * per_producer);
        // Per-producer FIFO.
        let mut next: HashMap<usize, usize> = HashMap::new();
        for (p, i) in got {
            let expected = next.entry(p).or_insert(0);
            prop_assert_eq!(i, *expected, "producer {}'s items in order", p);
            *expected += 1;
        }
    }

    #[test]
    fn drain_plus_pops_account_for_everything(
        pushes in 0usize..100,
        pops in 0usize..100,
    ) {
        let q: BoundedQueue<usize> = BoundedQueue::new("prop", 128);
        for i in 0..pushes {
            q.push(i).unwrap();
        }
        let mut popped = 0;
        for _ in 0..pops.min(pushes) {
            if q.try_pop().is_ok() {
                popped += 1;
            }
        }
        let drained = q.drain().len();
        prop_assert_eq!(popped + drained, pushes);
        prop_assert!(q.is_empty());
    }
}
