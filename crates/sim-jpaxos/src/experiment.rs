//! Experiment harness: builds a full simulated deployment, runs it, and
//! harvests every metric the paper reports.

use std::cell::Cell;
use std::rc::Rc;

use smr_sim::{NetConfig, NodeId, Sim, SimNet, SimThreadState};
use smr_types::{ClusterConfig, ReplicaId};

use crate::costs::{ClusterProfile, CostModel};
use crate::model::{spawn_client, spawn_replica, ClientPlacement, ReplicaParams, SimMsg};

/// Full description of one experimental run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Hardware profile (parapluie / edel).
    pub profile: ClusterProfile,
    /// Number of replicas.
    pub n: usize,
    /// Cores enabled per replica (the x-axis of Figs. 4–7).
    pub cores: usize,
    /// Pipelining window `WND` (Fig. 10 / Table I).
    pub wnd: usize,
    /// Maximum batch size `BSZ` in bytes (Fig. 11 / Table III).
    pub bsz: usize,
    /// ClientIO threads (Fig. 9). 0 = auto (the paper's tuned optimum).
    pub cio_threads: usize,
    /// Total closed-loop clients (1800 in the paper).
    pub clients: usize,
    /// Client machines (6 in the paper).
    pub client_nodes: usize,
    /// Request payload bytes (128 in the paper).
    pub request_payload: usize,
    /// Virtual run length.
    pub duration_ns: u64,
    /// Ignored prefix (the paper drops the first 10%).
    pub warmup_ns: u64,
    /// Softirq channels (1 = stock 2.6.26; >1 = RSS/RPS footnote).
    pub rss_channels: usize,
    /// Stage costs.
    pub costs: CostModel,
    /// Random seed.
    pub seed: u64,
    /// Inject kernel ping probes (Table II).
    pub ping_probes: bool,
}

impl ExperimentConfig {
    /// The paper's default parapluie setup for `n` replicas at `cores`.
    pub fn parapluie(n: usize, cores: usize) -> Self {
        ExperimentConfig {
            profile: ClusterProfile::parapluie(),
            n,
            cores,
            wnd: 10,
            bsz: 1300,
            cio_threads: 0,
            clients: 1800,
            client_nodes: 6,
            request_payload: 128,
            duration_ns: 4_000_000_000,
            warmup_ns: 1_000_000_000,
            rss_channels: 1,
            costs: CostModel::default(),
            seed: 42,
            ping_probes: false,
        }
    }

    /// The paper's edel setup.
    pub fn edel(n: usize, cores: usize) -> Self {
        ExperimentConfig {
            profile: ClusterProfile::edel(),
            ..ExperimentConfig::parapluie(n, cores)
        }
    }

    /// The ClientIO pool size in force: explicit, or the per-core tuned
    /// optimum the paper used ("usually between 3 and 6").
    pub fn effective_cio_threads(&self) -> usize {
        if self.cio_threads > 0 {
            self.cio_threads
        } else {
            (self.cores / 2).clamp(1, 5)
        }
    }
}

/// Per-thread profile fractions over the measured window.
#[derive(Debug, Clone)]
pub struct ThreadReport {
    /// Thread name (paper nomenclature: `ClientIO-k`, `Batcher`,
    /// `Protocol`, `ReplicaIOSnd-q`, `ReplicaIORcv-q`, `Replica`).
    pub name: String,
    /// Fraction of run time executing.
    pub busy: f64,
    /// Fraction blocked on locks.
    pub blocked: f64,
    /// Fraction parked on empty/full queues.
    pub waiting: f64,
    /// Everything else (ready-but-unscheduled, sleeping, I/O).
    pub other: f64,
}

/// Aggregates for one replica.
#[derive(Debug, Clone)]
pub struct ReplicaReport {
    /// "Replica 1".. in paper order (the leader is the last one).
    pub name: String,
    /// Total CPU utilization as % of one core (Figs. 5a/7).
    pub cpu_util_pct: f64,
    /// Total blocked time as % of the run (Figs. 5b/7).
    pub blocked_pct: f64,
    /// Per-thread breakdown (Fig. 8).
    pub threads: Vec<ThreadReport>,
}

/// Everything one run produces.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Requests per second over the measured window.
    pub throughput_rps: f64,
    /// Mean propose→decide latency at the leader (Fig. 10b/11b), ms.
    pub instance_latency_ms: f64,
    /// Mean requests per decided batch (Fig. 10c).
    pub avg_batch_requests: f64,
    /// Mean decided batch size in KB (Fig. 11c).
    pub avg_batch_kb: f64,
    /// Mean parallel ballots in execution (Fig. 10d / Table I).
    pub avg_window: f64,
    /// RequestQueue occupancy mean ± std-error (Table I).
    pub request_queue: (f64, f64),
    /// ProposalQueue occupancy (Table I).
    pub proposal_queue: (f64, f64),
    /// DispatcherQueue occupancy (Table I).
    pub dispatcher_queue: (f64, f64),
    /// Per-replica CPU/contention/thread reports; index 0 = "Replica 1",
    /// the leader is the highest index (paper convention).
    pub replicas: Vec<ReplicaReport>,
    /// Leader NIC rates over the measured window (Table III).
    pub leader_tx_pps: f64,
    /// Received packets/s at the leader.
    pub leader_rx_pps: f64,
    /// Outgoing MB/s at the leader.
    pub leader_tx_mbps: f64,
    /// Incoming MB/s at the leader.
    pub leader_rx_mbps: f64,
    /// Mean ping RTT leader↔follower during the run, ms (Table II).
    pub ping_leader_ms: Option<f64>,
    /// Mean ping RTT follower↔follower during the run, ms (Table II).
    pub ping_followers_ms: Option<f64>,
}

/// Runs one experiment to completion and returns its metrics.
pub fn run_experiment(cfg: &ExperimentConfig) -> ExperimentResult {
    let sim = Sim::new(cfg.seed);
    let ctx = sim.ctx();
    let cio_threads = cfg.effective_cio_threads();

    // Nodes: replicas then client machines.
    let replica_nodes: Vec<NodeId> = (0..cfg.n)
        .map(|i| sim.add_node(format!("replica-{i}"), cfg.cores, cfg.profile.speed))
        .collect();
    let client_nodes: Vec<NodeId> = (0..cfg.client_nodes)
        .map(|i| sim.add_node(format!("clients-{i}"), 24, 1.0))
        .collect();

    // Kernel/NIC model. Beyond ~8 threads hammering the socket layer the
    // pre-2.6.35 kernel's shared structures bounce between cores and the
    // per-packet cost inflates (§VI-C, [14]) — the Fig. 9 dome.
    let bounce = 1.0 + 0.02 * (cio_threads as f64 - 8.0).max(0.0);
    let mut configs: Vec<NetConfig> = Vec::new();
    for _ in 0..cfg.n {
        let mut nc = cfg.profile.net;
        nc.per_packet_ns = (nc.per_packet_ns as f64 * bounce) as u64;
        nc.rss_channels = cfg.rss_channels;
        configs.push(nc);
    }
    for _ in 0..cfg.client_nodes {
        // Client machines run the same kernel but split load six ways;
        // give them RSS-like headroom so they are never the bottleneck
        // (the paper's client machines were not).
        let mut nc = cfg.profile.net;
        nc.rss_channels = 4;
        configs.push(nc);
    }
    let net: SimNet<SimMsg> = SimNet::new(&ctx, configs);

    // Shared measurement gates.
    let measuring = Rc::new(Cell::new(false));
    let completed = Rc::new(Cell::new(0u64));

    // Clients table: client i lives on client node i % M.
    let placements: Rc<Vec<ClientPlacement>> = Rc::new(
        (0..cfg.clients)
            .map(|i| ClientPlacement {
                node: client_nodes[i % cfg.client_nodes],
                port: crate::model::client_port(i),
            })
            .collect(),
    );

    let cluster_config = ClusterConfig::builder(cfg.n)
        .window(cfg.wnd)
        .batch_bytes(cfg.bsz)
        .build()
        .expect("valid sim cluster config");

    // Replicas. Replica 0 leads view 0 and never fails in these runs.
    let mut handles = Vec::new();
    for i in 0..cfg.n {
        let params = ReplicaParams {
            me: ReplicaId(i as u16),
            node: replica_nodes[i],
            replica_nodes: replica_nodes.clone(),
            config: cluster_config.clone(),
            costs: cfg.costs,
            cio_threads,
            clients: Rc::clone(&placements),
            serves_clients: i == 0,
            measuring: Rc::clone(&measuring),
        };
        handles.push(spawn_replica(&ctx, &net, params));
    }

    // Clients.
    for i in 0..cfg.clients {
        spawn_client(
            &ctx,
            &net,
            i,
            placements[i].node,
            replica_nodes[0],
            cio_threads,
            cfg.request_payload,
            Rc::clone(&completed),
            Rc::clone(&measuring),
        );
    }

    // Optional kernel ping probes (Table II).
    let ping_leader: Rc<std::cell::RefCell<Vec<u64>>> =
        Rc::new(std::cell::RefCell::new(Vec::new()));
    let ping_followers: Rc<std::cell::RefCell<Vec<u64>>> =
        Rc::new(std::cell::RefCell::new(Vec::new()));
    if cfg.ping_probes && cfg.n >= 3 {
        let ctx2 = ctx.clone();
        let net2 = net.clone();
        let leader = replica_nodes[0];
        let f1 = replica_nodes[1];
        let f2 = replica_nodes[2];
        let pl = Rc::clone(&ping_leader);
        let pf = Rc::clone(&ping_followers);
        let measuring2 = Rc::clone(&measuring);
        // Probes run from a dedicated observer machine, like the paper's
        // ping from cluster nodes.
        let observer = client_nodes[0];
        ctx.spawn(observer, "ping-probe", async move {
            loop {
                ctx2.sleep(200_000_000).await;
                if !measuring2.get() {
                    continue;
                }
                let a = net2.ping(observer, leader);
                let b = net2.ping(f1, f2);
                ctx2.sleep(150_000_000).await;
                if let Some(rtt) = a.get() {
                    pl.borrow_mut().push(rtt);
                }
                if let Some(rtt) = b.get() {
                    pf.borrow_mut().push(rtt);
                }
            }
        });
    }

    // Run: warmup, snapshot, measure, harvest.
    sim.run_until(cfg.warmup_ns);
    measuring.set(true);
    let profiles_before = sim.thread_profiles();
    let leader_net_before = net.stats(replica_nodes[0]);
    sim.run_until(cfg.duration_ns);
    let profiles_after = sim.thread_profiles();
    let leader_net_after = net.stats(replica_nodes[0]);

    let window_ns = (cfg.duration_ns - cfg.warmup_ns) as f64;
    let window_s = window_ns / 1e9;
    let throughput_rps = completed.get() as f64 / window_s;

    // Per-replica reports, presented in the paper's order: followers
    // first, leader last ("Replica 3"/"Replica 5" is the leader).
    let mut replicas = Vec::new();
    let order: Vec<usize> = (1..cfg.n).chain([0]).collect();
    for (pos, &ri) in order.iter().enumerate() {
        let node = replica_nodes[ri];
        let mut threads = Vec::new();
        let mut busy_ns = 0.0;
        let mut blocked_ns = 0.0;
        for (before, after) in profiles_before.iter().zip(&profiles_after) {
            if after.node != node {
                continue;
            }
            let d = |s: SimThreadState| (after.ns[s as usize] - before.ns[s as usize]) as f64;
            busy_ns += d(SimThreadState::Busy);
            blocked_ns += d(SimThreadState::Blocked);
            threads.push(ThreadReport {
                name: after.name.clone(),
                busy: d(SimThreadState::Busy) / window_ns,
                blocked: d(SimThreadState::Blocked) / window_ns,
                waiting: d(SimThreadState::Waiting) / window_ns,
                other: d(SimThreadState::Other) / window_ns,
            });
        }
        replicas.push(ReplicaReport {
            name: format!("Replica {}", pos + 1),
            cpu_util_pct: 100.0 * busy_ns / window_ns,
            blocked_pct: 100.0 * blocked_ns / window_ns,
            threads,
        });
    }

    let leader = &handles[0];
    let stats = leader.proto_stats.borrow();
    let mean_ms = |ns: f64| ns / 1e6;
    let tx_pkts = (leader_net_after.tx_packets - leader_net_before.tx_packets) as f64;
    let rx_pkts = (leader_net_after.rx_packets - leader_net_before.rx_packets) as f64;
    let tx_bytes = (leader_net_after.tx_bytes - leader_net_before.tx_bytes) as f64;
    let rx_bytes = (leader_net_after.rx_bytes - leader_net_before.rx_bytes) as f64;

    let avg = |v: &std::cell::RefCell<Vec<u64>>| {
        let v = v.borrow();
        if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<u64>() as f64 / v.len() as f64 / 1e6)
        }
    };

    ExperimentResult {
        throughput_rps,
        instance_latency_ms: mean_ms(stats.instance_latency_ns.mean()),
        avg_batch_requests: stats.batch_requests.mean(),
        avg_batch_kb: stats.batch_bytes.mean() / 1024.0,
        avg_window: stats.window.mean(),
        request_queue: leader.request_q.occupancy_stats(),
        proposal_queue: leader.proposal_q.occupancy_stats(),
        dispatcher_queue: leader.dispatcher_q.occupancy_stats(),
        replicas,
        leader_tx_pps: tx_pkts / window_s,
        leader_rx_pps: rx_pkts / window_s,
        leader_tx_mbps: tx_bytes / window_s / 1e6,
        leader_rx_mbps: rx_bytes / window_s / 1e6,
        ping_leader_ms: avg(&ping_leader),
        ping_followers_ms: avg(&ping_followers),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(n: usize, cores: usize) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::parapluie(n, cores);
        cfg.clients = 200;
        cfg.duration_ns = 400_000_000;
        cfg.warmup_ns = 100_000_000;
        cfg
    }

    #[test]
    fn small_run_produces_throughput() {
        let r = run_experiment(&quick(3, 4));
        assert!(r.throughput_rps > 5_000.0, "got {}", r.throughput_rps);
        assert!(r.avg_batch_requests >= 1.0);
        assert_eq!(r.replicas.len(), 3);
    }

    #[test]
    fn more_cores_means_more_throughput() {
        let t1 = run_experiment(&quick(3, 1)).throughput_rps;
        let t8 = run_experiment(&quick(3, 8)).throughput_rps;
        assert!(t8 > 1.5 * t1, "scaling: {t1} -> {t8}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_experiment(&quick(3, 2)).throughput_rps;
        let b = run_experiment(&quick(3, 2)).throughput_rps;
        assert_eq!(a, b);
    }

    #[test]
    fn leader_report_is_last_and_busiest() {
        let r = run_experiment(&quick(3, 4));
        let leader = r.replicas.last().unwrap();
        let follower = &r.replicas[0];
        assert!(
            leader.cpu_util_pct > follower.cpu_util_pct,
            "leader works hardest"
        );
        let names: Vec<&str> = leader.threads.iter().map(|t| t.name.as_str()).collect();
        assert!(names.contains(&"Protocol"));
        assert!(names.contains(&"Batcher"));
        assert!(names.contains(&"Replica"));
    }

    #[test]
    fn window_respected() {
        let mut cfg = quick(3, 8);
        cfg.wnd = 5;
        let r = run_experiment(&cfg);
        assert!(
            r.avg_window <= 5.05,
            "window bounded by WND: {}",
            r.avg_window
        );
    }
}
