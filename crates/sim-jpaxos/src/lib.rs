//! The JPaxos threading architecture expressed on the simulation kernel.
//!
//! This crate reproduces the paper's evaluation setup: the exact thread
//! ensemble of Fig. 3 (ClientIO pool, Batcher, Protocol, ReplicaIO
//! sender/receiver pairs, ServiceManager), the same inter-module bounded
//! queues, 1800 closed-loop clients on six machines, and the Grid5000
//! cluster profiles (24-core *parapluie*, 8-core *edel*). The protocol
//! logic is the **same** [`smr_paxos::PaxosReplica`] state machine the
//! real threaded runtime uses — only the substrate (threads, queues,
//! clocks, NICs) is simulated.
//!
//! The cost model ([`CostModel`]) assigns CPU time to each stage; its
//! calibration rationale is documented field by field. We do not claim
//! absolute-number fidelity to the paper's hardware — EXPERIMENTS.md
//! records paper-vs-measured for every figure — but the shapes (scaling
//! knees, plateau causes, contention signatures) are reproduced.
//!
//! # Examples
//!
//! ```
//! use smr_sim_jpaxos::{ExperimentConfig, run_experiment};
//!
//! let mut config = ExperimentConfig::parapluie(3, 4);
//! config.clients = 120;
//! config.warmup_ns = 100_000_000; // short demonstration run
//! config.duration_ns = 300_000_000;
//! let result = run_experiment(&config);
//! assert!(result.throughput_rps > 0.0);
//! ```

mod costs;
mod experiment;
mod model;

pub use costs::{ClusterProfile, CostModel};
pub use experiment::{
    run_experiment, ExperimentConfig, ExperimentResult, ReplicaReport, ThreadReport,
};
