//! The calibrated cost model: where CPU time goes in a JPaxos replica.
//!
//! Calibration targets, all from the paper (parapluie, n=3, 128-byte
//! requests, BSZ=1300 ⇒ 8 requests/batch):
//!
//! * 1-core throughput ≈ 15K requests/s (100K peak / 6.5 speedup,
//!   Fig. 4);
//! * at peak (~100K/s): ClientIO threads 30–60% busy each (Fig. 8b),
//!   Batcher ~50% ("can exceed 50% of a CPU", §V-C1), ServiceManager
//!   ("Replica") the busiest single thread (~60%, Fig. 8b/8d),
//!   ReplicaIO under 40% (§VI-B);
//! * ClientIO = 1 thread caps at ~40K/s (Fig. 9a) ⇒ ~25µs per request
//!   on the client path;
//! * leader softirq saturates at ~300K frames/s combined (Table III) ⇒
//!   3.35µs per frame.

use smr_sim::NetConfig;

/// Per-stage CPU costs in nanoseconds (at the parapluie reference core;
/// node speed scales them).
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// ClientIO: read + decode + reply-cache probe, per request.
    pub client_io_request_ns: u64,
    /// ClientIO: encode + write reply, per request.
    pub client_io_reply_ns: u64,
    /// Batcher: copy a request into the batch under construction.
    pub batcher_per_request_ns: u64,
    /// Batcher: close a batch and enqueue the proposal.
    pub batcher_per_batch_ns: u64,
    /// Protocol: start a ballot (assign slot, build Propose), per batch.
    pub protocol_per_batch_ns: u64,
    /// Protocol: handle one incoming protocol message.
    pub protocol_per_msg_ns: u64,
    /// ServiceManager: execute one request + cache update + reply
    /// hand-over.
    pub service_per_request_ns: u64,
    /// ReplicaIOSnd: serialize + write one replica message.
    pub replica_io_snd_ns: u64,
    /// ReplicaIORcv: read + deserialize one replica message.
    pub replica_io_rcv_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            client_io_request_ns: 15_000,
            client_io_reply_ns: 10_000,
            batcher_per_request_ns: 4_000,
            batcher_per_batch_ns: 5_000,
            protocol_per_batch_ns: 18_000,
            protocol_per_msg_ns: 5_000,
            service_per_request_ns: 7_000,
            replica_io_snd_ns: 12_000,
            replica_io_rcv_ns: 10_000,
        }
    }
}

/// A hardware profile: one of the paper's two Grid5000 clusters.
#[derive(Debug, Clone, Copy)]
pub struct ClusterProfile {
    /// Cluster name as in the paper.
    pub name: &'static str,
    /// Physical cores per node.
    pub max_cores: usize,
    /// Per-core speed relative to the parapluie reference (AMD Opteron
    /// 6164 HE @ 1.7GHz).
    pub speed: f64,
    /// Kernel/NIC model (Linux 2.6.26 on GbE for both clusters).
    pub net: NetConfig,
}

impl ClusterProfile {
    /// The 24-core AMD cluster (Rennes) — the main evaluation platform.
    pub fn parapluie() -> Self {
        ClusterProfile {
            name: "parapluie",
            max_cores: 24,
            speed: 1.0,
            net: NetConfig::default(),
        }
    }

    /// The 8-core Xeon cluster (Grenoble). Although its clock is higher,
    /// the paper's measured per-request cost is *larger* (1-core ≈ 11K/s
    /// vs ~15K/s; 80K at speedup 7) — we encode that measured ratio
    /// rather than the nominal GHz.
    pub fn edel() -> Self {
        ClusterProfile {
            name: "edel",
            max_cores: 8,
            speed: 0.62,
            net: NetConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_hit_headline_budgets() {
        let c = CostModel::default();
        // Client path ≈ 25µs ⇒ one ClientIO thread ⇒ ~40K/s (Fig. 9a).
        assert_eq!(c.client_io_request_ns + c.client_io_reply_ns, 25_000);
        // Leader-side total per request (batch of 8, n=3) ≈ 45µs:
        // the 1-core oversubscribed throughput lands near 15K/s.
        let per_batch = c.protocol_per_batch_ns
            + 2 * c.protocol_per_msg_ns
            + c.batcher_per_batch_ns
            + 2 * (c.replica_io_snd_ns + c.replica_io_rcv_ns);
        let per_req = c.client_io_request_ns
            + c.client_io_reply_ns
            + c.batcher_per_request_ns
            + c.service_per_request_ns
            + per_batch / 8;
        assert!(
            (40_000..52_000).contains(&per_req),
            "per-request budget: {per_req}"
        );
    }

    #[test]
    fn profiles_differ_as_measured() {
        let p = ClusterProfile::parapluie();
        let e = ClusterProfile::edel();
        assert_eq!(p.max_cores, 24);
        assert_eq!(e.max_cores, 8);
        assert!(
            e.speed < p.speed,
            "edel's measured per-request cost is higher"
        );
    }
}
