//! The simulated replica: the thread ensemble of Fig. 3 as sim tasks.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use smr_metrics::RunningStats;
use smr_paxos::{Action, BatchBuilder, Event, PaxosReplica, Target};
use smr_sim::{ConnId, Delivery, NodeId, Port, SimCtx, SimMutex, SimNet, SimQueue};
use smr_types::{ClientId, ClusterConfig, ReplicaId, RequestId, SeqNum};
use smr_wire::{Batch, Codec, ProtocolMsg, Request};

use crate::costs::CostModel;

/// Receiving port for protocol messages from replica `q`.
pub(crate) fn peer_port(q: ReplicaId) -> Port {
    100 + q.0 as u32
}

/// Receiving port of ClientIO thread `i` at the leader.
pub(crate) fn cio_port(i: usize) -> Port {
    200 + i as u32
}

/// Receiving port of client `idx` on its own machine.
pub(crate) fn client_port(idx: usize) -> Port {
    1_000 + idx as u32
}

/// Directed replica connection id (for ACK scoping and coalescing).
pub(crate) fn replica_conn(from: ReplicaId, to: ReplicaId) -> ConnId {
    1_000_000 + from.0 as u64 * 256 + to.0 as u64
}

/// Messages on the simulated wire (and the SM→ClientIO hand-over).
#[derive(Debug, Clone)]
pub(crate) enum SimMsg {
    /// Client → leader.
    Request(Request),
    /// Leader → client.
    Reply(RequestId),
    /// Replica ↔ replica.
    Proto(ProtocolMsg),
    /// ServiceManager → ClientIO (local hand-over, not on the wire).
    ReplyOut(RequestId),
}

/// DispatcherQueue items.
pub(crate) enum Dispatch {
    Msg(ReplicaId, ProtocolMsg),
    ProposalReady,
}

/// Wire size of a client request frame (payload + headers).
pub(crate) fn request_bytes(payload: usize) -> usize {
    payload + 29
}

/// Wire size of a reply frame (8-byte answer + headers).
pub(crate) const REPLY_BYTES: usize = 37;

/// Critical-section length of a blocking queue operation (JPaxos used
/// JDK `LinkedBlockingQueue`s: one lock acquisition + signal per op).
/// This is what puts the Batcher ~15% in `blocked` in Fig. 8 — it
/// contends with every ClientIO thread on the RequestQueue and with the
/// Protocol thread on the ProposalQueue.
const QUEUE_CS_NS: u64 = 800;

/// Protocol-level statistics collected at the leader's Protocol thread.
#[derive(Debug, Default)]
pub(crate) struct ProtoStats {
    pub batch_requests: RunningStats,
    pub batch_bytes: RunningStats,
    pub window: RunningStats,
    pub instance_latency_ns: RunningStats,
    pub decided_batches: u64,
}

/// Everything the experiment harness needs to observe one replica.
pub(crate) struct ReplicaHandles {
    pub request_q: SimQueue<Request>,
    pub proposal_q: SimQueue<Batch>,
    pub dispatcher_q: SimQueue<Dispatch>,
    pub proto_stats: Rc<RefCell<ProtoStats>>,
}

/// Where each client lives, indexed by client id (= connection id).
pub(crate) struct ClientPlacement {
    pub node: NodeId,
    pub port: Port,
}

pub(crate) struct ReplicaParams {
    pub me: ReplicaId,
    pub node: NodeId,
    pub replica_nodes: Vec<NodeId>,
    pub config: ClusterConfig,
    pub costs: CostModel,
    pub cio_threads: usize,
    /// Clients table (only the leader replies).
    pub clients: Rc<Vec<ClientPlacement>>,
    pub serves_clients: bool,
    /// Gate for statistics: set true after warmup.
    pub measuring: Rc<Cell<bool>>,
}

/// Spawns the full thread ensemble of one replica. Thread names match
/// the paper's per-thread profiles (Fig. 8).
pub(crate) fn spawn_replica(
    ctx: &SimCtx,
    net: &SimNet<SimMsg>,
    p: ReplicaParams,
) -> ReplicaHandles {
    let cfg = &p.config;
    let request_q = SimQueue::new(ctx, "RequestQueue", cfg.request_queue_capacity());
    let proposal_q = SimQueue::new(ctx, "ProposalQueue", cfg.proposal_queue_capacity());
    let dispatcher_q: SimQueue<Dispatch> =
        SimQueue::new(ctx, "DispatcherQueue", cfg.dispatcher_queue_capacity());
    let decision_q: SimQueue<(u64, Batch)> =
        SimQueue::new(ctx, "DecisionQueue", cfg.decision_queue_capacity());
    let send_qs: Vec<SimQueue<ProtocolMsg>> = (0..cfg.n())
        .map(|q| SimQueue::new(ctx, format!("SendQueue-{q}"), cfg.send_queue_capacity()))
        .collect();
    let cio_qs: Vec<SimQueue<Delivery<SimMsg>>> = (0..p.cio_threads)
        .map(|i| SimQueue::new(ctx, format!("CioQueue-{i}"), 1_000_000))
        .collect();
    let proto_stats = Rc::new(RefCell::new(ProtoStats::default()));
    // The two hot queue locks of the ReplicationCore boundary.
    let rq_lock = SimMutex::new(ctx);
    let pq_lock = SimMutex::new(ctx);

    for (i, q) in cio_qs.iter().enumerate() {
        net.bind(p.node, cio_port(i), q.clone());
    }

    // --- ClientIO pool (§V-A) ------------------------------------------
    for (i, cio_q) in cio_qs.iter().enumerate() {
        let ctx2 = ctx.clone();
        let q = cio_q.clone();
        let request_q = request_q.clone();
        let net = net.clone();
        let clients = Rc::clone(&p.clients);
        let costs = p.costs;
        let node = p.node;
        let rq_lock = rq_lock.clone();
        ctx.spawn(p.node, format!("ClientIO-{i}"), async move {
            while let Some(d) = q.pop().await {
                match d.payload {
                    SimMsg::Request(req) => {
                        ctx2.cpu(costs.client_io_request_ns).await;
                        {
                            let _g = rq_lock.lock().await;
                            ctx2.cpu(QUEUE_CS_NS).await;
                        }
                        if !request_q.push(req).await {
                            return;
                        }
                    }
                    SimMsg::ReplyOut(id) => {
                        ctx2.cpu(costs.client_io_reply_ns).await;
                        let idx = id.client.0 as usize;
                        let place = &clients[idx];
                        net.send(
                            node,
                            place.node,
                            id.client.0,
                            place.port,
                            SimMsg::Reply(id),
                            REPLY_BYTES,
                            false,
                        );
                    }
                    _ => {}
                }
            }
        });
    }

    // --- Batcher (§V-C1) -----------------------------------------------
    {
        let ctx2 = ctx.clone();
        let request_q = request_q.clone();
        let proposal_q = proposal_q.clone();
        let dispatcher_q = dispatcher_q.clone();
        let costs = p.costs;
        let policy = cfg.batch();
        let rq_lock = rq_lock.clone();
        let pq_lock = pq_lock.clone();
        ctx.spawn(p.node, "Batcher", async move {
            let mut builder = BatchBuilder::new(policy);
            while let Some(req) = request_q.pop().await {
                {
                    let _g = rq_lock.lock().await;
                    ctx2.cpu(QUEUE_CS_NS).await;
                }
                ctx2.cpu(costs.batcher_per_request_ns).await;
                let mut ready = builder.push(req, ctx2.now());
                // Idle flush stands in for the batch timeout: at light
                // load a partial batch ships as soon as no request is
                // waiting.
                if ready.is_none() && request_q.is_empty() {
                    ready = builder.flush();
                }
                if let Some(batch) = ready {
                    ctx2.cpu(costs.batcher_per_batch_ns).await;
                    {
                        let _g = pq_lock.lock().await;
                        ctx2.cpu(QUEUE_CS_NS).await;
                    }
                    if !proposal_q.push(batch).await {
                        return;
                    }
                    if !dispatcher_q.push(Dispatch::ProposalReady).await {
                        return;
                    }
                }
            }
        });
    }

    // --- Protocol (§V-C2) ----------------------------------------------
    {
        let ctx2 = ctx.clone();
        let me = p.me;
        let config = cfg.clone();
        let proposal_q = proposal_q.clone();
        let dispatcher_q = dispatcher_q.clone();
        let decision_q = decision_q.clone();
        let send_qs = send_qs.clone();
        let costs = p.costs;
        let stats = Rc::clone(&proto_stats);
        let measuring = Rc::clone(&p.measuring);
        let pq_lock = pq_lock.clone();
        ctx.spawn(p.node, "Protocol", async move {
            let mut core = PaxosReplica::new(me, config.clone());
            let mut actions = Vec::new();
            let mut propose_times: HashMap<u64, u64> = HashMap::new();
            core.handle(Event::Init, 0, &mut actions);
            route_actions(
                &ctx2,
                &core,
                &mut actions,
                &send_qs,
                &decision_q,
                &stats,
                &measuring,
                &mut propose_times,
                me,
                &config,
            )
            .await;
            while let Some(item) = dispatcher_q.pop().await {
                match item {
                    Dispatch::Msg(from, msg) => {
                        ctx2.cpu(costs.protocol_per_msg_ns).await;
                        core.handle(Event::Message { from, msg }, ctx2.now(), &mut actions);
                        route_actions(
                            &ctx2,
                            &core,
                            &mut actions,
                            &send_qs,
                            &decision_q,
                            &stats,
                            &measuring,
                            &mut propose_times,
                            me,
                            &config,
                        )
                        .await;
                    }
                    Dispatch::ProposalReady => {}
                }
                // Start new ballots while the window has room (§V-C2:
                // taking a prepared batch is one queue pop).
                while core.window_open() {
                    let Some(batch) = proposal_q.try_pop() else {
                        break;
                    };
                    {
                        let _g = pq_lock.lock().await;
                        ctx2.cpu(QUEUE_CS_NS).await;
                    }
                    ctx2.cpu(costs.protocol_per_batch_ns).await;
                    core.handle(Event::Proposal(batch), ctx2.now(), &mut actions);
                    route_actions(
                        &ctx2,
                        &core,
                        &mut actions,
                        &send_qs,
                        &decision_q,
                        &stats,
                        &measuring,
                        &mut propose_times,
                        me,
                        &config,
                    )
                    .await;
                }
            }
        });
    }

    // --- ReplicaIO (§V-B): a sender and a receiver per peer -------------
    for q_id in cfg.peers(p.me) {
        // Sender.
        {
            let ctx2 = ctx.clone();
            let send_q = send_qs[q_id.index()].clone();
            let net = net.clone();
            let costs = p.costs;
            let me = p.me;
            let my_node = p.node;
            let peer_node = p.replica_nodes[q_id.index()];
            ctx.spawn(p.node, format!("ReplicaIOSnd-{}", q_id.0), async move {
                while let Some(msg) = send_q.pop().await {
                    ctx2.cpu(costs.replica_io_snd_ns).await;
                    let bytes = msg.encoded_len() + 8;
                    net.send(
                        my_node,
                        peer_node,
                        replica_conn(me, q_id),
                        peer_port(me),
                        SimMsg::Proto(msg),
                        bytes,
                        true,
                    );
                }
            });
        }
        // Receiver.
        {
            let ctx2 = ctx.clone();
            let ep: SimQueue<Delivery<SimMsg>> =
                SimQueue::new(ctx, format!("PeerIn-{}", q_id.0), 1_000_000);
            net.bind(p.node, peer_port(q_id), ep.clone());
            let dispatcher_q = dispatcher_q.clone();
            let costs = p.costs;
            ctx.spawn(p.node, format!("ReplicaIORcv-{}", q_id.0), async move {
                while let Some(d) = ep.pop().await {
                    if let SimMsg::Proto(msg) = d.payload {
                        ctx2.cpu(costs.replica_io_rcv_ns).await;
                        if !dispatcher_q.push(Dispatch::Msg(q_id, msg)).await {
                            return;
                        }
                    }
                }
            });
        }
    }

    // --- ServiceManager (§V-D), the paper's "Replica" thread ------------
    {
        let ctx2 = ctx.clone();
        let decision_q = decision_q.clone();
        let cio_qs = cio_qs.clone();
        let costs = p.costs;
        let serves = p.serves_clients;
        let node = p.node;
        let k = p.cio_threads;
        ctx.spawn(p.node, "Replica", async move {
            while let Some((_slot, batch)) = decision_q.pop().await {
                for req in batch.requests {
                    ctx2.cpu(costs.service_per_request_ns).await;
                    if serves {
                        let cio = req.id.client.0 as usize % k;
                        let _ = cio_qs[cio].try_push(Delivery {
                            src: node,
                            conn: req.id.client.0,
                            payload: SimMsg::ReplyOut(req.id),
                        });
                    }
                }
            }
        });
    }

    ReplicaHandles {
        request_q,
        proposal_q,
        dispatcher_q,
        proto_stats,
    }
}

/// Routes the protocol core's actions to queues and records leader-side
/// statistics.
#[allow(clippy::too_many_arguments)]
async fn route_actions(
    ctx: &SimCtx,
    core: &PaxosReplica,
    actions: &mut Vec<Action>,
    send_qs: &[SimQueue<ProtocolMsg>],
    decision_q: &SimQueue<(u64, Batch)>,
    stats: &Rc<RefCell<ProtoStats>>,
    measuring: &Rc<Cell<bool>>,
    propose_times: &mut HashMap<u64, u64>,
    me: ReplicaId,
    config: &ClusterConfig,
) {
    let drained: Vec<Action> = std::mem::take(actions);
    for action in drained {
        match action {
            Action::Send { to, msg } => {
                if let ProtocolMsg::Propose { slot, .. } = &msg {
                    propose_times.insert(slot.0, ctx.now());
                    if measuring.get() {
                        stats.borrow_mut().window.record(core.in_flight() as f64);
                    }
                }
                match to {
                    Target::All => {
                        for q in config.peers(me) {
                            let _ = send_qs[q.index()].try_push(msg.clone());
                        }
                    }
                    Target::One(q) => {
                        let _ = send_qs[q.index()].try_push(msg);
                    }
                }
            }
            Action::Deliver { slot, batch } => {
                if measuring.get() {
                    let mut s = stats.borrow_mut();
                    s.decided_batches += 1;
                    s.batch_requests.record(batch.len() as f64);
                    s.batch_bytes.record(batch.encoded_len() as f64);
                    if let Some(t0) = propose_times.remove(&slot.0) {
                        s.instance_latency_ns.record((ctx.now() - t0) as f64);
                    }
                } else {
                    propose_times.remove(&slot.0);
                }
                decision_q.push((slot.0, batch)).await;
            }
            // No failures are injected in the performance experiments, so
            // retransmission, view-change bookkeeping, and snapshot
            // transfer are not modeled.
            Action::ScheduleRetransmit { .. }
            | Action::CancelRetransmit { .. }
            | Action::CancelAllRetransmits
            | Action::LeaderChanged { .. }
            | Action::SendSnapshot { .. }
            | Action::InstallSnapshot { .. } => {}
        }
    }
}

/// Spawns one closed-loop client (§VI: persistent connection, next
/// request only after the previous reply).
#[allow(clippy::too_many_arguments)]
pub(crate) fn spawn_client(
    ctx: &SimCtx,
    net: &SimNet<SimMsg>,
    idx: usize,
    my_node: NodeId,
    leader_node: NodeId,
    cio_threads: usize,
    payload: usize,
    completed: Rc<Cell<u64>>,
    measuring: Rc<Cell<bool>>,
) {
    let inbox: SimQueue<Delivery<SimMsg>> = SimQueue::new(ctx, format!("client-{idx}"), 16);
    net.bind(my_node, client_port(idx), inbox.clone());
    let ctx2 = ctx.clone();
    let net = net.clone();
    ctx.spawn(my_node, format!("client-{idx}"), async move {
        // Stagger start-up to avoid a synchronized thundering herd.
        ctx2.sleep((idx as u64 * 37_373) % 3_000_000).await;
        let mut seq = 0u64;
        loop {
            let req = Request::new(
                RequestId::new(ClientId(idx as u64), SeqNum(seq)),
                vec![0u8; payload],
            );
            seq += 1;
            net.send(
                my_node,
                leader_node,
                idx as u64,
                cio_port(idx % cio_threads),
                SimMsg::Request(req),
                request_bytes(payload),
                false,
            );
            let Some(delivery) = inbox.pop().await else {
                return;
            };
            if let SimMsg::Reply(id) = delivery.payload {
                debug_assert_eq!(id.client.0, idx as u64, "reply routed to its client");
                if measuring.get() {
                    completed.set(completed.get() + 1);
                }
            }
        }
    });
}
