//! Transport traits implemented by the in-memory and TCP backends.

use std::time::Duration;

use smr_types::ReplicaId;

use crate::error::NetError;

/// Replica-to-replica fabric seen from one replica.
///
/// One ReplicaIOSnd thread calls [`ReplicaNetwork::send_to`] per peer, and
/// one ReplicaIORcv thread blocks in [`ReplicaNetwork::recv_from`] per
/// peer (§V-B: two threads per socket).
pub trait ReplicaNetwork: Send + Sync + 'static {
    /// Sends one frame to `peer`, blocking for flow control.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] after shutdown; [`NetError::Io`] when the link
    /// is irrecoverably broken (the caller may retry later — transports
    /// reconnect internally where possible).
    fn send_to(&self, peer: ReplicaId, frame: Vec<u8>) -> Result<(), NetError>;

    /// Blocks until the next frame from `peer` arrives.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] after shutdown.
    fn recv_from(&self, peer: ReplicaId) -> Result<Vec<u8>, NetError>;

    /// Shuts the fabric down, unblocking all senders and receivers.
    fn shutdown(&self);
}

/// Server side of one client connection, owned by a ClientIO thread.
pub trait ClientConn: Send + 'static {
    /// Non-blocking read of the next complete frame, if any.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] when the client disconnected.
    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, NetError>;

    /// Sends one frame to the client.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] when the client disconnected.
    fn send(&mut self, frame: Vec<u8>) -> Result<(), NetError>;

    /// Stable identifier for logs.
    fn id(&self) -> u64;

    /// Raw file descriptor for readiness registration, when the transport
    /// is backed by one (TCP). `None` means the connection must be polled
    /// (in-memory transport) — the evented loop scans such connections on
    /// its tick instead of registering them with epoll.
    fn raw_fd(&self) -> Option<i32> {
        None
    }

    /// Queues one frame into the connection's outbound buffer without
    /// blocking. Returns `Ok(Some(frame))` — handing the frame back —
    /// when more than `max_buffered` bytes are already queued (slow
    /// reader); the caller decides whether to stash it or drop the
    /// connection. The default forwards to the blocking
    /// [`ClientConn::send`], which is correct for transports without an
    /// outbound buffer.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] when the client disconnected.
    fn try_send(
        &mut self,
        frame: Vec<u8>,
        max_buffered: usize,
    ) -> Result<Option<Vec<u8>>, NetError> {
        let _ = max_buffered;
        self.send(frame).map(|()| None)
    }

    /// Flushes buffered outbound bytes without blocking. `Ok(true)` means
    /// the buffer drained completely; `Ok(false)` means the socket went
    /// `WouldBlock` and the caller should re-arm writable interest.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] / [`NetError::Io`] when the connection broke.
    fn flush_out(&mut self) -> Result<bool, NetError> {
        Ok(true)
    }

    /// Whether outbound bytes remain buffered (i.e. the last
    /// [`ClientConn::flush_out`] returned `Ok(false)`).
    fn has_backlog(&self) -> bool {
        false
    }
}

/// Accepts incoming client connections (driven by the acceptor thread,
/// which hands connections to ClientIO threads round-robin, §V-A).
pub trait ClientListener: Send + 'static {
    /// Waits up to `timeout` for a connection.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] after shutdown.
    fn accept_timeout(&self, timeout: Duration) -> Result<Option<Box<dyn ClientConn>>, NetError>;

    /// Raw file descriptor of the listening socket, when there is one, so
    /// an evented acceptor can park on readiness instead of sleep-polling.
    fn raw_fd(&self) -> Option<i32> {
        None
    }

    /// Accepts one pending connection without blocking.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] after shutdown.
    fn try_accept(&self) -> Result<Option<Box<dyn ClientConn>>, NetError> {
        self.accept_timeout(Duration::ZERO)
    }
}

/// Client side of a connection to one replica.
pub trait ClientEndpoint: Send + 'static {
    /// Sends one frame to the replica.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] / [`NetError::Io`] when the connection broke.
    fn send(&mut self, frame: Vec<u8>) -> Result<(), NetError>;

    /// Waits up to `timeout` for the next frame from the replica.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] when the connection broke.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, NetError>;
}
