//! In-process transport with fault injection.
//!
//! A [`MemoryHub`] owns the full fabric of a simulated deployment: an
//! `n × n` matrix of bounded frame queues for replica links, plus
//! per-connection queue pairs for clients. Tests use the fault-injection
//! switches ([`MemoryHub::set_loss`], [`MemoryHub::partition`],
//! [`MemoryHub::isolate`]) to exercise retransmission, failure detection
//! and catch-up.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use smr_queue::{BoundedQueue, PopError, PushError};
use smr_types::ReplicaId;

use crate::error::NetError;
use crate::traits::{ClientConn, ClientEndpoint, ClientListener, ReplicaNetwork};

/// Capacity of each directed replica link, in frames. Roughly models the
/// socket buffer: when full, senders block (TCP backpressure analogue).
const LINK_CAPACITY: usize = 4096;

/// Capacity of each client connection direction, in frames.
const CLIENT_CAPACITY: usize = 64;

struct Fault {
    /// Probability in [0,1] that a replica-link frame is dropped.
    loss: Mutex<f64>,
    /// `blocked[a][b]` — frames from a to b are silently dropped.
    blocked: Vec<Vec<AtomicBool>>,
    rng: Mutex<SmallRng>,
}

struct HubInner {
    n: usize,
    /// `links[from][to]`: directed frame queues between replicas.
    links: Vec<Vec<BoundedQueue<Vec<u8>>>>,
    /// Pending client connections per replica.
    pending_conns: Vec<BoundedQueue<MemoryServerConn>>,
    fault: Fault,
    next_conn_id: AtomicU64,
    shutdown: AtomicBool,
}

/// The in-memory fabric of one simulated deployment.
///
/// # Examples
///
/// ```
/// use smr_net::memory::MemoryHub;
/// use smr_net::ReplicaNetwork;
/// use smr_types::ReplicaId;
///
/// let hub = MemoryHub::new(3, 42);
/// let net0 = hub.replica_network(ReplicaId(0));
/// let net1 = hub.replica_network(ReplicaId(1));
/// net0.send_to(ReplicaId(1), b"hello".to_vec())?;
/// assert_eq!(net1.recv_from(ReplicaId(0))?, b"hello");
/// # Ok::<(), smr_net::NetError>(())
/// ```
#[derive(Clone)]
pub struct MemoryHub {
    inner: Arc<HubInner>,
}

impl std::fmt::Debug for MemoryHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryHub")
            .field("n", &self.inner.n)
            .finish()
    }
}

impl MemoryHub {
    /// Creates a fabric for `n` replicas; `seed` drives loss injection.
    pub fn new(n: usize, seed: u64) -> Self {
        let links = (0..n)
            .map(|from| {
                (0..n)
                    .map(|to| BoundedQueue::new(format!("link-{from}-{to}"), LINK_CAPACITY))
                    .collect()
            })
            .collect();
        let pending_conns = (0..n)
            .map(|r| BoundedQueue::new(format!("accept-{r}"), 1024))
            .collect();
        let blocked = (0..n)
            .map(|_| (0..n).map(|_| AtomicBool::new(false)).collect())
            .collect();
        MemoryHub {
            inner: Arc::new(HubInner {
                n,
                links,
                pending_conns,
                fault: Fault {
                    loss: Mutex::new(0.0),
                    blocked,
                    rng: Mutex::new(SmallRng::seed_from_u64(seed)),
                },
                next_conn_id: AtomicU64::new(1),
                shutdown: AtomicBool::new(false),
            }),
        }
    }

    /// Number of replicas.
    pub fn n(&self) -> usize {
        self.inner.n
    }

    /// The [`ReplicaNetwork`] endpoint of `replica`.
    ///
    /// Endpoints are detachable: shutting one down (what a [`Replica`]
    /// does when it stops) only detaches that endpoint — the hub's links
    /// stay open, so a fresh endpoint from this method reattaches the
    /// same replica id. That is what lets a test kill a replica and
    /// restart it in place to exercise crash recovery.
    ///
    /// [`Replica`]: https://docs.rs/smr-core
    pub fn replica_network(&self, replica: ReplicaId) -> MemoryReplicaNetwork {
        assert!(replica.index() < self.inner.n, "unknown replica {replica}");
        MemoryReplicaNetwork {
            hub: self.clone(),
            me: replica,
            detached: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The [`ClientListener`] of `replica`.
    pub fn client_listener(&self, replica: ReplicaId) -> MemoryClientListener {
        assert!(replica.index() < self.inner.n, "unknown replica {replica}");
        MemoryClientListener {
            hub: self.clone(),
            replica,
        }
    }

    /// Opens a client connection to `replica`, returning the client-side
    /// endpoint.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] after shutdown.
    pub fn connect_client(&self, replica: ReplicaId) -> Result<MemoryClientEndpoint, NetError> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(NetError::Closed);
        }
        let id = self.inner.next_conn_id.fetch_add(1, Ordering::Relaxed);
        let c2s = BoundedQueue::new(format!("conn-{id}-c2s"), CLIENT_CAPACITY);
        let s2c = BoundedQueue::new(format!("conn-{id}-s2c"), CLIENT_CAPACITY);
        let server = MemoryServerConn {
            id,
            incoming: c2s.clone(),
            outgoing: s2c.clone(),
        };
        self.inner.pending_conns[replica.index()]
            .push(server)
            .map_err(|_| NetError::Closed)?;
        Ok(MemoryClientEndpoint {
            outgoing: c2s,
            incoming: s2c,
        })
    }

    /// Sets the probability that any replica-link frame is dropped.
    pub fn set_loss(&self, probability: f64) {
        *self.inner.fault.loss.lock() = probability.clamp(0.0, 1.0);
    }

    /// Blocks (or unblocks) both directions between `a` and `b`.
    pub fn partition(&self, a: ReplicaId, b: ReplicaId, blocked: bool) {
        self.inner.fault.blocked[a.index()][b.index()].store(blocked, Ordering::Release);
        self.inner.fault.blocked[b.index()][a.index()].store(blocked, Ordering::Release);
    }

    /// Blocks (or unblocks) all links to and from `replica` — a crash
    /// from the network's point of view.
    pub fn isolate(&self, replica: ReplicaId, blocked: bool) {
        for other in 0..self.inner.n {
            if other != replica.index() {
                self.inner.fault.blocked[replica.index()][other].store(blocked, Ordering::Release);
                self.inner.fault.blocked[other][replica.index()].store(blocked, Ordering::Release);
            }
        }
    }

    /// Closes every link touching `replica` and its client accept queue —
    /// a permanent, replica-local shutdown (the rest of the fabric keeps
    /// working).
    pub fn close_replica(&self, replica: ReplicaId) {
        for other in 0..self.inner.n {
            self.inner.links[replica.index()][other].close();
            self.inner.links[other][replica.index()].close();
        }
        self.inner.pending_conns[replica.index()].close();
    }

    /// Shuts the whole fabric down.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        for row in &self.inner.links {
            for q in row {
                q.close();
            }
        }
        for q in &self.inner.pending_conns {
            q.close();
        }
    }

    fn should_drop(&self, from: ReplicaId, to: ReplicaId) -> bool {
        if self.inner.fault.blocked[from.index()][to.index()].load(Ordering::Acquire) {
            return true;
        }
        let loss = *self.inner.fault.loss.lock();
        loss > 0.0 && self.inner.fault.rng.lock().gen_bool(loss)
    }
}

/// One replica's endpoint into a [`MemoryHub`].
///
/// Cloning shares the detach flag: shutting down any clone detaches them
/// all. Get a fresh endpoint from [`MemoryHub::replica_network`] to
/// rejoin the fabric after a simulated crash.
#[derive(Clone)]
pub struct MemoryReplicaNetwork {
    hub: MemoryHub,
    me: ReplicaId,
    /// Set on shutdown: this endpoint stops sending and receiving, but
    /// the hub's links stay open for a successor endpoint.
    detached: Arc<AtomicBool>,
}

impl std::fmt::Debug for MemoryReplicaNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryReplicaNetwork")
            .field("me", &self.me)
            .finish()
    }
}

impl ReplicaNetwork for MemoryReplicaNetwork {
    fn send_to(&self, peer: ReplicaId, frame: Vec<u8>) -> Result<(), NetError> {
        if self.detached.load(Ordering::Acquire) {
            return Err(NetError::Closed);
        }
        if self.hub.should_drop(self.me, peer) {
            return Ok(()); // lost in transit, like UDP under a dead link
        }
        match self.hub.inner.links[self.me.index()][peer.index()].push(frame) {
            Ok(()) => Ok(()),
            Err(PushError::Closed(_)) | Err(PushError::Full(_)) => Err(NetError::Closed),
        }
    }

    fn recv_from(&self, peer: ReplicaId) -> Result<Vec<u8>, NetError> {
        // Poll so a detach (replica-local shutdown) unblocks the
        // receiver threads without closing the shared link queues.
        loop {
            if self.detached.load(Ordering::Acquire) {
                return Err(NetError::Closed);
            }
            match self.hub.inner.links[peer.index()][self.me.index()]
                .pop_timeout(Duration::from_millis(25))
            {
                Ok(frame) => return Ok(frame),
                Err(PopError::Empty) => continue,
                Err(PopError::Closed) => return Err(NetError::Closed),
            }
        }
    }

    fn shutdown(&self) {
        self.detached.store(true, Ordering::Release);
    }
}

/// Server side of an in-memory client connection.
#[derive(Debug)]
pub struct MemoryServerConn {
    id: u64,
    incoming: BoundedQueue<Vec<u8>>,
    outgoing: BoundedQueue<Vec<u8>>,
}

impl ClientConn for MemoryServerConn {
    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, NetError> {
        match self.incoming.try_pop() {
            Ok(frame) => Ok(Some(frame)),
            Err(PopError::Empty) => Ok(None),
            Err(PopError::Closed) => Err(NetError::Closed),
        }
    }

    fn send(&mut self, frame: Vec<u8>) -> Result<(), NetError> {
        self.outgoing.push(frame).map_err(|_| NetError::Closed)
    }

    fn id(&self) -> u64 {
        self.id
    }

    fn try_send(
        &mut self,
        frame: Vec<u8>,
        _max_buffered: usize,
    ) -> Result<Option<Vec<u8>>, NetError> {
        // The bounded queue is the outbound buffer: `Full` is the
        // slow-reader signal (a blocking `send` here would stall the
        // whole evented loop on one unread client).
        match self.outgoing.try_push(frame) {
            Ok(()) => Ok(None),
            Err(PushError::Full(frame)) => Ok(Some(frame)),
            Err(PushError::Closed(_)) => Err(NetError::Closed),
        }
    }
}

/// Listener handing out the server halves of client connections.
#[derive(Debug)]
pub struct MemoryClientListener {
    hub: MemoryHub,
    replica: ReplicaId,
}

impl ClientListener for MemoryClientListener {
    fn accept_timeout(&self, timeout: Duration) -> Result<Option<Box<dyn ClientConn>>, NetError> {
        match self.hub.inner.pending_conns[self.replica.index()].pop_timeout(timeout) {
            Ok(conn) => Ok(Some(Box::new(conn))),
            Err(PopError::Empty) => Ok(None),
            Err(PopError::Closed) => Err(NetError::Closed),
        }
    }
}

/// Client side of an in-memory connection.
#[derive(Debug)]
pub struct MemoryClientEndpoint {
    outgoing: BoundedQueue<Vec<u8>>,
    incoming: BoundedQueue<Vec<u8>>,
}

impl ClientEndpoint for MemoryClientEndpoint {
    fn send(&mut self, frame: Vec<u8>) -> Result<(), NetError> {
        self.outgoing.push(frame).map_err(|_| NetError::Closed)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, NetError> {
        match self.incoming.pop_timeout(timeout) {
            Ok(frame) => Ok(Some(frame)),
            Err(PopError::Empty) => Ok(None),
            Err(PopError::Closed) => Err(NetError::Closed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_travel_between_replicas() {
        let hub = MemoryHub::new(3, 1);
        let n0 = hub.replica_network(ReplicaId(0));
        let n2 = hub.replica_network(ReplicaId(2));
        n0.send_to(ReplicaId(2), vec![1, 2, 3]).unwrap();
        assert_eq!(n2.recv_from(ReplicaId(0)).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn links_are_directed_and_fifo() {
        let hub = MemoryHub::new(2, 1);
        let n0 = hub.replica_network(ReplicaId(0));
        let n1 = hub.replica_network(ReplicaId(1));
        n0.send_to(ReplicaId(1), vec![1]).unwrap();
        n0.send_to(ReplicaId(1), vec![2]).unwrap();
        assert_eq!(n1.recv_from(ReplicaId(0)).unwrap(), vec![1]);
        assert_eq!(n1.recv_from(ReplicaId(0)).unwrap(), vec![2]);
    }

    #[test]
    fn partition_drops_frames() {
        let hub = MemoryHub::new(2, 1);
        let n0 = hub.replica_network(ReplicaId(0));
        hub.partition(ReplicaId(0), ReplicaId(1), true);
        n0.send_to(ReplicaId(1), vec![9]).unwrap();
        hub.partition(ReplicaId(0), ReplicaId(1), false);
        n0.send_to(ReplicaId(1), vec![10]).unwrap();
        let n1 = hub.replica_network(ReplicaId(1));
        assert_eq!(
            n1.recv_from(ReplicaId(0)).unwrap(),
            vec![10],
            "partitioned frame was lost"
        );
    }

    #[test]
    fn full_loss_drops_everything() {
        let hub = MemoryHub::new(2, 7);
        hub.set_loss(1.0);
        let n0 = hub.replica_network(ReplicaId(0));
        for _ in 0..10 {
            n0.send_to(ReplicaId(1), vec![0]).unwrap();
        }
        assert_eq!(hub.inner.links[0][1].len(), 0);
    }

    #[test]
    fn client_roundtrip() {
        let hub = MemoryHub::new(1, 1);
        let listener = hub.client_listener(ReplicaId(0));
        let mut client = hub.connect_client(ReplicaId(0)).unwrap();
        client.send(b"ping".to_vec()).unwrap();
        let mut server = listener
            .accept_timeout(Duration::from_secs(1))
            .unwrap()
            .expect("connection pending");
        assert_eq!(server.try_recv().unwrap().unwrap(), b"ping");
        server.send(b"pong".to_vec()).unwrap();
        assert_eq!(
            client
                .recv_timeout(Duration::from_secs(1))
                .unwrap()
                .unwrap(),
            b"pong"
        );
    }

    #[test]
    fn accept_times_out_when_no_clients() {
        let hub = MemoryHub::new(1, 1);
        let listener = hub.client_listener(ReplicaId(0));
        assert!(listener
            .accept_timeout(Duration::from_millis(10))
            .unwrap()
            .is_none());
    }

    #[test]
    fn shutdown_unblocks_receivers() {
        let hub = MemoryHub::new(2, 1);
        let n1 = hub.replica_network(ReplicaId(1));
        let h = std::thread::spawn(move || n1.recv_from(ReplicaId(0)));
        std::thread::sleep(Duration::from_millis(20));
        hub.shutdown();
        assert_eq!(h.join().unwrap(), Err(NetError::Closed));
    }

    #[test]
    fn detached_endpoint_can_be_replaced() {
        let hub = MemoryHub::new(2, 1);
        let n0 = hub.replica_network(ReplicaId(0));
        let n1 = hub.replica_network(ReplicaId(1));
        n0.send_to(ReplicaId(1), vec![1]).unwrap();
        n1.shutdown();
        assert_eq!(n1.recv_from(ReplicaId(0)), Err(NetError::Closed));
        assert_eq!(n1.send_to(ReplicaId(0), vec![2]), Err(NetError::Closed));
        // A successor endpoint rejoins the fabric and still sees the
        // frame that was in flight when the old endpoint detached.
        let n1b = hub.replica_network(ReplicaId(1));
        assert_eq!(n1b.recv_from(ReplicaId(0)).unwrap(), vec![1]);
    }

    #[test]
    fn isolate_blocks_both_directions() {
        let hub = MemoryHub::new(3, 1);
        hub.isolate(ReplicaId(1), true);
        let n0 = hub.replica_network(ReplicaId(0));
        n0.send_to(ReplicaId(1), vec![1]).unwrap();
        assert_eq!(hub.inner.links[0][1].len(), 0);
        // 0 <-> 2 unaffected.
        n0.send_to(ReplicaId(2), vec![2]).unwrap();
        assert_eq!(hub.inner.links[0][2].len(), 1);
    }
}
