//! Transport errors.

use std::error::Error;
use std::fmt;

/// Error produced by transport operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The endpoint or fabric has been shut down.
    Closed,
    /// An I/O failure (connection refused/reset, etc.).
    Io(String),
    /// A frame failed validation (length/CRC).
    BadFrame(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Closed => f.write_str("transport closed"),
            NetError::Io(m) => write!(f, "transport i/o error: {m}"),
            NetError::BadFrame(m) => write!(f, "bad frame: {m}"),
        }
    }
}

impl Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_meaningful() {
        assert_eq!(NetError::Closed.to_string(), "transport closed");
        assert!(NetError::Io("refused".into())
            .to_string()
            .contains("refused"));
    }

    #[test]
    fn io_error_converts() {
        let e: NetError = std::io::Error::new(std::io::ErrorKind::ConnectionReset, "reset").into();
        assert!(matches!(e, NetError::Io(_)));
    }
}
