//! Transport substrate: how replicas talk to each other and to clients.
//!
//! Two implementations of the same traits:
//!
//! * [`memory`] — an in-process fabric with fault injection (loss,
//!   partitions, delay), used by tests, examples, and benches. It mirrors
//!   the paper's deployment shape: a small number of replica↔replica
//!   links carrying bulk traffic, and many client connections carrying
//!   small messages.
//! * [`tcp`] — a real TCP transport with length-prefixed CRC framing
//!   ([`smr_wire::Frame`]), reconnection, and the connection roles of
//!   §V-B: one socket per peer per direction, a reader and a writer
//!   thread each (the threads live in `smr-core`; this crate provides the
//!   blocking endpoints they drive).
//!
//! The traits deliberately expose *blocking* per-peer operations
//! ([`ReplicaNetwork::send_to`] / [`ReplicaNetwork::recv_from`]) because
//! the paper's ReplicaIO module is built from dedicated blocking
//! send/receive threads per peer, and *non-blocking* reads for client
//! connections ([`ClientConn::try_recv`]) because the ClientIO module
//! multiplexes thousands of connections over a small thread pool.

mod error;
pub mod memory;
pub mod tcp;
mod traits;

pub use error::NetError;
pub use traits::{ClientConn, ClientEndpoint, ClientListener, ReplicaNetwork};
