//! TCP transport: framed streams, reconnection, and non-blocking client
//! connections.
//!
//! Connection topology (mirrors §V-B): every replica maintains one
//! *outgoing* socket per peer, used exclusively for sending; the matching
//! incoming socket on the peer side is used exclusively for receiving. A
//! short handshake frame carrying the sender's replica id binds an
//! accepted socket to its peer slot. Broken links reconnect lazily on the
//! next send.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::BytesMut;
use parking_lot::{Condvar, Mutex};

use smr_types::ReplicaId;
use smr_wire::{Frame, FrameDecoder};

use crate::error::NetError;
use crate::traits::{ClientConn, ClientEndpoint, ClientListener, ReplicaNetwork};

/// How long accept/read loops sleep between shutdown checks.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Handshake frame: `b"SMR" + replica id` (little-endian u16).
fn handshake_frame(me: ReplicaId) -> Vec<u8> {
    let mut payload = b"SMR".to_vec();
    payload.extend_from_slice(&me.0.to_le_bytes());
    Frame::encode_to_vec(&payload)
}

fn parse_handshake(payload: &[u8]) -> Option<ReplicaId> {
    if payload.len() == 5 && &payload[..3] == b"SMR" {
        Some(ReplicaId(u16::from_le_bytes([payload[3], payload[4]])))
    } else {
        None
    }
}

struct PeerSlot {
    /// Incoming stream + its decoder, installed by the acceptor.
    incoming: Mutex<Option<(TcpStream, FrameDecoder)>>,
    incoming_ready: Condvar,
    /// Outgoing stream, owned by the sender.
    outgoing: Mutex<Option<TcpStream>>,
}

impl Default for PeerSlot {
    fn default() -> Self {
        PeerSlot {
            incoming: Mutex::new(None),
            incoming_ready: Condvar::new(),
            outgoing: Mutex::new(None),
        }
    }
}

struct TcpNetInner {
    me: ReplicaId,
    peers: Vec<SocketAddr>,
    slots: HashMap<u16, PeerSlot>,
    shutdown: AtomicBool,
    /// Encoded once at bind so reconnect attempts don't allocate.
    handshake: Vec<u8>,
}

/// TCP implementation of [`ReplicaNetwork`].
///
/// Binds `peers[me]` and spawns an acceptor thread that routes incoming
/// sockets to per-peer slots based on the handshake.
pub struct TcpReplicaNetwork {
    inner: Arc<TcpNetInner>,
    acceptor: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for TcpReplicaNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpReplicaNetwork")
            .field("me", &self.inner.me)
            .finish()
    }
}

impl TcpReplicaNetwork {
    /// Binds the local address and starts accepting peer connections.
    ///
    /// `peers[i]` is the replica-to-replica address of replica `i`.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if binding fails.
    pub fn bind(me: ReplicaId, peers: Vec<SocketAddr>) -> Result<Self, NetError> {
        let listener = TcpListener::bind(peers[me.index()])?;
        listener.set_nonblocking(true)?;
        let slots = (0..peers.len() as u16)
            .filter(|r| *r != me.0)
            .map(|r| (r, PeerSlot::default()))
            .collect();
        let inner = Arc::new(TcpNetInner {
            me,
            peers,
            slots,
            shutdown: AtomicBool::new(false),
            handshake: handshake_frame(me),
        });
        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("tcp-acceptor-{me}"))
                .spawn(move || accept_loop(&inner, listener))
                .expect("spawn acceptor")
        };
        Ok(TcpReplicaNetwork {
            inner,
            acceptor: Mutex::new(Some(acceptor)),
        })
    }
}

/// Parks a nonblocking listener on epoll readiness. Returns `None` when
/// epoll is unavailable (non-Linux), in which case callers sleep-poll.
struct AcceptParker {
    poll: mio::Poll,
    events: mio::Events,
}

impl AcceptParker {
    #[cfg(unix)]
    fn new(listener: &TcpListener) -> Option<AcceptParker> {
        if !mio::SUPPORTED {
            return None;
        }
        let poll = mio::Poll::new().ok()?;
        let fd = listener.as_raw_fd();
        poll.registry()
            .register(
                &mut mio::unix::SourceFd(&fd),
                mio::Token(0),
                mio::Interest::READABLE,
            )
            .ok()?;
        Some(AcceptParker {
            poll,
            events: mio::Events::with_capacity(4),
        })
    }

    #[cfg(not(unix))]
    fn new(_listener: &TcpListener) -> Option<AcceptParker> {
        None
    }

    /// Blocks until the listener is readable or `timeout` elapses. The
    /// registration is edge-triggered, so callers must accept to
    /// `WouldBlock` before parking again.
    fn park(&mut self, timeout: Duration) {
        let _ = self.poll.poll(&mut self.events, Some(timeout));
    }
}

fn accept_loop(inner: &TcpNetInner, listener: TcpListener) {
    // Bounded park so the shutdown flag is still observed promptly even
    // though nothing rings an eventfd for it.
    const PARK_INTERVAL: Duration = Duration::from_millis(100);
    let mut parker = AcceptParker::new(&listener);
    while !inner.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((mut stream, _addr)) => {
                // Read the handshake (blocking with a deadline).
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                let mut decoder = FrameDecoder::new();
                let mut buf = [0u8; 256];
                let peer = loop {
                    match stream.read(&mut buf) {
                        Ok(0) => break None,
                        Ok(n) => {
                            decoder.extend(&buf[..n]);
                            match decoder.next_frame() {
                                Ok(Some(p)) => break parse_handshake(&p),
                                Ok(None) => continue,
                                Err(_) => break None,
                            }
                        }
                        Err(_) => break None,
                    }
                };
                if let Some(peer) = peer {
                    if let Some(slot) = inner.slots.get(&peer.0) {
                        let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
                        let _ = stream.set_nodelay(true);
                        *slot.incoming.lock() = Some((stream, decoder));
                        slot.incoming_ready.notify_all();
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => match parker.as_mut() {
                Some(p) => p.park(PARK_INTERVAL),
                None => std::thread::sleep(POLL_INTERVAL),
            },
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

impl ReplicaNetwork for TcpReplicaNetwork {
    fn send_to(&self, peer: ReplicaId, frame: Vec<u8>) -> Result<(), NetError> {
        let inner = &self.inner;
        if inner.shutdown.load(Ordering::Acquire) {
            return Err(NetError::Closed);
        }
        let slot = inner.slots.get(&peer.0).ok_or(NetError::Closed)?;
        let mut outgoing = slot.outgoing.lock();
        if outgoing.is_none() {
            // (Re)connect lazily, with a handshake.
            match TcpStream::connect_timeout(&inner.peers[peer.index()], Duration::from_millis(500))
            {
                Ok(mut stream) => {
                    stream.set_nodelay(true).ok();
                    if stream.write_all(&inner.handshake).is_ok() {
                        *outgoing = Some(stream);
                    }
                }
                Err(e) => return Err(NetError::Io(format!("connect {peer}: {e}"))),
            }
        }
        let wire = Frame::encode_to_vec(&frame);
        if let Some(stream) = outgoing.as_mut() {
            if let Err(e) = stream.write_all(&wire) {
                *outgoing = None;
                return Err(NetError::Io(format!("send to {peer}: {e}")));
            }
            Ok(())
        } else {
            Err(NetError::Io(format!("no connection to {peer}")))
        }
    }

    fn recv_from(&self, peer: ReplicaId) -> Result<Vec<u8>, NetError> {
        let inner = &self.inner;
        let slot = inner.slots.get(&peer.0).ok_or(NetError::Closed)?;
        let mut buf = [0u8; 64 * 1024];
        loop {
            if inner.shutdown.load(Ordering::Acquire) {
                return Err(NetError::Closed);
            }
            let mut guard = slot.incoming.lock();
            match guard.as_mut() {
                None => {
                    // Wait for the acceptor to install a stream.
                    slot.incoming_ready.wait_for(&mut guard, POLL_INTERVAL);
                }
                Some((stream, decoder)) => {
                    if let Some(frame) = decoder
                        .next_frame()
                        .map_err(|e| NetError::BadFrame(e.to_string()))?
                    {
                        return Ok(frame);
                    }
                    match stream.read(&mut buf) {
                        Ok(0) => *guard = None, // peer closed; await reconnect
                        Ok(n) => decoder.extend(&buf[..n]),
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut => {}
                        Err(_) => *guard = None,
                    }
                }
            }
        }
    }

    fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        for slot in self.inner.slots.values() {
            slot.incoming_ready.notify_all();
            *slot.incoming.lock() = None;
            *slot.outgoing.lock() = None;
        }
        if let Some(h) = self.acceptor.lock().take() {
            let _ = h.join();
        }
    }
}

static NEXT_CONN_ID: AtomicU64 = AtomicU64::new(1);

/// Server side of a TCP client connection (non-blocking reads, buffered
/// coalesced writes).
#[derive(Debug)]
pub struct TcpServerConn {
    id: u64,
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Framed bytes queued for the client but not yet written. Filled by
    /// `try_send` (one append per reply), drained by `flush_out` (one
    /// write burst per batch) — that asymmetry is the reply coalescing.
    out: BytesMut,
    closed: bool,
}

impl TcpServerConn {
    /// Writes as much of `out` as the socket accepts right now.
    /// `Ok(true)` = drained, `Ok(false)` = `WouldBlock` with a backlog.
    fn flush_pending(&mut self) -> Result<bool, NetError> {
        while !self.out.is_empty() {
            match self.stream.write(&self.out) {
                Ok(0) => {
                    self.closed = true;
                    return Err(NetError::Io("write returned 0".into()));
                }
                Ok(n) => {
                    let _ = self.out.split_to(n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    self.closed = true;
                    return Err(NetError::Io(e.to_string()));
                }
            }
        }
        Ok(true)
    }
}

impl ClientConn for TcpServerConn {
    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, NetError> {
        if self.closed {
            return Err(NetError::Closed);
        }
        // Loop until a complete frame or a read that proves the kernel
        // buffer is drained (`WouldBlock`). Returning `None` on a partial
        // frame while bytes remain buffered would wedge an edge-triggered
        // caller: no new readable edge fires for bytes already received.
        let mut buf = [0u8; 16 * 1024];
        loop {
            if let Some(frame) = self
                .decoder
                .next_frame()
                .map_err(|e| NetError::BadFrame(e.to_string()))?
            {
                return Ok(Some(frame));
            }
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.closed = true;
                    return Err(NetError::Closed);
                }
                Ok(n) => self.decoder.extend(&buf[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    self.closed = true;
                    return Err(NetError::Io(e.to_string()));
                }
            }
        }
    }

    fn send(&mut self, frame: Vec<u8>) -> Result<(), NetError> {
        if self.closed {
            return Err(NetError::Closed);
        }
        Frame::encode(&frame, &mut self.out);
        // The socket is non-blocking (shared mode with reads); spin
        // briefly on WouldBlock. Replies are small, so this is rare.
        let start = Instant::now();
        loop {
            if self.flush_pending()? {
                return Ok(());
            }
            if start.elapsed() > Duration::from_secs(5) {
                return Err(NetError::Io("send stalled".into()));
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    fn id(&self) -> u64 {
        self.id
    }

    fn raw_fd(&self) -> Option<i32> {
        #[cfg(unix)]
        {
            Some(self.stream.as_raw_fd())
        }
        #[cfg(not(unix))]
        {
            None
        }
    }

    fn try_send(
        &mut self,
        frame: Vec<u8>,
        max_buffered: usize,
    ) -> Result<Option<Vec<u8>>, NetError> {
        if self.closed {
            return Err(NetError::Closed);
        }
        if self.out.len() >= max_buffered {
            // One opportunistic flush before declaring the reader slow.
            self.flush_pending()?;
            if self.out.len() >= max_buffered {
                return Ok(Some(frame));
            }
        }
        Frame::encode(&frame, &mut self.out);
        Ok(None)
    }

    fn flush_out(&mut self) -> Result<bool, NetError> {
        if self.closed {
            return Err(NetError::Closed);
        }
        self.flush_pending()
    }

    fn has_backlog(&self) -> bool {
        !self.out.is_empty()
    }
}

/// TCP implementation of [`ClientListener`].
#[derive(Debug)]
pub struct TcpClientListener {
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
}

impl TcpClientListener {
    /// Binds the client-facing address of a replica.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if binding fails.
    pub fn bind(addr: SocketAddr) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(TcpClientListener {
            listener,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The locally bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if the socket is gone.
    pub fn local_addr(&self) -> Result<SocketAddr, NetError> {
        Ok(self.listener.local_addr()?)
    }

    /// Signals shutdown to accept loops.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }
}

impl ClientListener for TcpClientListener {
    fn accept_timeout(&self, timeout: Duration) -> Result<Option<Box<dyn ClientConn>>, NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return Err(NetError::Closed);
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(true)?;
                    stream.set_nodelay(true)?;
                    return Ok(Some(Box::new(TcpServerConn {
                        id: NEXT_CONN_ID.fetch_add(1, Ordering::Relaxed),
                        stream,
                        decoder: FrameDecoder::new(),
                        out: BytesMut::new(),
                        closed: false,
                    })));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Ok(None);
                    }
                    std::thread::sleep(POLL_INTERVAL.min(timeout));
                }
                Err(e) => return Err(NetError::Io(e.to_string())),
            }
        }
    }

    fn raw_fd(&self) -> Option<i32> {
        #[cfg(unix)]
        {
            Some(self.listener.as_raw_fd())
        }
        #[cfg(not(unix))]
        {
            None
        }
    }
}

/// Client side of a TCP connection to a replica.
#[derive(Debug)]
pub struct TcpClientEndpoint {
    stream: TcpStream,
    decoder: FrameDecoder,
}

impl TcpClientEndpoint {
    /// Connects to a replica's client-facing address.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] on connection failure.
    pub fn connect(addr: SocketAddr) -> Result<Self, NetError> {
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
        stream.set_nodelay(true)?;
        Ok(TcpClientEndpoint {
            stream,
            decoder: FrameDecoder::new(),
        })
    }
}

impl ClientEndpoint for TcpClientEndpoint {
    fn send(&mut self, frame: Vec<u8>) -> Result<(), NetError> {
        let wire = Frame::encode_to_vec(&frame);
        self.stream.write_all(&wire)?;
        Ok(())
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, NetError> {
        if let Some(frame) = self
            .decoder
            .next_frame()
            .map_err(|e| NetError::BadFrame(e.to_string()))?
        {
            return Ok(Some(frame));
        }
        let deadline = Instant::now() + timeout;
        let mut buf = [0u8; 16 * 1024];
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Ok(None);
            }
            self.stream.set_read_timeout(Some(remaining))?;
            match self.stream.read(&mut buf) {
                Ok(0) => return Err(NetError::Closed),
                Ok(n) => {
                    self.decoder.extend(&buf[..n]);
                    if let Some(frame) = self
                        .decoder
                        .next_frame()
                        .map_err(|e| NetError::BadFrame(e.to_string()))?
                    {
                        return Ok(Some(frame));
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None)
                }
                Err(e) => return Err(NetError::Io(e.to_string())),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn free_addrs(n: usize) -> Vec<SocketAddr> {
        (0..n)
            .map(|_| {
                let l = TcpListener::bind("127.0.0.1:0").unwrap();
                l.local_addr().unwrap()
            })
            .collect()
    }

    #[test]
    fn replica_frames_roundtrip() {
        let addrs = free_addrs(2);
        let n0 = TcpReplicaNetwork::bind(ReplicaId(0), addrs.clone()).unwrap();
        let n1 = TcpReplicaNetwork::bind(ReplicaId(1), addrs).unwrap();
        // Retry the first send: the acceptor may still be warming up.
        let mut sent = false;
        for _ in 0..50 {
            if n0.send_to(ReplicaId(1), b"hello peer".to_vec()).is_ok() {
                sent = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(sent);
        assert_eq!(n1.recv_from(ReplicaId(0)).unwrap(), b"hello peer");
        n0.shutdown();
        n1.shutdown();
    }

    #[test]
    fn client_roundtrip_over_tcp() {
        let listener = TcpClientListener::bind("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpClientEndpoint::connect(addr).unwrap();
        client.send(b"request".to_vec()).unwrap();
        let mut conn = listener
            .accept_timeout(Duration::from_secs(2))
            .unwrap()
            .expect("client connected");
        // try_recv is non-blocking; poll briefly.
        let mut got = None;
        for _ in 0..100 {
            if let Some(f) = conn.try_recv().unwrap() {
                got = Some(f);
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(got.unwrap(), b"request");
        conn.send(b"reply".to_vec()).unwrap();
        assert_eq!(
            client
                .recv_timeout(Duration::from_secs(2))
                .unwrap()
                .unwrap(),
            b"reply"
        );
    }

    #[test]
    fn recv_timeout_expires() {
        let listener = TcpClientListener::bind("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpClientEndpoint::connect(addr).unwrap();
        let start = Instant::now();
        assert!(client
            .recv_timeout(Duration::from_millis(50))
            .unwrap()
            .is_none());
        assert!(start.elapsed() >= Duration::from_millis(45));
    }

    #[test]
    fn handshake_parses() {
        assert_eq!(parse_handshake(b"SMR\x05\x00"), Some(ReplicaId(5)));
        assert_eq!(parse_handshake(b"XXX\x05\x00"), None);
        assert_eq!(parse_handshake(b"SMR"), None);
    }
}
