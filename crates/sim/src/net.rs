//! The simulated network subsystem.
//!
//! Models what §VI-D of the paper identified as the real bottleneck: the
//! kernel's packet processing path. Each node has a softirq stage — a
//! single server in the pre-2.6.35 default (all NIC interrupts on one
//! core), or `rss_channels` servers with RSS/RPS enabled (footnote 5:
//! "in most cases the throughput doubled"). Every Ethernet frame, in
//! either direction, costs `per_packet_ns` of softirq service; receive
//! frames additionally wait for interrupt coalescing. Links add
//! propagation delay and serialize at the configured bandwidth.
//!
//! Two TCP behaviours that shape the paper's results are modeled
//! explicitly:
//!
//! * **Delayed ACKs** — streams that do not piggyback (the replica
//!   connections) emit one pure-ACK frame per `ack_every` data frames;
//!   client connections piggyback on replies and emit none. This is what
//!   makes the leader's packet rates match Table III's 150K out / 145K in
//!   split.
//! * **Small-segment coalescing (Nagle / socket-buffer aggregation)** —
//!   while a small frame of a connection is still waiting in the sender's
//!   softirq queue, further small sends on the same connection merge into
//!   it (up to the MTU). Deeper pipelining (larger `WND`) therefore packs
//!   more Phase 2b messages per frame and *raises* the packet-limited
//!   throughput ceiling — the mechanism behind Fig. 10a's rise from 100K
//!   to 120K requests/s.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::rc::{Rc, Weak};

use crate::executor::{Kernel, NodeId, SimCtx};
use crate::sync::SimQueue;

/// Application-level addressing within a node.
pub type Port = u32;

/// Connection identifier (one per TCP-connection analogue); scopes ACK
/// generation and segment coalescing.
pub type ConnId = u64;

/// A message delivered to an endpoint.
#[derive(Debug, Clone)]
pub struct Delivery<P> {
    /// The sending node.
    pub src: NodeId,
    /// The connection it arrived on.
    pub conn: ConnId,
    /// The payload.
    pub payload: P,
}

/// Per-node network configuration.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Softirq service time per frame (ns). The paper's leader saturates
    /// at ~150K pkts/s out + ~145K in ⇒ ~3.35µs per frame through one
    /// core.
    pub per_packet_ns: u64,
    /// Interrupt coalescing delay for received frames (ns).
    pub coalesce_ns: u64,
    /// Coalescing packet threshold (interrupt fires early when reached).
    pub coalesce_pkts: usize,
    /// Wire propagation delay (ns); Grid5000 idle RTT was 0.06ms ⇒ ~30µs
    /// each way.
    pub propagation_ns: u64,
    /// Link serialization bandwidth (bytes/s); effective 114MB/s on the
    /// paper's GbE.
    pub bandwidth_bps: u64,
    /// Maximum frame payload (Ethernet MTU minus headers).
    pub mtu: usize,
    /// Emit one pure-ACK frame per `ack_every` acked data frames on a
    /// connection (0 disables ACKs node-wide).
    pub ack_every: u32,
    /// Number of parallel softirq servers (1 = pre-2.6.35 kernel; >1 =
    /// RSS/RPS enabled).
    pub rss_channels: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            per_packet_ns: 3_350,
            coalesce_ns: 60_000,
            coalesce_pkts: 32,
            propagation_ns: 30_000,
            bandwidth_bps: 114_000_000,
            mtu: 1448,
            ack_every: 2,
            rss_channels: 1,
        }
    }
}

/// Cumulative packet/byte counters of one node (Table III quantities).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeNetStats {
    /// Frames sent (including pure ACKs).
    pub tx_packets: u64,
    /// Frames received (including pure ACKs).
    pub rx_packets: u64,
    /// Payload bytes sent.
    pub tx_bytes: u64,
    /// Payload bytes received.
    pub rx_bytes: u64,
}

enum FrameKind<P> {
    /// Data frame carrying zero or more complete messages (several when
    /// coalesced; zero for non-final fragments of a large message).
    Data(Vec<(Port, P)>),
    /// Pure acknowledgement.
    Ack,
    /// Ping probe (kernel echo, no app CPU — like ICMP).
    PingReq(u64),
    /// Ping response.
    PingReply(u64),
}

struct Frame<P> {
    src: NodeId,
    dst: NodeId,
    conn: ConnId,
    bytes: usize,
    acked: bool,
    /// Set once the softirq server starts on this frame: no more merging.
    started: bool,
    kind: FrameKind<P>,
}

enum Job<P> {
    Tx(Rc<RefCell<Frame<P>>>),
    Rx(Frame<P>),
}

struct NodeNet<P> {
    cfg: NetConfig,
    busy_servers: usize,
    jobs: VecDeque<Job<P>>,
    ring: VecDeque<Frame<P>>,
    irq_scheduled: bool,
    next_tx_free: u64,
    stats: NodeNetStats,
    ack_counters: HashMap<ConnId, u32>,
    /// Last still-mergeable outgoing frame per connection.
    pending_tx: HashMap<ConnId, Weak<RefCell<Frame<P>>>>,
}

/// An in-flight RTT probe: send time plus the cell the reply fills in.
type PendingPing = (u64, Rc<Cell<Option<u64>>>);

struct NetInner<P> {
    nodes: Vec<NodeNet<P>>,
    endpoints: HashMap<(usize, Port), SimQueue<Delivery<P>>>,
    pings: HashMap<u64, PendingPing>,
    next_ping: u64,
}

/// The simulated fabric connecting every node.
pub struct SimNet<P> {
    k: Rc<RefCell<Kernel>>,
    inner: Rc<RefCell<NetInner<P>>>,
}

impl<P> Clone for SimNet<P> {
    fn clone(&self) -> Self {
        SimNet {
            k: Rc::clone(&self.k),
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<P> std::fmt::Debug for SimNet<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SimNet")
    }
}

impl<P: 'static> SimNet<P> {
    /// Creates the fabric; `configs[i]` is node `i`'s kernel/NIC model
    /// (indices must match the executor's node ids).
    pub fn new(ctx: &SimCtx, configs: Vec<NetConfig>) -> Self {
        SimNet {
            k: Rc::clone(&ctx.k),
            inner: Rc::new(RefCell::new(NetInner {
                nodes: configs
                    .into_iter()
                    .map(|cfg| NodeNet {
                        cfg,
                        busy_servers: 0,
                        jobs: VecDeque::new(),
                        ring: VecDeque::new(),
                        irq_scheduled: false,
                        next_tx_free: 0,
                        stats: NodeNetStats::default(),
                        ack_counters: HashMap::new(),
                        pending_tx: HashMap::new(),
                    })
                    .collect(),
                endpoints: HashMap::new(),
                pings: HashMap::new(),
                next_ping: 0,
            })),
        }
    }

    /// Registers `queue` as the delivery endpoint `(node, port)`.
    pub fn bind(&self, node: NodeId, port: Port, queue: SimQueue<Delivery<P>>) {
        self.inner
            .borrow_mut()
            .endpoints
            .insert((node.0, port), queue);
    }

    /// Sends `payload` (`bytes` long, fragmented at the MTU) from `src`
    /// to `(dst, port)` over connection `conn`. `acked` marks streams
    /// that do not piggyback ACKs (replica connections).
    #[allow(clippy::too_many_arguments)]
    pub fn send(
        &self,
        src: NodeId,
        dst: NodeId,
        conn: ConnId,
        port: Port,
        payload: P,
        bytes: usize,
        acked: bool,
    ) {
        let mut k = self.k.borrow_mut();
        Self::send_inner(
            &self.inner,
            &mut k,
            src,
            dst,
            conn,
            port,
            payload,
            bytes,
            acked,
        );
    }

    /// Sends a kernel-level ping probe; the returned cell is set to the
    /// RTT (ns) when the echo returns.
    pub fn ping(&self, src: NodeId, dst: NodeId) -> Rc<Cell<Option<u64>>> {
        let mut k = self.k.borrow_mut();
        let result = Rc::new(Cell::new(None));
        let mut inner = self.inner.borrow_mut();
        let id = inner.next_ping;
        inner.next_ping += 1;
        inner.pings.insert(id, (k.now(), Rc::clone(&result)));
        drop(inner);
        let frame = Frame {
            src,
            dst,
            conn: u64::MAX,
            bytes: 64,
            acked: false,
            started: false,
            kind: FrameKind::PingReq(id),
        };
        Self::enqueue_tx(&self.inner, &mut k, frame);
        result
    }

    /// Counters of `node`.
    pub fn stats(&self, node: NodeId) -> NodeNetStats {
        self.inner.borrow().nodes[node.0].stats
    }

    #[allow(clippy::too_many_arguments)]
    fn send_inner(
        inner: &Rc<RefCell<NetInner<P>>>,
        k: &mut Kernel,
        src: NodeId,
        dst: NodeId,
        conn: ConnId,
        port: Port,
        payload: P,
        bytes: usize,
        acked: bool,
    ) {
        let mtu = inner.borrow().nodes[src.0].cfg.mtu;
        // Nagle-style merge: a small message rides along with a frame of
        // the same connection still waiting for the softirq server.
        if bytes <= mtu {
            // Try to merge into a still-unserviced frame of this
            // connection; hand the payload back if we cannot.
            let payload = {
                let mut ni = inner.borrow_mut();
                let n = &mut ni.nodes[src.0];
                match n.pending_tx.get(&conn).and_then(Weak::upgrade) {
                    Some(frame_rc) => {
                        let mut f = frame_rc.borrow_mut();
                        if !f.started && f.dst == dst && f.bytes + bytes <= mtu {
                            if let FrameKind::Data(deliveries) = &mut f.kind {
                                deliveries.push((port, payload));
                                f.bytes += bytes;
                                None
                            } else {
                                unreachable!("pending_tx only holds data frames")
                            }
                        } else {
                            Some(payload)
                        }
                    }
                    None => Some(payload),
                }
            };
            let Some(payload) = payload else { return };
            let frame = Frame {
                src,
                dst,
                conn,
                bytes,
                acked,
                started: false,
                kind: FrameKind::Data(vec![(port, payload)]),
            };
            Self::enqueue_tx(inner, k, frame);
            return;
        }
        // Fragmentation: only the last fragment carries the delivery.
        let frames = bytes.div_ceil(mtu);
        let mut remaining = bytes;
        let mut payload_opt = Some(payload);
        for i in 0..frames {
            let frame_bytes = remaining.min(mtu).max(1);
            remaining = remaining.saturating_sub(frame_bytes);
            let deliveries = if i + 1 == frames {
                vec![(port, payload_opt.take().expect("payload moves once"))]
            } else {
                Vec::new()
            };
            let frame = Frame {
                src,
                dst,
                conn,
                bytes: frame_bytes,
                acked,
                started: false,
                kind: FrameKind::Data(deliveries),
            };
            Self::enqueue_tx(inner, k, frame);
        }
    }

    fn enqueue_tx(inner: &Rc<RefCell<NetInner<P>>>, k: &mut Kernel, frame: Frame<P>) {
        let node = frame.src.0;
        {
            let mut ni = inner.borrow_mut();
            let conn = frame.conn;
            let mergeable = matches!(frame.kind, FrameKind::Data(_));
            let rc = Rc::new(RefCell::new(frame));
            if mergeable {
                ni.nodes[node].pending_tx.insert(conn, Rc::downgrade(&rc));
            }
            ni.nodes[node].jobs.push_back(Job::Tx(rc));
        }
        Self::kick(inner, k, node);
    }

    /// Starts softirq servers while there are jobs and free servers.
    fn kick(inner: &Rc<RefCell<NetInner<P>>>, k: &mut Kernel, node: usize) {
        loop {
            let (job, cost) = {
                let mut ni = inner.borrow_mut();
                let n = &mut ni.nodes[node];
                if n.busy_servers >= n.cfg.rss_channels || n.jobs.is_empty() {
                    return;
                }
                n.busy_servers += 1;
                let job = n.jobs.pop_front().expect("job present");
                if let Job::Tx(frame) = &job {
                    frame.borrow_mut().started = true; // freeze merging
                }
                (job, n.cfg.per_packet_ns)
            };
            let inner2 = Rc::clone(inner);
            let at = k.now() + cost;
            k.schedule_run(at, move |k2| {
                Self::complete_job(&inner2, k2, node, job);
            });
        }
    }

    fn complete_job(inner: &Rc<RefCell<NetInner<P>>>, k: &mut Kernel, node: usize, job: Job<P>) {
        inner.borrow_mut().nodes[node].busy_servers -= 1;
        match job {
            Job::Tx(frame_rc) => {
                let frame = Rc::try_unwrap(frame_rc)
                    .unwrap_or_else(|rc| RefCell::new(rc.borrow_mut().take_inner()))
                    .into_inner();
                // Serialize onto the wire, then propagate.
                let arrive = {
                    let mut ni = inner.borrow_mut();
                    let n = &mut ni.nodes[node];
                    n.stats.tx_packets += 1;
                    n.stats.tx_bytes += frame.bytes as u64;
                    let wire_ns = frame.bytes as u64 * 1_000_000_000 / n.cfg.bandwidth_bps.max(1);
                    let depart = n.next_tx_free.max(k.now()) + wire_ns;
                    n.next_tx_free = depart;
                    depart + n.cfg.propagation_ns
                };
                let inner2 = Rc::clone(inner);
                k.schedule_run(arrive, move |k2| {
                    Self::arrive_rx(&inner2, k2, frame);
                });
            }
            Job::Rx(frame) => {
                {
                    let mut ni = inner.borrow_mut();
                    let n = &mut ni.nodes[node];
                    n.stats.rx_packets += 1;
                    n.stats.rx_bytes += frame.bytes as u64;
                }
                Self::finish_rx(inner, k, frame);
            }
        }
        Self::kick(inner, k, node);
    }

    fn arrive_rx(inner: &Rc<RefCell<NetInner<P>>>, k: &mut Kernel, frame: Frame<P>) {
        let node = frame.dst.0;
        let fire_now = {
            let mut ni = inner.borrow_mut();
            let n = &mut ni.nodes[node];
            n.ring.push_back(frame);
            if n.ring.len() >= n.cfg.coalesce_pkts {
                true
            } else if !n.irq_scheduled {
                n.irq_scheduled = true;
                false
            } else {
                return; // interrupt already pending
            }
        };
        let delay = if fire_now {
            0
        } else {
            inner.borrow().nodes[node].cfg.coalesce_ns
        };
        let inner2 = Rc::clone(inner);
        let at = k.now() + delay;
        k.schedule_run(at, move |k2| {
            {
                let mut ni = inner2.borrow_mut();
                let n = &mut ni.nodes[node];
                n.irq_scheduled = false;
                while let Some(f) = n.ring.pop_front() {
                    n.jobs.push_back(Job::Rx(f));
                }
            }
            Self::kick(&inner2, k2, node);
        });
    }

    fn finish_rx(inner: &Rc<RefCell<NetInner<P>>>, k: &mut Kernel, frame: Frame<P>) {
        let node = frame.dst.0;
        match frame.kind {
            FrameKind::Data(deliveries) => {
                // Delayed-ACK generation for non-piggybacking streams.
                let ack_due = {
                    let mut ni = inner.borrow_mut();
                    let n = &mut ni.nodes[node];
                    if !frame.acked || n.cfg.ack_every == 0 {
                        false
                    } else {
                        let c = n.ack_counters.entry(frame.conn).or_insert(0);
                        *c += 1;
                        *c % n.cfg.ack_every == 0
                    }
                };
                if ack_due {
                    let ack = Frame {
                        src: frame.dst,
                        dst: frame.src,
                        conn: frame.conn,
                        bytes: 60,
                        acked: false,
                        started: false,
                        kind: FrameKind::Ack,
                    };
                    Self::enqueue_tx(inner, k, ack);
                }
                for (port, payload) in deliveries {
                    let queue = inner.borrow().endpoints.get(&(node, port)).cloned();
                    if let Some(q) = queue {
                        q.push_unbounded_kernel(
                            k,
                            Delivery {
                                src: frame.src,
                                conn: frame.conn,
                                payload,
                            },
                        );
                    }
                }
            }
            FrameKind::Ack => {}
            FrameKind::PingReq(id) => {
                let reply = Frame {
                    src: frame.dst,
                    dst: frame.src,
                    conn: frame.conn,
                    bytes: 64,
                    acked: false,
                    started: false,
                    kind: FrameKind::PingReply(id),
                };
                Self::enqueue_tx(inner, k, reply);
            }
            FrameKind::PingReply(id) => {
                let mut ni = inner.borrow_mut();
                if let Some((sent, cell)) = ni.pings.remove(&id) {
                    cell.set(Some(k.now() - sent));
                }
            }
        }
    }
}

impl<P> Frame<P> {
    /// Used only in the unreachable multi-owner case of `Rc::try_unwrap`.
    fn take_inner(&mut self) -> Frame<P> {
        Frame {
            src: self.src,
            dst: self.dst,
            conn: self.conn,
            bytes: self.bytes,
            acked: self.acked,
            started: self.started,
            kind: std::mem::replace(&mut self.kind, FrameKind::Data(Vec::new())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;

    fn two_node_net(sim: &Sim, cfg: NetConfig) -> (SimNet<u64>, NodeId, NodeId) {
        let a = sim.add_node("a", 1, 1.0);
        let b = sim.add_node("b", 1, 1.0);
        let net = SimNet::new(&sim.ctx(), vec![cfg, cfg]);
        (net, a, b)
    }

    #[test]
    fn message_is_delivered() {
        let sim = Sim::new(1);
        let (net, a, b) = two_node_net(&sim, NetConfig::default());
        let q: SimQueue<Delivery<u64>> = SimQueue::new(&sim.ctx(), "inbox", 1_000_000);
        net.bind(b, 7, q.clone());
        let got = Rc::new(Cell::new(None));
        {
            let q = q.clone();
            let got = Rc::clone(&got);
            let ctx = sim.ctx();
            sim.spawn(b, "receiver", async move {
                let d = q.pop().await.expect("delivery");
                got.set(Some((d.payload, ctx.now())));
            });
        }
        net.send(a, b, 1, 7, 42u64, 128, false);
        sim.run_until(10_000_000);
        let (payload, at) = got.get().expect("delivered");
        assert_eq!(payload, 42);
        assert!(at > 30_000, "latency includes propagation: {at}");
        assert!(at < 200_000, "single small frame arrives quickly: {at}");
    }

    #[test]
    fn large_message_fragments_into_frames() {
        let sim = Sim::new(1);
        let (net, a, b) = two_node_net(&sim, NetConfig::default());
        let q: SimQueue<Delivery<u64>> = SimQueue::new(&sim.ctx(), "inbox", 1_000_000);
        net.bind(b, 7, q.clone());
        net.send(a, b, 1, 7, 1u64, 5200, false);
        sim.run_until(10_000_000);
        let stats = net.stats(a);
        assert_eq!(stats.tx_packets, 4, "5200B at MTU 1448 = 4 frames");
        assert_eq!(net.stats(b).rx_packets, 4);
        assert_eq!(q.len(), 1, "one message delivered");
    }

    #[test]
    fn delayed_acks_only_for_acked_streams() {
        let sim = Sim::new(1);
        let (net, a, b) = two_node_net(
            &sim,
            NetConfig {
                ack_every: 2,
                ..NetConfig::default()
            },
        );
        let q: SimQueue<Delivery<u64>> = SimQueue::new(&sim.ctx(), "inbox", 1_000_000);
        net.bind(b, 7, q.clone());
        // Spread sends in time so they do not coalesce.
        let ctx = sim.ctx();
        let net2 = net.clone();
        sim.spawn(a, "sender", async move {
            for i in 0..10 {
                net2.send(a, b, 1, 7, i, 128, true);
                net2.send(a, b, 2, 7, 100 + i, 128, false); // piggybacked stream
                ctx.sleep(1_000_000).await;
            }
        });
        sim.run_until(50_000_000);
        assert_eq!(
            net.stats(b).tx_packets,
            5,
            "one ACK per two acked data frames"
        );
        assert_eq!(q.len(), 20);
    }

    #[test]
    fn burst_sends_coalesce_like_nagle() {
        let sim = Sim::new(1);
        let (net, a, b) = two_node_net(
            &sim,
            NetConfig {
                ack_every: 0,
                ..NetConfig::default()
            },
        );
        let q: SimQueue<Delivery<u64>> = SimQueue::new(&sim.ctx(), "inbox", 1_000_000);
        net.bind(b, 7, q.clone());
        // 10 back-to-back 20-byte messages on one connection: the first
        // frame is queued, the rest merge into it.
        for i in 0..10 {
            net.send(a, b, 1, 7, i, 20, false);
        }
        sim.run_until(10_000_000);
        assert_eq!(q.len(), 10, "all messages delivered");
        assert!(
            net.stats(a).tx_packets <= 2,
            "small burst coalesced into few frames: {:?}",
            net.stats(a)
        );
    }

    #[test]
    fn coalescing_respects_mtu() {
        let sim = Sim::new(1);
        let (net, a, b) = two_node_net(
            &sim,
            NetConfig {
                ack_every: 0,
                ..NetConfig::default()
            },
        );
        let q: SimQueue<Delivery<u64>> = SimQueue::new(&sim.ctx(), "inbox", 1_000_000);
        net.bind(b, 7, q.clone());
        for i in 0..10 {
            net.send(a, b, 1, 7, i, 400, false);
        }
        sim.run_until(10_000_000);
        // 10 x 400B at MTU 1448: at most 3 per frame ⇒ ≥ 4 frames.
        assert!(net.stats(a).tx_packets >= 4);
        assert_eq!(q.len(), 10);
    }

    #[test]
    fn softirq_is_a_shared_bottleneck() {
        let sim = Sim::new(1);
        let cfg = NetConfig {
            ack_every: 0,
            coalesce_ns: 10_000,
            ..NetConfig::default()
        };
        let (net, a, b) = two_node_net(&sim, cfg);
        let q: SimQueue<Delivery<u64>> = SimQueue::new(&sim.ctx(), "inbox", 1_000_000);
        net.bind(b, 7, q.clone());
        // Distinct connections ⇒ no coalescing ⇒ 10_000 frames of
        // service on each side.
        let ctx = sim.ctx();
        let net2 = net.clone();
        sim.spawn(a, "sender", async move {
            for i in 0..10_000u64 {
                net2.send(a, b, i, 7, i, 100, false);
                if i % 8 == 7 {
                    ctx.sleep(1).await;
                }
            }
        });
        sim.run_until(10_000_000_000);
        assert_eq!(q.len(), 10_000);
        assert_eq!(net.stats(b).rx_packets, 10_000);
    }

    #[test]
    fn rss_doubles_throughput() {
        let drain_time = |rss: usize| {
            let sim = Sim::new(1);
            let cfg = NetConfig {
                ack_every: 0,
                rss_channels: rss,
                ..NetConfig::default()
            };
            let (net, a, b) = two_node_net(&sim, cfg);
            let q: SimQueue<Delivery<u64>> = SimQueue::new(&sim.ctx(), "inbox", 1_000_000);
            net.bind(b, 7, q.clone());
            let done = Rc::new(Cell::new(0u64));
            {
                let q = q.clone();
                let done = Rc::clone(&done);
                let ctx = sim.ctx();
                sim.spawn(b, "rcv", async move {
                    for _ in 0..5_000 {
                        q.pop().await;
                    }
                    done.set(ctx.now());
                });
            }
            // Distinct connections: small frames, softirq-bound.
            for i in 0..5_000u64 {
                net.send(a, b, i, 7, i, 100, false);
            }
            sim.run_until(10_000_000_000);
            done.get()
        };
        let single = drain_time(1);
        let multi = drain_time(4);
        assert!(
            multi * 3 / 2 < single,
            "RSS speeds up packet processing markedly: {multi} vs {single}"
        );
    }

    #[test]
    fn ping_measures_rtt() {
        let sim = Sim::new(1);
        let (net, a, b) = two_node_net(&sim, NetConfig::default());
        let rtt = net.ping(a, b);
        sim.run_until(10_000_000);
        let measured = rtt.get().expect("echo returned");
        assert!(
            measured > 2 * 30_000,
            "at least two propagation delays: {measured}"
        );
        assert!(measured < 500_000, "idle network answers fast: {measured}");
    }

    #[test]
    fn stats_count_bytes() {
        let sim = Sim::new(1);
        let (net, a, b) = two_node_net(
            &sim,
            NetConfig {
                ack_every: 0,
                ..NetConfig::default()
            },
        );
        let q: SimQueue<Delivery<u64>> = SimQueue::new(&sim.ctx(), "inbox", 1_000_000);
        net.bind(b, 7, q);
        net.send(a, b, 1, 7, 1, 128, false);
        sim.run_until(10_000_000);
        assert_eq!(net.stats(a).tx_bytes, 128);
        assert_eq!(net.stats(b).rx_bytes, 128);
    }
}
