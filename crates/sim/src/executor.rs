//! The deterministic single-threaded executor: virtual clock, event heap,
//! tasks-as-threads, and the multi-core CPU model.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};

/// Index of a simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

/// Index of a simulated thread (task).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(pub usize);

/// The four thread states of the paper's profiling methodology, in
/// virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimThreadState {
    /// Holding a core inside [`SimCtx::cpu`].
    Busy = 0,
    /// Parked on a contended [`crate::SimMutex`].
    Blocked = 1,
    /// Parked on an empty/full [`crate::SimQueue`].
    Waiting = 2,
    /// Sleeping, in the ready queue waiting for a core, or in I/O.
    Other = 3,
}

/// Profile of one simulated thread.
#[derive(Debug, Clone)]
pub struct SimTaskProfile {
    /// Thread name.
    pub name: String,
    /// The node it runs on.
    pub node: NodeId,
    /// Nanoseconds per state, indexed by [`SimThreadState`] as usize.
    pub ns: [u64; 4],
    /// Virtual nanoseconds since the thread was spawned.
    pub wall_ns: u64,
}

impl SimTaskProfile {
    /// Fraction of wall time in `state`.
    pub fn fraction(&self, state: SimThreadState) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.ns[state as usize] as f64 / self.wall_ns as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CpuState {
    Init,
    Pending,
    Done,
}

struct CpuWait {
    task: TaskId,
    cost: u64,
    cell: Rc<Cell<CpuState>>,
}

struct Node {
    #[allow(dead_code)]
    name: String,
    cores: usize,
    cores_free: usize,
    speed: f64,
    ready: VecDeque<CpuWait>,
}

struct Task {
    name: String,
    node: NodeId,
    fut: Option<Pin<Box<dyn Future<Output = ()>>>>,
    state: SimThreadState,
    state_since: u64,
    ns: [u64; 4],
    started: u64,
    done: bool,
}

enum EventKind {
    Poll(TaskId),
    Run(Box<dyn FnOnce(&mut Kernel)>),
}

struct Event {
    at: u64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

pub(crate) struct Kernel {
    now: u64,
    seq: u64,
    events: BinaryHeap<Reverse<Event>>,
    tasks: Vec<Task>,
    nodes: Vec<Node>,
    /// Oversubscription cost model: `1 + alpha * excess/active` CPU-time
    /// multiplier, plus a context-switch cost per burst under contention.
    pub(crate) oversub_alpha: f64,
    pub(crate) ctx_switch_ns: u64,
    rng_state: u64,
}

thread_local! {
    static CURRENT_TASK: Cell<usize> = const { Cell::new(usize::MAX) };
}

impl Kernel {
    pub(crate) fn now(&self) -> u64 {
        self.now
    }

    pub(crate) fn schedule_poll(&mut self, at: u64, task: TaskId) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse(Event {
            at: at.max(self.now),
            seq,
            kind: EventKind::Poll(task),
        }));
    }

    pub(crate) fn schedule_run(&mut self, at: u64, f: impl FnOnce(&mut Kernel) + 'static) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse(Event {
            at: at.max(self.now),
            seq,
            kind: EventKind::Run(Box::new(f)),
        }));
    }

    pub(crate) fn set_task_state(&mut self, task: TaskId, state: SimThreadState) {
        let now = self.now;
        let t = &mut self.tasks[task.0];
        t.ns[t.state as usize] += now - t.state_since;
        t.state = state;
        t.state_since = now;
    }

    pub(crate) fn current_task() -> TaskId {
        let id = CURRENT_TASK.with(|c| c.get());
        assert!(id != usize::MAX, "sim primitive used outside a sim task");
        TaskId(id)
    }

    /// Requests `cost` ns of CPU on the task's node.
    pub(crate) fn request_cpu(&mut self, task: TaskId, cost: u64, cell: Rc<Cell<CpuState>>) {
        cell.set(CpuState::Pending);
        let node = self.tasks[task.0].node;
        if self.nodes[node.0].cores_free > 0 {
            self.start_burst(node, CpuWait { task, cost, cell }, false);
        } else {
            self.set_task_state(task, SimThreadState::Other); // runnable, unscheduled
            self.nodes[node.0]
                .ready
                .push_back(CpuWait { task, cost, cell });
        }
    }

    fn start_burst(&mut self, node: NodeId, wait: CpuWait, was_queued: bool) {
        let n = &mut self.nodes[node.0];
        n.cores_free -= 1;
        let running = n.cores - n.cores_free;
        let active = running + n.ready.len();
        let excess = active.saturating_sub(n.cores);
        let mult = if active > 0 {
            1.0 + self.oversub_alpha * excess as f64 / active as f64
        } else {
            1.0
        };
        let mut actual = (wait.cost as f64 * mult / n.speed) as u64;
        if was_queued || !n.ready.is_empty() {
            actual += self.ctx_switch_ns;
        }
        self.set_task_state(wait.task, SimThreadState::Busy);
        let task = wait.task;
        let cell = wait.cell;
        let at = self.now + actual.max(1);
        self.schedule_run(at, move |k| {
            cell.set(CpuState::Done);
            k.schedule_poll(k.now, task);
            let n = &mut k.nodes[node.0];
            n.cores_free += 1;
            if let Some(next) = n.ready.pop_front() {
                k.start_burst(node, next, true);
            }
        });
    }

    /// Deterministic xorshift random (for jitter where needed).
    pub(crate) fn rand_u64(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        x
    }
}

fn noop_waker() -> Waker {
    fn clone(_: *const ()) -> RawWaker {
        RawWaker::new(std::ptr::null(), &VTABLE)
    }
    fn noop(_: *const ()) {}
    static VTABLE: RawWakerVTable = RawWakerVTable::new(clone, noop, noop, noop);
    // SAFETY: all vtable functions are no-ops over a null pointer.
    unsafe { Waker::from_raw(RawWaker::new(std::ptr::null(), &VTABLE)) }
}

/// The simulation: owns the kernel, exposes construction and the run
/// loop. Single-threaded; not `Send`.
pub struct Sim {
    k: Rc<RefCell<Kernel>>,
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let k = self.k.borrow();
        f.debug_struct("Sim")
            .field("now", &k.now)
            .field("tasks", &k.tasks.len())
            .finish()
    }
}

impl Sim {
    /// Creates a simulation; `seed` drives the deterministic RNG.
    pub fn new(seed: u64) -> Self {
        Sim {
            k: Rc::new(RefCell::new(Kernel {
                now: 0,
                seq: 0,
                events: BinaryHeap::new(),
                tasks: Vec::new(),
                nodes: Vec::new(),
                oversub_alpha: 0.25,
                ctx_switch_ns: 800,
                rng_state: seed | 1,
            })),
        }
    }

    /// Tunes the oversubscription model (defaults: `alpha = 0.7`,
    /// context switch 2µs).
    pub fn set_oversubscription(&self, alpha: f64, ctx_switch_ns: u64) {
        let mut k = self.k.borrow_mut();
        k.oversub_alpha = alpha;
        k.ctx_switch_ns = ctx_switch_ns;
    }

    /// Adds a machine with `cores` cores; `speed` scales per-core
    /// performance (1.0 = the parapluie reference core).
    pub fn add_node(&self, name: impl Into<String>, cores: usize, speed: f64) -> NodeId {
        assert!(cores > 0, "a node needs at least one core");
        let mut k = self.k.borrow_mut();
        let id = NodeId(k.nodes.len());
        k.nodes.push(Node {
            name: name.into(),
            cores,
            cores_free: cores,
            speed,
            ready: VecDeque::new(),
        });
        id
    }

    /// A cloneable context handle for use inside tasks.
    pub fn ctx(&self) -> SimCtx {
        SimCtx {
            k: Rc::clone(&self.k),
        }
    }

    /// Spawns a simulated thread on `node`.
    pub fn spawn(
        &self,
        node: NodeId,
        name: impl Into<String>,
        fut: impl Future<Output = ()> + 'static,
    ) -> TaskId {
        self.ctx().spawn(node, name, fut)
    }

    /// Current virtual time (ns).
    pub fn now(&self) -> u64 {
        self.k.borrow().now
    }

    /// Runs the event loop until virtual time `t_ns` (events at exactly
    /// `t_ns` are processed).
    pub fn run_until(&self, t_ns: u64) {
        loop {
            let (kind, at) = {
                let mut k = self.k.borrow_mut();
                match k.events.peek() {
                    Some(Reverse(e)) if e.at <= t_ns => {
                        let Reverse(e) = k.events.pop().expect("peeked event");
                        k.now = e.at;
                        (e.kind, e.at)
                    }
                    _ => {
                        // Time never moves backwards: a shorter target
                        // than the current clock is a no-op.
                        k.now = k.now.max(t_ns);
                        return;
                    }
                }
            };
            let _ = at;
            match kind {
                EventKind::Poll(task) => self.poll_task(task),
                EventKind::Run(f) => {
                    let mut k = self.k.borrow_mut();
                    f(&mut k);
                }
            }
        }
    }

    fn poll_task(&self, task: TaskId) {
        let fut = {
            let mut k = self.k.borrow_mut();
            let t = &mut k.tasks[task.0];
            if t.done {
                return;
            }
            t.fut.take()
        };
        let Some(mut fut) = fut else { return };
        let prev = CURRENT_TASK.with(|c| c.replace(task.0));
        let waker = noop_waker();
        let mut cx = Context::from_waker(&waker);
        let result = fut.as_mut().poll(&mut cx);
        CURRENT_TASK.with(|c| c.set(prev));
        let mut k = self.k.borrow_mut();
        match result {
            Poll::Ready(()) => {
                k.set_task_state(task, SimThreadState::Other);
                k.tasks[task.0].done = true;
            }
            Poll::Pending => {
                k.tasks[task.0].fut = Some(fut);
            }
        }
    }

    /// Profiles of every spawned thread, with in-progress state intervals
    /// folded in.
    pub fn thread_profiles(&self) -> Vec<SimTaskProfile> {
        let k = self.k.borrow();
        k.tasks
            .iter()
            .map(|t| {
                let mut ns = t.ns;
                ns[t.state as usize] += k.now - t.state_since;
                SimTaskProfile {
                    name: t.name.clone(),
                    node: t.node,
                    ns,
                    wall_ns: k.now - t.started,
                }
            })
            .collect()
    }
}

/// Cloneable handle used inside tasks for time, CPU, sleeping, and
/// spawning.
#[derive(Clone)]
pub struct SimCtx {
    pub(crate) k: Rc<RefCell<Kernel>>,
}

impl std::fmt::Debug for SimCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SimCtx")
    }
}

impl SimCtx {
    /// Current virtual time (ns).
    pub fn now(&self) -> u64 {
        self.k.borrow().now
    }

    /// Consumes `cost_ns` of CPU time on the calling task's node
    /// (queueing for a core if none is free).
    pub fn cpu(&self, cost_ns: u64) -> CpuFuture {
        CpuFuture {
            k: Rc::clone(&self.k),
            cost: cost_ns,
            cell: Rc::new(Cell::new(CpuState::Init)),
        }
    }

    /// Sleeps for `ns` of virtual time (state: other).
    pub fn sleep(&self, ns: u64) -> SleepFuture {
        SleepFuture {
            k: Rc::clone(&self.k),
            dur: ns,
            done: Rc::new(Cell::new(false)),
        }
    }

    /// Spawns a simulated thread on `node`.
    pub fn spawn(
        &self,
        node: NodeId,
        name: impl Into<String>,
        fut: impl Future<Output = ()> + 'static,
    ) -> TaskId {
        let mut k = self.k.borrow_mut();
        let id = TaskId(k.tasks.len());
        let now = k.now;
        k.tasks.push(Task {
            name: name.into(),
            node,
            fut: Some(Box::pin(fut)),
            state: SimThreadState::Other,
            state_since: now,
            ns: [0; 4],
            started: now,
            done: false,
        });
        k.schedule_poll(now, id);
        id
    }

    /// Deterministic pseudo-random u64.
    pub fn rand_u64(&self) -> u64 {
        self.k.borrow_mut().rand_u64()
    }
}

/// Future returned by [`SimCtx::cpu`].
pub struct CpuFuture {
    k: Rc<RefCell<Kernel>>,
    cost: u64,
    cell: Rc<Cell<CpuState>>,
}

impl Future for CpuFuture {
    type Output = ();

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        match self.cell.get() {
            CpuState::Init => {
                let task = Kernel::current_task();
                let mut k = self.k.borrow_mut();
                k.request_cpu(task, self.cost, Rc::clone(&self.cell));
                Poll::Pending
            }
            CpuState::Pending => Poll::Pending,
            CpuState::Done => {
                // The burst ended; the task resumes but is conceptually
                // still on-CPU until it hits the next wait point. Leave
                // the state as Busy — the next primitive will transition.
                Poll::Ready(())
            }
        }
    }
}

/// Future returned by [`SimCtx::sleep`].
pub struct SleepFuture {
    k: Rc<RefCell<Kernel>>,
    dur: u64,
    done: Rc<Cell<bool>>,
}

impl Future for SleepFuture {
    type Output = ();

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        if self.done.get() {
            return Poll::Ready(());
        }
        let task = Kernel::current_task();
        let mut k = self.k.borrow_mut();
        k.set_task_state(task, SimThreadState::Other);
        let done = Rc::clone(&self.done);
        let at = k.now + self.dur;
        k.schedule_run(at, move |k2| {
            done.set(true);
            k2.schedule_poll(k2.now, task);
        });
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_time_advances_only_with_events() {
        let sim = Sim::new(1);
        sim.run_until(1_000_000);
        assert_eq!(sim.now(), 1_000_000);
    }

    #[test]
    fn cpu_burst_takes_virtual_time() {
        let sim = Sim::new(1);
        let node = sim.add_node("n", 1, 1.0);
        let ctx = sim.ctx();
        let done = Rc::new(Cell::new(0u64));
        let done2 = Rc::clone(&done);
        sim.spawn(node, "t", async move {
            ctx.cpu(5_000).await;
            done2.set(ctx.now());
        });
        sim.run_until(1_000_000);
        assert_eq!(done.get(), 5_000);
    }

    #[test]
    fn single_core_serializes_two_tasks() {
        let sim = Sim::new(1);
        let node = sim.add_node("n", 1, 1.0);
        let finish: Rc<RefCell<Vec<(String, u64)>>> = Rc::new(RefCell::new(Vec::new()));
        for name in ["a", "b"] {
            let ctx = sim.ctx();
            let finish = Rc::clone(&finish);
            let name = name.to_string();
            sim.spawn(node, name.clone(), async move {
                ctx.cpu(10_000).await;
                finish.borrow_mut().push((name, ctx.now()));
            });
        }
        sim.run_until(1_000_000);
        let f = finish.borrow();
        assert_eq!(f.len(), 2);
        // With contention, total elapsed ≥ 20µs serial time; the second
        // task ends strictly after the first.
        assert!(f[1].1 >= f[0].1 + 10_000, "bursts serialized: {f:?}");
    }

    #[test]
    fn two_cores_run_in_parallel() {
        let sim = Sim::new(1);
        let node = sim.add_node("n", 2, 1.0);
        let finish: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        for name in ["a", "b"] {
            let ctx = sim.ctx();
            let finish = Rc::clone(&finish);
            sim.spawn(node, name, async move {
                ctx.cpu(10_000).await;
                finish.borrow_mut().push(ctx.now());
            });
        }
        sim.run_until(1_000_000);
        let f = finish.borrow();
        assert_eq!(*f, vec![10_000, 10_000], "both bursts overlap fully");
    }

    #[test]
    fn oversubscription_slows_bursts() {
        // 4 threads on 1 core vs 4 threads on 4 cores.
        let total_time = |cores: usize| {
            let sim = Sim::new(1);
            let node = sim.add_node("n", cores, 1.0);
            let end = Rc::new(Cell::new(0u64));
            for i in 0..4 {
                let ctx = sim.ctx();
                let end = Rc::clone(&end);
                sim.spawn(node, format!("t{i}"), async move {
                    for _ in 0..10 {
                        ctx.cpu(1_000).await;
                    }
                    end.set(end.get().max(ctx.now()));
                });
            }
            sim.run_until(10_000_000);
            end.get()
        };
        let serial = total_time(1);
        let parallel = total_time(4);
        assert!(parallel <= 11_000, "uncontended: ~10 bursts of 1µs");
        assert!(
            serial > 4 * parallel,
            "oversubscription adds context-switch + cache penalty: {serial} vs {parallel}"
        );
    }

    #[test]
    fn speed_scales_costs() {
        let sim = Sim::new(1);
        let fast = sim.add_node("fast", 1, 2.0);
        let end = Rc::new(Cell::new(0u64));
        let ctx = sim.ctx();
        let end2 = Rc::clone(&end);
        sim.spawn(fast, "t", async move {
            ctx.cpu(10_000).await;
            end2.set(ctx.now());
        });
        sim.run_until(1_000_000);
        assert_eq!(end.get(), 5_000, "2x speed halves the burst");
    }

    #[test]
    fn sleep_is_other_time() {
        let sim = Sim::new(1);
        let node = sim.add_node("n", 1, 1.0);
        let ctx = sim.ctx();
        sim.spawn(node, "sleeper", async move {
            ctx.sleep(100_000).await;
        });
        sim.run_until(200_000);
        let p = &sim.thread_profiles()[0];
        assert!(p.ns[SimThreadState::Other as usize] >= 100_000);
        assert_eq!(p.ns[SimThreadState::Busy as usize], 0);
    }

    #[test]
    fn profiles_account_busy_time() {
        let sim = Sim::new(1);
        let node = sim.add_node("n", 1, 1.0);
        let ctx = sim.ctx();
        sim.spawn(node, "worker", async move {
            loop {
                ctx.cpu(1_000).await;
                ctx.sleep(1_000).await;
            }
        });
        sim.run_until(1_000_000);
        let p = &sim.thread_profiles()[0];
        let busy = p.fraction(SimThreadState::Busy);
        assert!((busy - 0.5).abs() < 0.05, "50% duty cycle, got {busy}");
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let sim = Sim::new(7);
            let node = sim.add_node("n", 2, 1.0);
            for i in 0..5u64 {
                let ctx = sim.ctx();
                sim.spawn(node, format!("t{i}"), async move {
                    for _ in 0..20 {
                        ctx.cpu(100 + (ctx.rand_u64() % 500)).await;
                        ctx.sleep(ctx.rand_u64() % 1000).await;
                    }
                });
            }
            sim.run_until(10_000_000);
            sim.thread_profiles()
                .iter()
                .map(|p| p.ns)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "same seed, same trajectory");
    }
}
