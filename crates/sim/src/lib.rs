//! Deterministic discrete-event simulation kernel.
//!
//! This crate is the substitute for the paper's testbed: Grid5000
//! clusters (24-core *parapluie*, 8-core *edel*), Gigabit Ethernet, and
//! the Linux 2.6.26 network subsystem whose single-core interrupt
//! handling caps the leader at ~150K packets/s per direction (§VI-D and
//! footnote 5). The paper's results are statements about *where thread
//! time goes* (busy/blocked/waiting/other) and *where packets queue* —
//! quantities a discrete-event model reproduces exactly, noise-free, and
//! with a dialable core count that `taskset` inside a container cannot
//! provide.
//!
//! Pieces:
//!
//! * [`Sim`] — the executor: virtual clock, deterministic event heap,
//!   single-threaded `async` tasks representing threads.
//! * CPU model — every node has `cores`; [`SimCtx::cpu`] consumes core
//!   time; oversubscription adds a context-switch/cache penalty
//!   (this is what makes 8 threads on 1 core slower than 8 threads on 8
//!   cores, and reproduces the paper's "CPU utilization grows slower than
//!   throughput" observation).
//! * [`SimMutex`] — blocked-time accounting plus an optional per-waiter
//!   handoff penalty (cache-line bouncing — the knob behind the
//!   ZooKeeper contention collapse).
//! * [`SimQueue`] — the bounded inter-thread queues with waiting-time
//!   accounting and occupancy statistics (Table I).
//! * [`SimNet`] — per-node softirq packet server with interrupt
//!   coalescing, per-link propagation delay and bandwidth, Ethernet MTU
//!   fragmentation, delayed-ACK generation, and packet counters
//!   (Table III); optional multi-queue (RSS/RPS) mode for the footnote-5
//!   ablation.
//!
//! # Examples
//!
//! ```
//! use smr_sim::{Sim, SimThreadState};
//!
//! let sim = Sim::new(1);
//! let node = sim.add_node("replica-0", 2, 1.0);
//! let ctx = sim.ctx();
//! sim.spawn(node, "worker", async move {
//!     ctx.cpu(1_000).await; // consume 1µs of one core
//!     ctx.sleep(5_000).await;
//! });
//! sim.run_until(1_000_000);
//! let profile = sim.thread_profiles();
//! assert_eq!(profile[0].name, "worker");
//! assert!(profile[0].ns[SimThreadState::Busy as usize] >= 1_000);
//! ```

mod executor;
mod net;
mod report;
mod sync;

pub use executor::{NodeId, Sim, SimCtx, SimTaskProfile, SimThreadState, TaskId};
pub use net::{ConnId, Delivery, NetConfig, NodeNetStats, Port, SimNet};
pub use report::{node_breakdown, render_breakdown, NodeBreakdown, ThreadBreakdown};
pub use sync::{SimMutex, SimMutexGuard, SimQueue};
