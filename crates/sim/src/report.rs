//! Profile-report helpers shared by the architecture models.

use crate::executor::{NodeId, SimTaskProfile, SimThreadState};

/// Per-thread time fractions over a measurement window.
#[derive(Debug, Clone)]
pub struct ThreadBreakdown {
    /// Thread name.
    pub name: String,
    /// Fraction of the window spent executing.
    pub busy: f64,
    /// Fraction blocked on locks.
    pub blocked: f64,
    /// Fraction parked on queues/condvars.
    pub waiting: f64,
    /// Everything else.
    pub other: f64,
}

/// Aggregate of one node's threads over a measurement window.
#[derive(Debug, Clone)]
pub struct NodeBreakdown {
    /// Sum of busy time as % of one core (the paper's CPU-utilization
    /// metric).
    pub cpu_util_pct: f64,
    /// Sum of blocked time as % of the run (the paper's contention
    /// metric).
    pub blocked_pct: f64,
    /// Per-thread breakdown.
    pub threads: Vec<ThreadBreakdown>,
}

/// Computes a node's breakdown from profile snapshots taken at the start
/// and end of the measurement window. Threads spawned mid-window are
/// skipped.
pub fn node_breakdown(
    before: &[SimTaskProfile],
    after: &[SimTaskProfile],
    node: NodeId,
    window_ns: f64,
) -> NodeBreakdown {
    let mut threads = Vec::new();
    let mut busy = 0.0;
    let mut blocked = 0.0;
    for (b, a) in before.iter().zip(after) {
        if a.node != node {
            continue;
        }
        let d = |s: SimThreadState| (a.ns[s as usize] - b.ns[s as usize]) as f64;
        busy += d(SimThreadState::Busy);
        blocked += d(SimThreadState::Blocked);
        threads.push(ThreadBreakdown {
            name: a.name.clone(),
            busy: d(SimThreadState::Busy) / window_ns,
            blocked: d(SimThreadState::Blocked) / window_ns,
            waiting: d(SimThreadState::Waiting) / window_ns,
            other: d(SimThreadState::Other) / window_ns,
        });
    }
    NodeBreakdown {
        cpu_util_pct: 100.0 * busy / window_ns,
        blocked_pct: 100.0 * blocked / window_ns,
        threads,
    }
}

/// Renders per-thread breakdowns as the paper's profile bars, textually.
pub fn render_breakdown(threads: &[ThreadBreakdown]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:>6} {:>8} {:>8} {:>6}\n",
        "thread", "busy%", "blocked%", "waiting%", "other%"
    ));
    for t in threads {
        out.push_str(&format!(
            "{:<18} {:>6.1} {:>8.1} {:>8.1} {:>6.1}\n",
            t.name,
            100.0 * t.busy,
            100.0 * t.blocked,
            100.0 * t.waiting,
            100.0 * t.other,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;

    #[test]
    fn breakdown_diffs_window() {
        let sim = Sim::new(1);
        let node = sim.add_node("n", 1, 1.0);
        let ctx = sim.ctx();
        sim.spawn(node, "t", async move {
            loop {
                ctx.cpu(1_000).await;
                ctx.sleep(1_000).await;
            }
        });
        sim.run_until(1_000_000);
        let before = sim.thread_profiles();
        sim.run_until(2_000_000);
        let after = sim.thread_profiles();
        let report = node_breakdown(&before, &after, node, 1_000_000.0);
        assert_eq!(report.threads.len(), 1);
        assert!(
            (report.cpu_util_pct - 50.0).abs() < 10.0,
            "got {}",
            report.cpu_util_pct
        );
        let rendered = render_breakdown(&report.threads);
        assert!(rendered.contains("busy%"));
    }
}
