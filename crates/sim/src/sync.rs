//! Simulated synchronization primitives with state accounting.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

use crate::executor::{Kernel, SimCtx, SimThreadState, TaskId};

// ---------------------------------------------------------------------------
// SimMutex
// ---------------------------------------------------------------------------

struct MutexInner {
    locked: bool,
    waiters: VecDeque<(TaskId, Rc<Cell<bool>>)>,
    /// Extra nanoseconds added to a lock handoff per waiting thread —
    /// models cache-line bouncing / notify storms on hot locks (the
    /// ZooKeeper collapse knob; 0 for well-behaved locks).
    handoff_penalty_ns: u64,
    /// Cumulative number of contended acquisitions.
    contended: u64,
}

/// A simulated mutex. Contended acquisition parks the task in the
/// `Blocked` state — the quantity plotted in Figs. 5b/7/13b.
#[derive(Clone)]
pub struct SimMutex {
    k: Rc<RefCell<Kernel>>,
    inner: Rc<RefCell<MutexInner>>,
}

impl std::fmt::Debug for SimMutex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimMutex")
            .field("locked", &self.inner.borrow().locked)
            .finish()
    }
}

impl SimMutex {
    /// Creates a mutex bound to a simulation context.
    pub fn new(ctx: &SimCtx) -> Self {
        SimMutex {
            k: Rc::clone(&ctx.k),
            inner: Rc::new(RefCell::new(MutexInner {
                locked: false,
                waiters: VecDeque::new(),
                handoff_penalty_ns: 0,
                contended: 0,
            })),
        }
    }

    /// Sets the per-waiter handoff penalty (cache-bouncing model).
    #[must_use]
    pub fn with_handoff_penalty(self, ns_per_waiter: u64) -> Self {
        self.inner.borrow_mut().handoff_penalty_ns = ns_per_waiter;
        self
    }

    /// Number of acquisitions that had to wait.
    pub fn contended_count(&self) -> u64 {
        self.inner.borrow().contended
    }

    /// Acquires the mutex, parking in `Blocked` while contended.
    pub fn lock(&self) -> LockFuture {
        LockFuture {
            mutex: self.clone(),
            granted: Rc::new(Cell::new(false)),
            queued: false,
        }
    }
}

/// Future returned by [`SimMutex::lock`].
pub struct LockFuture {
    mutex: SimMutex,
    granted: Rc<Cell<bool>>,
    queued: bool,
}

impl Future for LockFuture {
    type Output = SimMutexGuard;

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        let task = Kernel::current_task();
        if self.granted.get() {
            // Handed off by the previous owner; we own the lock now.
            self.mutex
                .k
                .borrow_mut()
                .set_task_state(task, SimThreadState::Busy);
            return Poll::Ready(SimMutexGuard {
                mutex: self.mutex.clone(),
            });
        }
        let mut inner = self.mutex.inner.borrow_mut();
        if !inner.locked {
            inner.locked = true;
            return Poll::Ready(SimMutexGuard {
                mutex: self.mutex.clone(),
            });
        }
        if !self.queued {
            inner.contended += 1;
            inner.waiters.push_back((task, Rc::clone(&self.granted)));
            drop(inner);
            self.queued = true;
            self.mutex
                .k
                .borrow_mut()
                .set_task_state(task, SimThreadState::Blocked);
        }
        Poll::Pending
    }
}

/// RAII guard; unlocking hands the mutex to the oldest waiter.
pub struct SimMutexGuard {
    mutex: SimMutex,
}

impl std::fmt::Debug for SimMutexGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SimMutexGuard")
    }
}

impl Drop for SimMutexGuard {
    fn drop(&mut self) {
        let mut inner = self.mutex.inner.borrow_mut();
        if let Some((task, granted)) = inner.waiters.pop_front() {
            granted.set(true);
            let delay = inner.handoff_penalty_ns * (inner.waiters.len() as u64 + 1);
            drop(inner);
            let mut k = self.mutex.k.borrow_mut();
            let at = k.now() + delay;
            k.schedule_poll(at, task);
        } else {
            inner.locked = false;
        }
    }
}

// ---------------------------------------------------------------------------
// SimQueue
// ---------------------------------------------------------------------------

/// A task parked in `pop`, with the slot its value (or `None` on close)
/// is handed through. The outer `Option` distinguishes "not yet woken".
type PopWaiter<T> = (TaskId, Rc<RefCell<Option<Option<T>>>>);

struct QueueInner<T> {
    items: VecDeque<T>,
    capacity: usize,
    pop_waiters: VecDeque<PopWaiter<T>>,
    push_waiters: VecDeque<(TaskId, Rc<RefCell<Option<T>>>)>,
    closed: bool,
    // Occupancy statistics (Table I): sampled at every operation.
    samples: u64,
    sum_len: f64,
    sum_len_sq: f64,
    pushed: u64,
}

/// A simulated bounded FIFO queue: the inter-module channels of Fig. 3.
///
/// Popping an empty queue or pushing a full one parks the task in the
/// `Waiting` state (idle, per §VI-B).
pub struct SimQueue<T> {
    k: Rc<RefCell<Kernel>>,
    inner: Rc<RefCell<QueueInner<T>>>,
    name: Rc<str>,
}

impl<T> Clone for SimQueue<T> {
    fn clone(&self) -> Self {
        SimQueue {
            k: Rc::clone(&self.k),
            inner: Rc::clone(&self.inner),
            name: Rc::clone(&self.name),
        }
    }
}

impl<T> std::fmt::Debug for SimQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimQueue")
            .field("name", &self.name)
            .field("len", &self.len())
            .finish()
    }
}

impl<T> SimQueue<T> {
    /// Creates a bounded queue.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(ctx: &SimCtx, name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        SimQueue {
            k: Rc::clone(&ctx.k),
            inner: Rc::new(RefCell::new(QueueInner {
                items: VecDeque::new(),
                capacity,
                pop_waiters: VecDeque::new(),
                push_waiters: VecDeque::new(),
                closed: false,
                samples: 0,
                sum_len: 0.0,
                sum_len_sq: 0.0,
                pushed: 0,
            })),
            name: Rc::from(name.into()),
        }
    }

    /// The queue's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.inner.borrow().items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total items pushed.
    pub fn pushed(&self) -> u64 {
        self.inner.borrow().pushed
    }

    /// Mean and standard error of the occupancy, sampled at every
    /// operation (the Table I statistic).
    pub fn occupancy_stats(&self) -> (f64, f64) {
        let inner = self.inner.borrow();
        if inner.samples == 0 {
            return (0.0, 0.0);
        }
        let n = inner.samples as f64;
        let mean = inner.sum_len / n;
        let var = (inner.sum_len_sq / n - mean * mean).max(0.0);
        (mean, (var / n).sqrt())
    }

    /// Closes the queue: pending and future pops yield `None`.
    pub fn close(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.closed = true;
        let waiters: Vec<_> = inner.pop_waiters.drain(..).collect();
        let pushers: Vec<_> = inner.push_waiters.drain(..).collect();
        drop(inner);
        let mut k = self.k.borrow_mut();
        let now = k.now();
        for (task, slot) in waiters {
            *slot.borrow_mut() = Some(None);
            k.schedule_poll(now, task);
        }
        for (task, _staged) in pushers {
            k.schedule_poll(now, task);
        }
    }

    fn sample_locked(inner: &mut QueueInner<T>) {
        inner.samples += 1;
        let l = inner.items.len() as f64;
        inner.sum_len += l;
        inner.sum_len_sq += l * l;
    }

    /// Non-blocking pop.
    pub fn try_pop(&self) -> Option<T> {
        let mut inner = self.inner.borrow_mut();
        let item = inner.items.pop_front();
        if item.is_some() {
            // Admit a staged pusher, if any.
            if let Some((task, staged)) = inner.push_waiters.pop_front() {
                if let Some(v) = staged.borrow_mut().take() {
                    inner.items.push_back(v);
                }
                let mut k = self.k.borrow_mut();
                let now = k.now();
                k.schedule_poll(now, task);
            }
            Self::sample_locked(&mut inner);
        }
        item
    }

    /// Blocking pop; `None` once closed and drained.
    pub fn pop(&self) -> PopFuture<T> {
        PopFuture {
            queue: self.clone(),
            slot: Rc::new(RefCell::new(None)),
            queued: false,
        }
    }

    /// Blocking push; completes once the item is accepted. Returns
    /// `false` if the queue was closed.
    pub fn push(&self, item: T) -> PushFuture<T> {
        PushFuture {
            queue: self.clone(),
            staged: Rc::new(RefCell::new(Some(item))),
            queued: false,
        }
    }

    /// Non-blocking push; hands the item back when full/closed.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.borrow_mut();
        if inner.closed {
            return Err(item);
        }
        if let Some((task, slot)) = inner.pop_waiters.pop_front() {
            *slot.borrow_mut() = Some(Some(item));
            inner.pushed += 1;
            Self::sample_locked(&mut inner);
            drop(inner);
            let mut k = self.k.borrow_mut();
            let now = k.now();
            k.schedule_poll(now, task);
            return Ok(());
        }
        if inner.items.len() >= inner.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        inner.pushed += 1;
        Self::sample_locked(&mut inner);
        Ok(())
    }

    /// Push from kernel context (delivery queues); never blocks, ignores
    /// capacity (used by the network for final delivery).
    pub(crate) fn push_unbounded_kernel(&self, k: &mut Kernel, item: T) {
        let mut inner = self.inner.borrow_mut();
        if inner.closed {
            return;
        }
        inner.pushed += 1;
        if let Some((task, slot)) = inner.pop_waiters.pop_front() {
            *slot.borrow_mut() = Some(Some(item));
            Self::sample_locked(&mut inner);
            let now = k.now();
            k.schedule_poll(now, task);
            return;
        }
        inner.items.push_back(item);
        Self::sample_locked(&mut inner);
    }
}

/// Future returned by [`SimQueue::pop`].
pub struct PopFuture<T> {
    queue: SimQueue<T>,
    /// `None` = still waiting; `Some(None)` = closed; `Some(Some(v))`.
    slot: Rc<RefCell<Option<Option<T>>>>,
    queued: bool,
}

impl<T> Future for PopFuture<T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        let task = Kernel::current_task();
        if let Some(delivered) = self.slot.borrow_mut().take() {
            self.queue
                .k
                .borrow_mut()
                .set_task_state(task, SimThreadState::Busy);
            return Poll::Ready(delivered);
        }
        let this = self.get_mut();
        let mut inner = this.queue.inner.borrow_mut();
        if let Some(item) = inner.items.pop_front() {
            if let Some((ptask, staged)) = inner.push_waiters.pop_front() {
                if let Some(v) = staged.borrow_mut().take() {
                    inner.items.push_back(v);
                    inner.pushed += 1;
                }
                let mut k = this.queue.k.borrow_mut();
                let now = k.now();
                k.schedule_poll(now, ptask);
            }
            SimQueue::sample_locked(&mut inner);
            return Poll::Ready(Some(item));
        }
        if inner.closed {
            return Poll::Ready(None);
        }
        if !this.queued {
            inner.pop_waiters.push_back((task, Rc::clone(&this.slot)));
            drop(inner);
            this.queued = true;
            this.queue
                .k
                .borrow_mut()
                .set_task_state(task, SimThreadState::Waiting);
        }
        Poll::Pending
    }
}

/// Future returned by [`SimQueue::push`].
pub struct PushFuture<T> {
    queue: SimQueue<T>,
    staged: Rc<RefCell<Option<T>>>,
    queued: bool,
}

impl<T> Future for PushFuture<T> {
    type Output = bool;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        let task = Kernel::current_task();
        let this = self.get_mut();
        let mut inner = this.queue.inner.borrow_mut();
        if this.queued {
            // Woken: either our staged item was consumed, or the queue
            // closed.
            let consumed = this.staged.borrow().is_none();
            drop(inner);
            this.queue
                .k
                .borrow_mut()
                .set_task_state(task, SimThreadState::Busy);
            return Poll::Ready(consumed);
        }
        if inner.closed {
            return Poll::Ready(false);
        }
        let item = this.staged.borrow_mut().take().expect("push item present");
        if let Some((ptask, slot)) = inner.pop_waiters.pop_front() {
            *slot.borrow_mut() = Some(Some(item));
            inner.pushed += 1;
            SimQueue::sample_locked(&mut inner);
            drop(inner);
            let mut k = this.queue.k.borrow_mut();
            let now = k.now();
            k.schedule_poll(now, ptask);
            return Poll::Ready(true);
        }
        if inner.items.len() < inner.capacity {
            inner.items.push_back(item);
            inner.pushed += 1;
            SimQueue::sample_locked(&mut inner);
            return Poll::Ready(true);
        }
        // Full: stage the item and wait (backpressure, §V-E).
        *this.staged.borrow_mut() = Some(item);
        inner
            .push_waiters
            .push_back((task, Rc::clone(&this.staged)));
        drop(inner);
        this.queued = true;
        this.queue
            .k
            .borrow_mut()
            .set_task_state(task, SimThreadState::Waiting);
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use std::cell::Cell;

    #[test]
    fn queue_passes_items_fifo() {
        let sim = Sim::new(1);
        let node = sim.add_node("n", 2, 1.0);
        let ctx = sim.ctx();
        let q: SimQueue<u32> = SimQueue::new(&ctx, "q", 10);
        let got: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        {
            let q = q.clone();
            let got = Rc::clone(&got);
            sim.spawn(node, "consumer", async move {
                while let Some(v) = q.pop().await {
                    got.borrow_mut().push(v);
                }
            });
        }
        {
            let q = q.clone();
            let ctx = sim.ctx();
            sim.spawn(node, "producer", async move {
                for i in 0..5 {
                    ctx.sleep(100).await;
                    q.push(i).await;
                }
                q.close();
            });
        }
        sim.run_until(10_000);
        assert_eq!(*got.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn full_queue_blocks_pusher_as_waiting() {
        let sim = Sim::new(1);
        let node = sim.add_node("n", 2, 1.0);
        let ctx = sim.ctx();
        let q: SimQueue<u32> = SimQueue::new(&ctx, "q", 1);
        {
            let q = q.clone();
            sim.spawn(node, "producer", async move {
                q.push(1).await;
                q.push(2).await; // parks: capacity 1
                q.push(3).await;
            });
        }
        {
            let q = q.clone();
            let ctx = sim.ctx();
            sim.spawn(node, "slow-consumer", async move {
                loop {
                    ctx.sleep(10_000).await;
                    if q.pop().await.is_none() {
                        break;
                    }
                }
            });
        }
        sim.run_until(100_000);
        let profiles = sim.thread_profiles();
        let producer = &profiles[0];
        assert!(
            producer.ns[SimThreadState::Waiting as usize] >= 10_000,
            "producer waited on the full queue: {producer:?}"
        );
    }

    #[test]
    fn try_push_respects_capacity() {
        let sim = Sim::new(1);
        let ctx = sim.ctx();
        let q: SimQueue<u32> = SimQueue::new(&ctx, "q", 2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.try_pop(), Some(1));
        assert!(q.try_push(3).is_ok());
    }

    #[test]
    fn occupancy_stats_track_mean() {
        let sim = Sim::new(1);
        let ctx = sim.ctx();
        let q: SimQueue<u32> = SimQueue::new(&ctx, "q", 100);
        for i in 0..10 {
            q.try_push(i).unwrap();
        }
        let (mean, _se) = q.occupancy_stats();
        assert!(mean > 0.0 && mean <= 10.0);
    }

    #[test]
    fn mutex_excludes_and_counts_blocked_time() {
        let sim = Sim::new(1);
        let node = sim.add_node("n", 2, 1.0);
        let ctx = sim.ctx();
        let m = SimMutex::new(&ctx);
        let in_cs = Rc::new(Cell::new(0u32));
        let max_in_cs = Rc::new(Cell::new(0u32));
        for i in 0..3 {
            let ctx = sim.ctx();
            let m = m.clone();
            let in_cs = Rc::clone(&in_cs);
            let max_in_cs = Rc::clone(&max_in_cs);
            sim.spawn(node, format!("t{i}"), async move {
                for _ in 0..5 {
                    let _g = m.lock().await;
                    in_cs.set(in_cs.get() + 1);
                    max_in_cs.set(max_in_cs.get().max(in_cs.get()));
                    ctx.cpu(1_000).await;
                    in_cs.set(in_cs.get() - 1);
                }
            });
        }
        sim.run_until(1_000_000);
        assert_eq!(max_in_cs.get(), 1, "mutual exclusion holds");
        assert!(m.contended_count() > 0, "there was contention");
        let profiles = sim.thread_profiles();
        let blocked: u64 = profiles
            .iter()
            .map(|p| p.ns[SimThreadState::Blocked as usize])
            .sum();
        assert!(blocked > 0, "blocked time was accounted");
    }

    #[test]
    fn handoff_penalty_slows_contended_locks() {
        let run = |penalty: u64| {
            let sim = Sim::new(1);
            let node = sim.add_node("n", 4, 1.0);
            let ctx = sim.ctx();
            let m = SimMutex::new(&ctx).with_handoff_penalty(penalty);
            let end = Rc::new(Cell::new(0u64));
            for i in 0..4 {
                let ctx = sim.ctx();
                let m = m.clone();
                let end = Rc::clone(&end);
                sim.spawn(node, format!("t{i}"), async move {
                    for _ in 0..25 {
                        let _g = m.lock().await;
                        ctx.cpu(500).await;
                    }
                    end.set(end.get().max(ctx.now()));
                });
            }
            sim.run_until(100_000_000);
            end.get()
        };
        let cheap = run(0);
        let bouncy = run(5_000);
        assert!(
            bouncy > cheap * 2,
            "per-waiter handoff cost dominates: {bouncy} vs {cheap}"
        );
    }

    #[test]
    fn close_wakes_poppers() {
        let sim = Sim::new(1);
        let node = sim.add_node("n", 1, 1.0);
        let ctx = sim.ctx();
        let q: SimQueue<u32> = SimQueue::new(&ctx, "q", 4);
        let finished = Rc::new(Cell::new(false));
        {
            let q = q.clone();
            let finished = Rc::clone(&finished);
            sim.spawn(node, "popper", async move {
                assert!(q.pop().await.is_none());
                finished.set(true);
            });
        }
        {
            let q = q.clone();
            let ctx = sim.ctx();
            sim.spawn(node, "closer", async move {
                ctx.sleep(1_000).await;
                q.close();
            });
        }
        sim.run_until(10_000);
        assert!(finished.get());
    }
}
