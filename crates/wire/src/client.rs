//! Client ↔ replica messages.

use bytes::BytesMut;

use smr_types::ReplicaId;

use crate::codec::{Codec, DecodeError, WireReader, WireWriter};
use crate::request::{Reply, Request};

/// Messages exchanged between clients and the ClientIO module.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ClientMsg {
    /// A client submits a request for ordering and execution.
    Request(Request),
    /// The replica answers a request (possibly from the reply cache).
    Reply(Reply),
    /// The contacted replica is not the leader; `leader`, when known,
    /// names the replica the client should contact instead.
    Redirect {
        /// Best known leader, if any.
        leader: Option<ReplicaId>,
    },
}

const TAG_REQUEST: u8 = 1;
const TAG_REPLY: u8 = 2;
const TAG_REDIRECT: u8 = 3;

impl Codec for ClientMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ClientMsg::Request(req) => {
                WireWriter::new(buf).u8(TAG_REQUEST);
                req.encode(buf);
            }
            ClientMsg::Reply(rep) => {
                WireWriter::new(buf).u8(TAG_REPLY);
                rep.encode(buf);
            }
            ClientMsg::Redirect { leader } => {
                let mut w = WireWriter::new(buf);
                w.u8(TAG_REDIRECT);
                match leader {
                    Some(r) => {
                        w.boolean(true);
                        w.u16(r.0);
                    }
                    None => w.boolean(false),
                }
            }
        }
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            TAG_REQUEST => Ok(ClientMsg::Request(Request::decode_from(r)?)),
            TAG_REPLY => Ok(ClientMsg::Reply(Reply::decode_from(r)?)),
            TAG_REDIRECT => {
                let has = r.boolean()?;
                let leader = if has { Some(ReplicaId(r.u16()?)) } else { None };
                Ok(ClientMsg::Redirect { leader })
            }
            other => Err(DecodeError::new(
                "ClientMsg",
                format!("unknown tag {other}"),
            )),
        }
    }

    fn encoded_len(&self) -> usize {
        match self {
            ClientMsg::Request(req) => 1 + req.encoded_len(),
            ClientMsg::Reply(rep) => 1 + rep.encoded_len(),
            ClientMsg::Redirect { leader } => 1 + 1 + if leader.is_some() { 2 } else { 0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr_types::{ClientId, RequestId, SeqNum};

    fn roundtrip(msg: ClientMsg) {
        let bytes = msg.encode_to_vec();
        assert_eq!(bytes.len(), msg.encoded_len());
        assert_eq!(ClientMsg::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn variants_roundtrip() {
        roundtrip(ClientMsg::Request(Request::new(
            RequestId::new(ClientId(1), SeqNum(2)),
            vec![0u8; 128],
        )));
        roundtrip(ClientMsg::Reply(Reply::new(
            RequestId::new(ClientId(1), SeqNum(2)),
            vec![0; 8],
        )));
        roundtrip(ClientMsg::Redirect {
            leader: Some(ReplicaId(2)),
        });
        roundtrip(ClientMsg::Redirect { leader: None });
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(ClientMsg::decode(&[0]).is_err());
    }
}
