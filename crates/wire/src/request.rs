//! Client requests, replies, and batches — the values ordered by consensus.

use bytes::BytesMut;

use smr_types::{ClientId, RequestId, SeqNum};

use crate::codec::{Codec, DecodeError, WireReader, WireWriter};

/// A client request: a unique id plus an opaque service payload.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Request {
    /// Unique identifier (client id + client sequence number).
    pub id: RequestId,
    /// Opaque payload interpreted by the replicated service.
    pub payload: Vec<u8>,
}

impl Request {
    /// Creates a request.
    pub fn new(id: RequestId, payload: Vec<u8>) -> Self {
        Request { id, payload }
    }

    /// Size this request contributes to a batch (the quantity compared
    /// against the paper's `BSZ`).
    pub fn wire_size(&self) -> usize {
        self.encoded_len()
    }
}

impl Codec for Request {
    fn encode(&self, buf: &mut BytesMut) {
        let mut w = WireWriter::new(buf);
        w.u64(self.id.client.0);
        w.u64(self.id.seq.0);
        w.bytes(&self.payload);
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        let client = ClientId(r.u64()?);
        let seq = SeqNum(r.u64()?);
        let payload = r.bytes()?;
        Ok(Request {
            id: RequestId::new(client, seq),
            payload,
        })
    }

    fn encoded_len(&self) -> usize {
        8 + 8 + 4 + self.payload.len()
    }
}

/// A reply to a client request.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Reply {
    /// The request this reply answers.
    pub id: RequestId,
    /// Opaque reply payload produced by the service.
    pub payload: Vec<u8>,
}

impl Reply {
    /// Creates a reply.
    pub fn new(id: RequestId, payload: Vec<u8>) -> Self {
        Reply { id, payload }
    }
}

impl Codec for Reply {
    fn encode(&self, buf: &mut BytesMut) {
        let mut w = WireWriter::new(buf);
        w.u64(self.id.client.0);
        w.u64(self.id.seq.0);
        w.bytes(&self.payload);
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        let client = ClientId(r.u64()?);
        let seq = SeqNum(r.u64()?);
        let payload = r.bytes()?;
        Ok(Reply {
            id: RequestId::new(client, seq),
            payload,
        })
    }

    fn encoded_len(&self) -> usize {
        8 + 8 + 4 + self.payload.len()
    }
}

/// A batch of requests: the unit ordered by one consensus instance
/// (§III-B — batching groups several client requests in the same ballot).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Batch {
    /// The requests, in the order they will execute.
    pub requests: Vec<Request>,
}

impl Batch {
    /// Creates a batch from requests.
    pub fn new(requests: Vec<Request>) -> Self {
        Batch { requests }
    }

    /// An empty batch (used as a no-op filler value during view change).
    pub fn empty() -> Self {
        Batch {
            requests: Vec::new(),
        }
    }

    /// Whether the batch holds no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.requests.len()
    }
}

impl Codec for Batch {
    fn encode(&self, buf: &mut BytesMut) {
        WireWriter::new(buf).u32(self.requests.len() as u32);
        for req in &self.requests {
            req.encode(buf);
        }
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        let n = r.u32()? as usize;
        // Cap pre-allocation: a malicious length must not OOM us.
        let mut requests = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            requests.push(Request::decode_from(r)?);
        }
        Ok(Batch { requests })
    }

    fn encoded_len(&self) -> usize {
        4 + self
            .requests
            .iter()
            .map(Request::encoded_len)
            .sum::<usize>()
    }
}

impl FromIterator<Request> for Batch {
    fn from_iter<I: IntoIterator<Item = Request>>(iter: I) -> Self {
        Batch {
            requests: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(c: u64, s: u64, payload: &[u8]) -> Request {
        Request::new(RequestId::new(ClientId(c), SeqNum(s)), payload.to_vec())
    }

    #[test]
    fn request_roundtrip() {
        let r = req(3, 9, b"payload bytes");
        let bytes = r.encode_to_vec();
        assert_eq!(bytes.len(), r.encoded_len());
        assert_eq!(Request::decode(&bytes).unwrap(), r);
    }

    #[test]
    fn empty_payload_roundtrip() {
        let r = req(0, 0, b"");
        assert_eq!(Request::decode(&r.encode_to_vec()).unwrap(), r);
    }

    #[test]
    fn reply_roundtrip() {
        let r = Reply::new(RequestId::new(ClientId(1), SeqNum(2)), vec![1, 2, 3]);
        assert_eq!(Reply::decode(&r.encode_to_vec()).unwrap(), r);
    }

    #[test]
    fn batch_roundtrip() {
        let b = Batch::new(vec![req(1, 1, b"a"), req(2, 7, b"bb"), req(3, 0, b"")]);
        let bytes = b.encode_to_vec();
        assert_eq!(bytes.len(), b.encoded_len());
        assert_eq!(Batch::decode(&bytes).unwrap(), b);
    }

    #[test]
    fn empty_batch_roundtrip() {
        let b = Batch::empty();
        assert!(b.is_empty());
        assert_eq!(Batch::decode(&b.encode_to_vec()).unwrap(), b);
    }

    #[test]
    fn batch_from_iterator() {
        let b: Batch = (0..5).map(|i| req(i, 0, b"x")).collect();
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn wire_size_matches_128_byte_workload() {
        // The paper's workload: 128-byte request payloads.
        let r = req(1, 1, &[0u8; 128]);
        assert_eq!(r.wire_size(), 128 + 20);
    }

    #[test]
    fn truncated_batch_errors() {
        let b = Batch::new(vec![req(1, 1, b"abc")]);
        let bytes = b.encode_to_vec();
        assert!(Batch::decode(&bytes[..bytes.len() - 1]).is_err());
    }
}
