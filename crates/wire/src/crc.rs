//! CRC-32 (IEEE 802.3) checksum used by the frame layer.
//!
//! Implemented from scratch — part of the "no external serialization
//! machinery" substrate. The frame layer checksums every message, so the
//! hot path uses slice-by-8: eight lazily-built 256-entry tables let one
//! step consume eight input bytes (two little-endian words) instead of
//! one, with a bytewise tail for the remainder. The plain bytewise
//! implementation is kept as [`crc32_bytewise`], the reference the
//! equivalence tests and benches compare against.

use std::sync::OnceLock;

/// `TABLES[0]` is the classic bytewise table; `TABLES[k][b]` is the CRC
/// of byte `b` followed by `k` zero bytes, which is what lets eight
/// table lookups advance the CRC over eight bytes at once.
fn tables() -> &'static [[u32; 256]; 8] {
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for i in 0..256u32 {
            let mut c = i;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            t[0][i as usize] = c;
        }
        for k in 1..8 {
            for i in 0..256 {
                let prev = t[k - 1][i];
                t[k][i] = t[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            }
        }
        t
    })
}

/// Computes the CRC-32 (IEEE) checksum of `data` (slice-by-8).
///
/// # Examples
///
/// ```
/// // Standard test vector.
/// assert_eq!(smr_wire::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let t = tables();
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().expect("4 bytes")) ^ c;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().expect("4 bytes"));
        c = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// The one-byte-per-step reference implementation.
///
/// Exists so tests and benches can check the slice-by-8 fast path
/// against an independently simple formulation; production code should
/// call [`crc32`].
pub fn crc32_bytewise(data: &[u8]) -> u32 {
    let t = tables();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn bytewise_reference_matches_known_vectors() {
        assert_eq!(crc32_bytewise(b""), 0);
        assert_eq!(crc32_bytewise(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32_bytewise(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"hello world".to_vec();
        let orig = crc32(&data);
        data[3] ^= 0x01;
        assert_ne!(crc32(&data), orig);
    }

    #[test]
    fn slice_by_8_equals_bytewise_on_random_buffers() {
        // Deterministic xorshift so failures reproduce; lengths cover the
        // empty, sub-word, word-aligned, and long-with-tail cases.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 63, 64, 255, 1024, 4093] {
            let buf: Vec<u8> = (0..len).map(|_| (next() & 0xFF) as u8).collect();
            assert_eq!(crc32(&buf), crc32_bytewise(&buf), "mismatch at len {len}");
        }
    }

    #[test]
    fn all_offsets_into_a_buffer_agree() {
        let buf: Vec<u8> = (0..257u32).map(|i| (i * 31 % 251) as u8).collect();
        for start in 0..16 {
            for end in start..buf.len() {
                let s = &buf[start..end];
                assert_eq!(crc32(s), crc32_bytewise(s));
            }
        }
    }
}
