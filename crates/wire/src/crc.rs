//! CRC-32 (IEEE 802.3) checksum used by the frame layer.
//!
//! Implemented from scratch with a lazily-built 256-entry lookup table —
//! part of the "no external serialization machinery" substrate.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    })
}

/// Computes the CRC-32 (IEEE) checksum of `data`.
///
/// # Examples
///
/// ```
/// // Standard test vector.
/// assert_eq!(smr_wire::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let table = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"hello world".to_vec();
        let orig = crc32(&data);
        data[3] ^= 0x01;
        assert_ne!(crc32(&data), orig);
    }
}
