//! Low-level encode/decode primitives and the [`Codec`] trait.

use std::error::Error;
use std::fmt;

use bytes::{BufMut, BytesMut};

/// Error produced when decoding a malformed message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    what: &'static str,
    detail: String,
}

impl DecodeError {
    /// Creates a decode error for the item `what` with free-form detail.
    pub fn new(what: &'static str, detail: impl Into<String>) -> Self {
        DecodeError {
            what,
            detail: detail.into(),
        }
    }

    /// The item that failed to decode.
    pub fn what(&self) -> &'static str {
        self.what
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failed to decode {}: {}", self.what, self.detail)
    }
}

impl Error for DecodeError {}

/// Sequential writer over a [`BytesMut`].
#[derive(Debug)]
pub struct WireWriter<'a> {
    buf: &'a mut BytesMut,
}

impl<'a> WireWriter<'a> {
    /// Wraps a buffer.
    pub fn new(buf: &'a mut BytesMut) -> Self {
        WireWriter { buf }
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Writes a little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.put_u16_le(v);
    }

    /// Writes a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Writes a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Writes a length-prefixed byte string (u32 length).
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.put_slice(v);
    }

    /// Writes a bool as one byte.
    pub fn boolean(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
}

/// Sequential reader over a byte slice.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wraps a slice.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::new(
                what,
                format!("need {n} bytes, {} remaining", self.remaining()),
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian u16.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        let s = self.take(2, "u16")?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let s = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let s = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(s.try_into().expect("slice of 8")))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let len = self.u32()? as usize;
        Ok(self.take(len, "bytes body")?.to_vec())
    }

    /// Reads a bool.
    pub fn boolean(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(DecodeError::new("bool", format!("invalid value {v}"))),
        }
    }

    /// Fails unless the whole input was consumed.
    pub fn finish(self, what: &'static str) -> Result<(), DecodeError> {
        if self.remaining() != 0 {
            return Err(DecodeError::new(
                what,
                format!("{} trailing bytes", self.remaining()),
            ));
        }
        Ok(())
    }
}

/// A type with a binary wire representation.
pub trait Codec: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Decodes a value from `reader`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on malformed input.
    fn decode_from(reader: &mut WireReader<'_>) -> Result<Self, DecodeError>;

    /// Exact number of bytes [`Codec::encode`] will append.
    fn encoded_len(&self) -> usize;

    /// Encodes into a fresh vector.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode(&mut buf);
        debug_assert_eq!(buf.len(), self.encoded_len(), "encoded_len must be exact");
        buf.to_vec()
    }

    /// Decodes a value that occupies the whole of `bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on malformed or trailing input.
    fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut reader = WireReader::new(bytes);
        let v = Self::decode_from(&mut reader)?;
        reader.finish("message")?;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        let mut buf = BytesMut::new();
        let mut w = WireWriter::new(&mut buf);
        w.u8(7);
        w.u16(513);
        w.u32(70_000);
        w.u64(1 << 40);
        w.bytes(b"hello");
        w.boolean(true);
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 513);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert!(r.boolean().unwrap());
        r.finish("test").unwrap();
    }

    #[test]
    fn short_input_errors() {
        let mut r = WireReader::new(&[1, 2]);
        assert!(r.u32().is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let r = WireReader::new(&[1]);
        assert!(r.finish("test").is_err());
    }

    #[test]
    fn invalid_bool_rejected() {
        let mut r = WireReader::new(&[2]);
        assert!(r.boolean().is_err());
    }

    #[test]
    fn bytes_length_beyond_input_errors() {
        // Declares 100 bytes but provides 1.
        let mut buf = BytesMut::new();
        WireWriter::new(&mut buf).u32(100);
        buf.extend_from_slice(&[0]);
        let mut r = WireReader::new(&buf);
        assert!(r.bytes().is_err());
    }

    #[test]
    fn decode_error_display() {
        let e = DecodeError::new("u8", "need 1 bytes, 0 remaining");
        assert_eq!(
            e.to_string(),
            "failed to decode u8: need 1 bytes, 0 remaining"
        );
        assert_eq!(e.what(), "u8");
    }
}
