//! Wire format of the replication stack: message types, binary codec, and
//! length-prefixed framing.
//!
//! Serialization and deserialization cost is a first-class quantity in the
//! paper (ClientIO and ReplicaIO threads spend much of their time
//! encoding/decoding — §VI-B), so the codec is hand-rolled, allocation
//! conscious, and benchmarked (`smr-bench/benches/codec.rs`) rather than
//! delegated to a serialization framework.
//!
//! Three protocol layers share the codec:
//!
//! * [`ClientMsg`] — client ↔ replica (requests, replies, redirects);
//! * [`ProtocolMsg`] — replica ↔ replica (Paxos phases 1/2, catch-up,
//!   heartbeats);
//! * [`Frame`] — length + CRC framing used by the TCP transport.
//!
//! # Examples
//!
//! ```
//! use smr_types::{ClientId, RequestId, SeqNum};
//! use smr_wire::{ClientMsg, Codec, Request};
//!
//! let msg = ClientMsg::Request(Request::new(
//!     RequestId::new(ClientId(7), SeqNum(1)),
//!     b"set x=1".to_vec(),
//! ));
//! let bytes = msg.encode_to_vec();
//! let decoded = ClientMsg::decode(&bytes)?;
//! assert_eq!(msg, decoded);
//! # Ok::<(), smr_wire::DecodeError>(())
//! ```

mod client;
mod codec;
mod crc;
mod frame;
mod protocol;
mod request;

pub use client::ClientMsg;
pub use codec::{Codec, DecodeError, WireReader, WireWriter};
pub use crc::{crc32, crc32_bytewise};
pub use frame::Frame;
pub use frame::{FrameDecoder, FrameError, MAX_FRAME_LEN};
pub use protocol::{AcceptedEntry, ProtocolMsg};
pub use request::{Batch, Reply, Request};
