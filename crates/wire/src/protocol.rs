//! Replica-to-replica protocol messages (Paxos phases, catch-up,
//! failure-detector heartbeats).

use bytes::BytesMut;

use smr_types::{ReplicaId, Slot, View};

use crate::codec::{Codec, DecodeError, WireReader, WireWriter};
use crate::request::Batch;

/// One accepted-but-undecided log entry reported in a `Promise` (Phase 1b).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AcceptedEntry {
    /// The slot of the entry.
    pub slot: Slot,
    /// The view in which the value was accepted.
    pub view: View,
    /// The accepted value.
    pub batch: Batch,
}

impl Codec for AcceptedEntry {
    fn encode(&self, buf: &mut BytesMut) {
        {
            let mut w = WireWriter::new(buf);
            w.u64(self.slot.0);
            w.u64(self.view.0);
        }
        self.batch.encode(buf);
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        let slot = Slot(r.u64()?);
        let view = View(r.u64()?);
        let batch = Batch::decode_from(r)?;
        Ok(AcceptedEntry { slot, view, batch })
    }

    fn encoded_len(&self) -> usize {
        8 + 8 + self.batch.encoded_len()
    }
}

/// Replica-to-replica messages of the replication protocol.
///
/// The naming follows the paper's description of Paxos (§III-A): a leader
/// executes *ballots* identified by a [`View`]; `Propose`/`Accept` are the
/// Phase 2a/2b messages whose round-trip dominates instance latency
/// (Fig. 10b).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ProtocolMsg {
    /// Phase 1a: a replica claiming leadership of `view` asks peers for
    /// their accepted entries from `first_unstable` onward.
    Prepare {
        /// The view being prepared.
        view: View,
        /// First slot not known decided by the new leader.
        first_unstable: Slot,
    },
    /// Phase 1b: an acceptor promises not to accept in lower views and
    /// reports previously accepted entries.
    Promise {
        /// The view being promised.
        view: View,
        /// Highest slot this acceptor knows to be decided, plus one.
        decided_upto: Slot,
        /// Accepted-but-undecided entries at or above the leader's
        /// `first_unstable`.
        accepted: Vec<AcceptedEntry>,
    },
    /// Phase 2a: the leader of `view` proposes `batch` for `slot`.
    Propose {
        /// The proposing view.
        view: View,
        /// The consensus instance.
        slot: Slot,
        /// The proposed value.
        batch: Batch,
    },
    /// Phase 2b: an acceptor accepted the proposal of `view` for `slot`.
    /// Broadcast to all replicas so every replica learns decisions
    /// directly.
    Accept {
        /// The accepting view.
        view: View,
        /// The accepted instance.
        slot: Slot,
    },
    /// Catch-up request: ask a peer for the decided values of slots in
    /// `[from, to)` (§III, catch-up/state transfer task).
    CatchupQuery {
        /// First wanted slot.
        from: Slot,
        /// One past the last wanted slot.
        to: Slot,
    },
    /// Catch-up response carrying decided values.
    CatchupReply {
        /// Highest decided slot of the responder, plus one.
        decided_upto: Slot,
        /// Decided `(slot, value)` pairs.
        entries: Vec<(Slot, Batch)>,
    },
    /// Failure-detector heartbeat from the leader of `view`.
    Heartbeat {
        /// The sender's current view.
        view: View,
        /// Highest slot the sender knows decided, plus one (lets idle
        /// followers detect they are behind and trigger catch-up).
        decided_upto: Slot,
    },
    /// A replica announces it suspects the leader of `view` and asks the
    /// natural next leader to take over (vote for view advancement).
    Suspect {
        /// The suspected view.
        view: View,
        /// The replica raising the suspicion.
        from: ReplicaId,
    },
    /// Snapshot transfer: a peer that has compacted the slots a straggler
    /// asked for ships its service state instead. The receiver restores
    /// the state, fast-forwards its log to `applied_upto`, and resumes
    /// normal catch-up from there.
    Snapshot {
        /// First slot NOT covered by the snapshot (exclusive watermark).
        applied_upto: Slot,
        /// The sender's state digest at the watermark, for verification.
        state_hash: u64,
        /// The service-defined serialized state.
        state: Vec<u8>,
    },
}

const TAG_PREPARE: u8 = 1;
const TAG_PROMISE: u8 = 2;
const TAG_PROPOSE: u8 = 3;
const TAG_ACCEPT: u8 = 4;
const TAG_CATCHUP_QUERY: u8 = 5;
const TAG_CATCHUP_REPLY: u8 = 6;
const TAG_HEARTBEAT: u8 = 7;
const TAG_SUSPECT: u8 = 8;
const TAG_SNAPSHOT: u8 = 9;

impl ProtocolMsg {
    /// Short human-readable name of the message kind.
    pub fn kind(&self) -> &'static str {
        match self {
            ProtocolMsg::Prepare { .. } => "Prepare",
            ProtocolMsg::Promise { .. } => "Promise",
            ProtocolMsg::Propose { .. } => "Propose",
            ProtocolMsg::Accept { .. } => "Accept",
            ProtocolMsg::CatchupQuery { .. } => "CatchupQuery",
            ProtocolMsg::CatchupReply { .. } => "CatchupReply",
            ProtocolMsg::Heartbeat { .. } => "Heartbeat",
            ProtocolMsg::Suspect { .. } => "Suspect",
            ProtocolMsg::Snapshot { .. } => "Snapshot",
        }
    }
}

impl Codec for ProtocolMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ProtocolMsg::Prepare {
                view,
                first_unstable,
            } => {
                let mut w = WireWriter::new(buf);
                w.u8(TAG_PREPARE);
                w.u64(view.0);
                w.u64(first_unstable.0);
            }
            ProtocolMsg::Promise {
                view,
                decided_upto,
                accepted,
            } => {
                {
                    let mut w = WireWriter::new(buf);
                    w.u8(TAG_PROMISE);
                    w.u64(view.0);
                    w.u64(decided_upto.0);
                    w.u32(accepted.len() as u32);
                }
                for e in accepted {
                    e.encode(buf);
                }
            }
            ProtocolMsg::Propose { view, slot, batch } => {
                {
                    let mut w = WireWriter::new(buf);
                    w.u8(TAG_PROPOSE);
                    w.u64(view.0);
                    w.u64(slot.0);
                }
                batch.encode(buf);
            }
            ProtocolMsg::Accept { view, slot } => {
                let mut w = WireWriter::new(buf);
                w.u8(TAG_ACCEPT);
                w.u64(view.0);
                w.u64(slot.0);
            }
            ProtocolMsg::CatchupQuery { from, to } => {
                let mut w = WireWriter::new(buf);
                w.u8(TAG_CATCHUP_QUERY);
                w.u64(from.0);
                w.u64(to.0);
            }
            ProtocolMsg::CatchupReply {
                decided_upto,
                entries,
            } => {
                {
                    let mut w = WireWriter::new(buf);
                    w.u8(TAG_CATCHUP_REPLY);
                    w.u64(decided_upto.0);
                    w.u32(entries.len() as u32);
                }
                for (slot, batch) in entries {
                    WireWriter::new(buf).u64(slot.0);
                    batch.encode(buf);
                }
            }
            ProtocolMsg::Heartbeat { view, decided_upto } => {
                let mut w = WireWriter::new(buf);
                w.u8(TAG_HEARTBEAT);
                w.u64(view.0);
                w.u64(decided_upto.0);
            }
            ProtocolMsg::Suspect { view, from } => {
                let mut w = WireWriter::new(buf);
                w.u8(TAG_SUSPECT);
                w.u64(view.0);
                w.u16(from.0);
            }
            ProtocolMsg::Snapshot {
                applied_upto,
                state_hash,
                state,
            } => {
                let mut w = WireWriter::new(buf);
                w.u8(TAG_SNAPSHOT);
                w.u64(applied_upto.0);
                w.u64(*state_hash);
                w.bytes(state);
            }
        }
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        let tag = r.u8()?;
        match tag {
            TAG_PREPARE => Ok(ProtocolMsg::Prepare {
                view: View(r.u64()?),
                first_unstable: Slot(r.u64()?),
            }),
            TAG_PROMISE => {
                let view = View(r.u64()?);
                let decided_upto = Slot(r.u64()?);
                let n = r.u32()? as usize;
                let mut accepted = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    accepted.push(AcceptedEntry::decode_from(r)?);
                }
                Ok(ProtocolMsg::Promise {
                    view,
                    decided_upto,
                    accepted,
                })
            }
            TAG_PROPOSE => {
                let view = View(r.u64()?);
                let slot = Slot(r.u64()?);
                let batch = Batch::decode_from(r)?;
                Ok(ProtocolMsg::Propose { view, slot, batch })
            }
            TAG_ACCEPT => Ok(ProtocolMsg::Accept {
                view: View(r.u64()?),
                slot: Slot(r.u64()?),
            }),
            TAG_CATCHUP_QUERY => Ok(ProtocolMsg::CatchupQuery {
                from: Slot(r.u64()?),
                to: Slot(r.u64()?),
            }),
            TAG_CATCHUP_REPLY => {
                let decided_upto = Slot(r.u64()?);
                let n = r.u32()? as usize;
                let mut entries = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let slot = Slot(r.u64()?);
                    let batch = Batch::decode_from(r)?;
                    entries.push((slot, batch));
                }
                Ok(ProtocolMsg::CatchupReply {
                    decided_upto,
                    entries,
                })
            }
            TAG_HEARTBEAT => Ok(ProtocolMsg::Heartbeat {
                view: View(r.u64()?),
                decided_upto: Slot(r.u64()?),
            }),
            TAG_SUSPECT => Ok(ProtocolMsg::Suspect {
                view: View(r.u64()?),
                from: ReplicaId(r.u16()?),
            }),
            TAG_SNAPSHOT => Ok(ProtocolMsg::Snapshot {
                applied_upto: Slot(r.u64()?),
                state_hash: r.u64()?,
                state: r.bytes()?,
            }),
            other => Err(DecodeError::new(
                "ProtocolMsg",
                format!("unknown tag {other}"),
            )),
        }
    }

    fn encoded_len(&self) -> usize {
        match self {
            ProtocolMsg::Prepare { .. } => 1 + 8 + 8,
            ProtocolMsg::Promise { accepted, .. } => {
                1 + 8
                    + 8
                    + 4
                    + accepted
                        .iter()
                        .map(AcceptedEntry::encoded_len)
                        .sum::<usize>()
            }
            ProtocolMsg::Propose { batch, .. } => 1 + 8 + 8 + batch.encoded_len(),
            ProtocolMsg::Accept { .. } => 1 + 8 + 8,
            ProtocolMsg::CatchupQuery { .. } => 1 + 8 + 8,
            ProtocolMsg::CatchupReply { entries, .. } => {
                1 + 8
                    + 4
                    + entries
                        .iter()
                        .map(|(_, b)| 8 + b.encoded_len())
                        .sum::<usize>()
            }
            ProtocolMsg::Heartbeat { .. } => 1 + 8 + 8,
            ProtocolMsg::Suspect { .. } => 1 + 8 + 2,
            ProtocolMsg::Snapshot { state, .. } => 1 + 8 + 8 + 4 + state.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;
    use smr_types::{ClientId, RequestId, SeqNum};

    fn sample_batch() -> Batch {
        Batch::new(vec![
            Request::new(RequestId::new(ClientId(1), SeqNum(1)), vec![1, 2, 3]),
            Request::new(RequestId::new(ClientId(2), SeqNum(9)), vec![]),
        ])
    }

    fn roundtrip(msg: ProtocolMsg) {
        let bytes = msg.encode_to_vec();
        assert_eq!(
            bytes.len(),
            msg.encoded_len(),
            "encoded_len exact for {}",
            msg.kind()
        );
        assert_eq!(ProtocolMsg::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(ProtocolMsg::Prepare {
            view: View(3),
            first_unstable: Slot(10),
        });
        roundtrip(ProtocolMsg::Promise {
            view: View(3),
            decided_upto: Slot(5),
            accepted: vec![AcceptedEntry {
                slot: Slot(6),
                view: View(2),
                batch: sample_batch(),
            }],
        });
        roundtrip(ProtocolMsg::Propose {
            view: View(1),
            slot: Slot(0),
            batch: sample_batch(),
        });
        roundtrip(ProtocolMsg::Accept {
            view: View(1),
            slot: Slot(0),
        });
        roundtrip(ProtocolMsg::CatchupQuery {
            from: Slot(2),
            to: Slot(8),
        });
        roundtrip(ProtocolMsg::CatchupReply {
            decided_upto: Slot(9),
            entries: vec![(Slot(2), sample_batch()), (Slot(3), Batch::empty())],
        });
        roundtrip(ProtocolMsg::Heartbeat {
            view: View(0),
            decided_upto: Slot(0),
        });
        roundtrip(ProtocolMsg::Suspect {
            view: View(7),
            from: ReplicaId(2),
        });
        roundtrip(ProtocolMsg::Snapshot {
            applied_upto: Slot(128),
            state_hash: 0xDEAD_BEEF_CAFE_F00D,
            state: vec![7u8; 64],
        });
        roundtrip(ProtocolMsg::Snapshot {
            applied_upto: Slot(0),
            state_hash: 0,
            state: vec![],
        });
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(ProtocolMsg::decode(&[99]).is_err());
    }

    #[test]
    fn kind_names() {
        assert_eq!(
            ProtocolMsg::Accept {
                view: View(0),
                slot: Slot(0)
            }
            .kind(),
            "Accept"
        );
    }

    #[test]
    fn propose_size_fits_ethernet_frame_with_default_bsz() {
        // BSZ=1300 was chosen by the paper so one proposal fits one frame.
        let reqs: Vec<Request> = (0..8)
            .map(|i| Request::new(RequestId::new(ClientId(i), SeqNum(1)), vec![0u8; 128]))
            .collect();
        let msg = ProtocolMsg::Propose {
            view: View(1),
            slot: Slot(1),
            batch: Batch::new(reqs),
        };
        assert!(
            msg.encoded_len() < 1448,
            "proposal of 8x128B requests fits one MTU"
        );
    }
}
