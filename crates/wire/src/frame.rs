//! Length-prefixed, checksummed framing for stream transports.
//!
//! Layout of one frame on the wire:
//!
//! ```text
//! +----------------+----------------+=================+
//! | payload length | CRC-32 of body |   payload ...   |
//! |   u32 LE       |    u32 LE      |                 |
//! +----------------+----------------+=================+
//! ```

use std::error::Error;
use std::fmt;

use bytes::{BufMut, BytesMut};

use crate::crc::crc32;

/// Maximum accepted payload length (16 MiB): bounds memory per connection
/// and rejects garbage length prefixes after connection desync.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Errors produced by the frame decoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Declared payload length exceeds [`MAX_FRAME_LEN`].
    TooLarge(usize),
    /// CRC mismatch: the frame was corrupted in transit.
    BadChecksum {
        /// Checksum carried by the frame header.
        expected: u32,
        /// Checksum computed over the received payload.
        actual: u32,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
            FrameError::BadChecksum { expected, actual } => {
                write!(
                    f,
                    "frame checksum mismatch: header {expected:#x}, computed {actual:#x}"
                )
            }
        }
    }
}

impl Error for FrameError {}

/// Frame encoding: writes `payload` as one frame into `buf`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Frame;

impl Frame {
    /// Bytes of framing overhead per frame.
    pub const HEADER_LEN: usize = 8;

    /// Appends a framed copy of `payload` to `buf`.
    pub fn encode(payload: &[u8], buf: &mut BytesMut) {
        buf.put_u32_le(payload.len() as u32);
        buf.put_u32_le(crc32(payload));
        buf.put_slice(payload);
    }

    /// Encodes into a fresh vector.
    pub fn encode_to_vec(payload: &[u8]) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(Self::HEADER_LEN + payload.len());
        Self::encode(payload, &mut buf);
        buf.to_vec()
    }
}

/// Incremental frame decoder for a byte stream.
///
/// Feed arbitrary chunks with [`FrameDecoder::extend`]; extract complete
/// payloads with [`FrameDecoder::next_frame`].
///
/// # Examples
///
/// ```
/// use smr_wire::{Frame, FrameDecoder};
///
/// let mut dec = FrameDecoder::new();
/// let wire = Frame::encode_to_vec(b"hello");
/// dec.extend(&wire[..3]); // partial chunk
/// assert!(dec.next_frame()?.is_none());
/// dec.extend(&wire[3..]);
/// assert_eq!(dec.next_frame()?.unwrap(), b"hello");
/// # Ok::<(), smr_wire::FrameError>(())
/// ```
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: BytesMut,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends received bytes to the internal buffer.
    pub fn extend(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Number of buffered, not-yet-decoded bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Extracts the next complete frame payload, if any.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] for oversized or corrupt frames; the
    /// connection should be dropped, as the stream can no longer be
    /// trusted to be in sync.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        if self.buf.len() < Frame::HEADER_LEN {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(FrameError::TooLarge(len));
        }
        let expected = u32::from_le_bytes([self.buf[4], self.buf[5], self.buf[6], self.buf[7]]);
        if self.buf.len() < Frame::HEADER_LEN + len {
            return Ok(None);
        }
        let frame = self.buf.split_to(Frame::HEADER_LEN + len);
        let payload = frame[Frame::HEADER_LEN..].to_vec();
        let actual = crc32(&payload);
        if actual != expected {
            return Err(FrameError::BadChecksum { expected, actual });
        }
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_frame() {
        let mut dec = FrameDecoder::new();
        dec.extend(&Frame::encode_to_vec(b"payload"));
        assert_eq!(dec.next_frame().unwrap().unwrap(), b"payload");
        assert!(dec.next_frame().unwrap().is_none());
    }

    #[test]
    fn roundtrip_empty_payload() {
        let mut dec = FrameDecoder::new();
        dec.extend(&Frame::encode_to_vec(b""));
        assert_eq!(dec.next_frame().unwrap().unwrap(), b"");
    }

    #[test]
    fn multiple_frames_in_one_chunk() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&Frame::encode_to_vec(b"one"));
        wire.extend_from_slice(&Frame::encode_to_vec(b"two"));
        let mut dec = FrameDecoder::new();
        dec.extend(&wire);
        assert_eq!(dec.next_frame().unwrap().unwrap(), b"one");
        assert_eq!(dec.next_frame().unwrap().unwrap(), b"two");
        assert!(dec.next_frame().unwrap().is_none());
    }

    #[test]
    fn byte_at_a_time_delivery() {
        let wire = Frame::encode_to_vec(b"trickle");
        let mut dec = FrameDecoder::new();
        let mut got = None;
        for &b in &wire {
            dec.extend(&[b]);
            if let Some(p) = dec.next_frame().unwrap() {
                got = Some(p);
            }
        }
        assert_eq!(got.unwrap(), b"trickle");
    }

    #[test]
    fn corrupt_payload_detected() {
        let mut wire = Frame::encode_to_vec(b"data!");
        let last = wire.len() - 1;
        wire[last] ^= 0xFF;
        let mut dec = FrameDecoder::new();
        dec.extend(&wire);
        assert!(matches!(
            dec.next_frame(),
            Err(FrameError::BadChecksum { .. })
        ));
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut dec = FrameDecoder::new();
        let mut header = Vec::new();
        header.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        dec.extend(&header);
        assert!(matches!(dec.next_frame(), Err(FrameError::TooLarge(_))));
    }

    #[test]
    fn buffered_reports_pending() {
        let mut dec = FrameDecoder::new();
        dec.extend(&[1, 2, 3]);
        assert_eq!(dec.buffered(), 3);
    }
}
