//! Property-based roundtrip tests for the wire codec: any message that can
//! be constructed encodes to exactly `encoded_len` bytes and decodes back
//! to an equal value.

use proptest::prelude::*;

use smr_types::{ClientId, ReplicaId, RequestId, SeqNum, Slot, View};
use smr_wire::{AcceptedEntry, Batch, ClientMsg, Codec, ProtocolMsg, Reply, Request};

fn arb_request() -> impl Strategy<Value = Request> {
    (
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec(any::<u8>(), 0..300),
    )
        .prop_map(|(c, s, p)| Request::new(RequestId::new(ClientId(c), SeqNum(s)), p))
}

fn arb_reply() -> impl Strategy<Value = Reply> {
    (
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(c, s, p)| Reply::new(RequestId::new(ClientId(c), SeqNum(s)), p))
}

fn arb_batch() -> impl Strategy<Value = Batch> {
    proptest::collection::vec(arb_request(), 0..12).prop_map(Batch::new)
}

fn arb_protocol_msg() -> impl Strategy<Value = ProtocolMsg> {
    prop_oneof![
        (any::<u64>(), any::<u64>()).prop_map(|(v, s)| ProtocolMsg::Prepare {
            view: View(v),
            first_unstable: Slot(s)
        }),
        (
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec((any::<u64>(), any::<u64>(), arb_batch()), 0..4)
        )
            .prop_map(|(v, d, acc)| ProtocolMsg::Promise {
                view: View(v),
                decided_upto: Slot(d),
                accepted: acc
                    .into_iter()
                    .map(|(s, av, b)| AcceptedEntry {
                        slot: Slot(s),
                        view: View(av),
                        batch: b
                    })
                    .collect(),
            }),
        (any::<u64>(), any::<u64>(), arb_batch()).prop_map(|(v, s, b)| ProtocolMsg::Propose {
            view: View(v),
            slot: Slot(s),
            batch: b
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(v, s)| ProtocolMsg::Accept {
            view: View(v),
            slot: Slot(s)
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(f, t)| ProtocolMsg::CatchupQuery {
            from: Slot(f),
            to: Slot(t)
        }),
        (
            any::<u64>(),
            proptest::collection::vec((any::<u64>(), arb_batch()), 0..4)
        )
            .prop_map(|(d, entries)| ProtocolMsg::CatchupReply {
                decided_upto: Slot(d),
                entries: entries.into_iter().map(|(s, b)| (Slot(s), b)).collect(),
            }),
        (any::<u64>(), any::<u64>()).prop_map(|(v, d)| ProtocolMsg::Heartbeat {
            view: View(v),
            decided_upto: Slot(d)
        }),
        (any::<u64>(), any::<u16>()).prop_map(|(v, r)| ProtocolMsg::Suspect {
            view: View(v),
            from: ReplicaId(r)
        }),
    ]
}

fn arb_client_msg() -> impl Strategy<Value = ClientMsg> {
    prop_oneof![
        arb_request().prop_map(ClientMsg::Request),
        arb_reply().prop_map(ClientMsg::Reply),
        proptest::option::of(any::<u16>()).prop_map(|r| ClientMsg::Redirect {
            leader: r.map(ReplicaId)
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_roundtrips(req in arb_request()) {
        let bytes = req.encode_to_vec();
        prop_assert_eq!(bytes.len(), req.encoded_len());
        prop_assert_eq!(Request::decode(&bytes).unwrap(), req);
    }

    #[test]
    fn batch_roundtrips(batch in arb_batch()) {
        let bytes = batch.encode_to_vec();
        prop_assert_eq!(bytes.len(), batch.encoded_len());
        prop_assert_eq!(Batch::decode(&bytes).unwrap(), batch);
    }

    #[test]
    fn protocol_msg_roundtrips(msg in arb_protocol_msg()) {
        let bytes = msg.encode_to_vec();
        prop_assert_eq!(bytes.len(), msg.encoded_len());
        prop_assert_eq!(ProtocolMsg::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn client_msg_roundtrips(msg in arb_client_msg()) {
        let bytes = msg.encode_to_vec();
        prop_assert_eq!(bytes.len(), msg.encoded_len());
        prop_assert_eq!(ClientMsg::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = ProtocolMsg::decode(&bytes);
        let _ = ClientMsg::decode(&bytes);
        let _ = Batch::decode(&bytes);
    }

    #[test]
    fn frames_survive_arbitrary_chunking(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..128), 1..6),
        cut in any::<u8>(),
    ) {
        use smr_wire::{Frame, FrameDecoder};
        let mut wire = Vec::new();
        for p in &payloads {
            wire.extend_from_slice(&Frame::encode_to_vec(p));
        }
        let cut = (cut as usize % wire.len().max(1)).max(1);
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for chunk in wire.chunks(cut) {
            dec.extend(chunk);
            while let Some(p) = dec.next_frame().unwrap() {
                out.push(p);
            }
        }
        prop_assert_eq!(out, payloads);
    }
}
